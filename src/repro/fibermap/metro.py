"""Metro-level fiber detail — the paper's §8 coverage future work.

"In future work, we plan to appeal to regional and metro fiber maps to
improve the coverage of the long-haul map."  Long-haul conduits
terminate at a city, but within the metro the fiber fans out over a
ring of colocation facilities and data centers.  This module synthesizes
deterministic metro rings for the map's hub cities and reports how much
infrastructure the metro layer adds — the coverage the long-haul map
alone understates.

Metro detail is deliberately kept out of the long-haul
:class:`~repro.fibermap.elements.FiberMap` (the paper's map excludes
metro-level links by definition, §1); the two layers join at the
*attachment city*.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap
from repro.fibermap.synthesis import _stable_unit
from repro.geo.coords import GeoPoint, destination_point, haversine_km
from repro.geo.polyline import Polyline

#: Metro ring radius scales with population (km).
_MIN_RADIUS_KM = 6.0
_MAX_RADIUS_KM = 35.0


@dataclass(frozen=True)
class MetroSite:
    """One colocation facility / data center on a metro ring."""

    name: str
    location: GeoPoint
    #: Long-haul tenants with presence in the facility.
    tenants: Tuple[str, ...]


@dataclass(frozen=True)
class MetroRing:
    """The metro fiber ring of one hub city."""

    city_key: str
    sites: Tuple[MetroSite, ...]
    #: Ring segments as closed-loop site index pairs.
    segments: Tuple[Tuple[int, int], ...]

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def ring_km(self) -> float:
        total = 0.0
        for i, j in self.segments:
            total += haversine_km(
                self.sites[i].location, self.sites[j].location
            )
        return total

    def geometry(self) -> Polyline:
        """The ring as a closed polyline."""
        points = [site.location for site in self.sites]
        points.append(self.sites[0].location)
        return Polyline(points)


def _ring_radius_km(population: int) -> float:
    """Radius grows with log-population, clamped to sane metro scales."""
    if population <= 0:
        return _MIN_RADIUS_KM
    scale = (math.log10(population) - 4.0) / 3.0  # 10k .. 10M -> 0 .. 1
    scale = min(1.0, max(0.0, scale))
    return _MIN_RADIUS_KM + scale * (_MAX_RADIUS_KM - _MIN_RADIUS_KM)


def build_metro_ring(
    fiber_map: FiberMap,
    city_key: str,
    seed: int = 71,
) -> MetroRing:
    """Deterministic metro ring for one city.

    Site count scales with the number of long-haul providers present;
    each site hosts a stable subset of them.
    """
    city = city_by_name(city_key)
    node = fiber_map.nodes.get(city_key)
    providers = sorted(node.isps) if node is not None else []
    num_sites = max(3, min(12, 2 + len(providers) // 2))
    radius = _ring_radius_km(city.population)
    rng = random.Random(seed + int(_stable_unit(f"metro|{city_key}") * 2**31))
    sites: List[MetroSite] = []
    for i in range(num_sites):
        bearing = 360.0 * i / num_sites + rng.uniform(-12.0, 12.0)
        distance = radius * rng.uniform(0.55, 1.0)
        location = destination_point(city.location, bearing, distance)
        tenants = tuple(
            isp
            for isp in providers
            if _stable_unit(f"colo|{city_key}|{i}|{isp}") < 0.45
        )
        sites.append(
            MetroSite(
                name=f"{city.code}-colo{i + 1}",
                location=location,
                tenants=tenants,
            )
        )
    segments = tuple(
        (i, (i + 1) % num_sites) for i in range(num_sites)
    )
    return MetroRing(city_key=city_key, sites=sites, segments=segments)


@dataclass(frozen=True)
class MetroCoverageReport:
    """How much infrastructure the metro layer adds (§8 coverage)."""

    rings: Tuple[MetroRing, ...]
    longhaul_conduit_km: float

    @property
    def metro_sites(self) -> int:
        return sum(r.num_sites for r in self.rings)

    @property
    def metro_km(self) -> float:
        return sum(r.ring_km for r in self.rings)

    @property
    def coverage_gain(self) -> float:
        """Metro fiber mileage as a fraction of long-haul mileage."""
        if self.longhaul_conduit_km <= 0:
            return 0.0
        return self.metro_km / self.longhaul_conduit_km


def metro_coverage(
    fiber_map: FiberMap,
    top: int = 20,
    seed: int = 71,
) -> MetroCoverageReport:
    """Build rings for the *top* most-connected cities and measure them."""
    if top <= 0:
        raise ValueError("top must be positive")
    graph = fiber_map.simple_conduit_graph()
    hubs = sorted(graph.degree(), key=lambda kv: (-kv[1], kv[0]))[:top]
    rings = tuple(
        build_metro_ring(fiber_map, city_key, seed=seed)
        for city_key, _ in hubs
    )
    longhaul_km = sum(c.length_km for c in fiber_map.conduits.values())
    return MetroCoverageReport(
        rings=rings, longhaul_conduit_km=longhaul_km
    )
