"""(De)serialization of fiber maps: JSON for exchange, GeoJSON for GIS.

The paper released its map and datasets through a public portal; these
formats are the equivalent artifact for this reproduction.  JSON
round-trips losslessly; GeoJSON exports conduits as LineString features
suitable for any GIS viewer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.fibermap.elements import FiberMap
from repro.geo.coords import GeoPoint
from repro.geo.polyline import Polyline

FORMAT_VERSION = 1


def fiber_map_to_dict(fiber_map: FiberMap) -> Dict[str, Any]:
    """Lossless dictionary form of a fiber map."""
    return {
        "version": FORMAT_VERSION,
        "conduits": [
            {
                "id": c.conduit_id,
                "edge": list(c.edge),
                "row_id": c.row_id,
                "tenants": sorted(c.tenants),
                "geometry": [[p.lat, p.lon] for p in c.geometry.points],
            }
            for _, c in sorted(fiber_map.conduits.items())
        ],
        "links": [
            {
                "id": l.link_id,
                "isp": l.isp,
                "city_path": list(l.city_path),
                "conduit_ids": list(l.conduit_ids),
            }
            for _, l in sorted(fiber_map.links.items())
        ],
    }


def fiber_map_from_dict(data: Dict[str, Any]) -> FiberMap:
    """Rebuild a fiber map from :func:`fiber_map_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported fiber map format version: {version}")
    fiber_map = FiberMap()
    extra_tenants: Dict[str, set] = {}
    for cd in data["conduits"]:
        geometry = Polyline(GeoPoint(lat, lon) for lat, lon in cd["geometry"])
        fiber_map.add_conduit(
            cd["edge"][0],
            cd["edge"][1],
            cd["row_id"],
            geometry,
            conduit_id=cd["id"],
        )
        extra_tenants[cd["id"]] = set(cd["tenants"])
    for ld in data["links"]:
        fiber_map.add_link(
            ld["isp"], ld["city_path"], ld["conduit_ids"], link_id=ld["id"]
        )
    # Tenancies that came from records rather than links.
    for conduit_id, tenants in extra_tenants.items():
        for isp in sorted(tenants):
            if isp not in fiber_map.conduit(conduit_id).tenants:
                fiber_map.add_tenant(conduit_id, isp)
    return fiber_map


def save_fiber_map(fiber_map: FiberMap, fp: Union[str, IO[str]]) -> None:
    """Write a fiber map as JSON to a path or open file."""
    data = fiber_map_to_dict(fiber_map)
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
    else:
        json.dump(data, fp)


def load_fiber_map(fp: Union[str, IO[str]]) -> FiberMap:
    """Read a fiber map from a JSON path or open file."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(fp)
    return fiber_map_from_dict(data)


def fiber_map_to_geojson(
    fiber_map: FiberMap,
    simplify_tolerance_km: float = None,
) -> Dict[str, Any]:
    """GeoJSON FeatureCollection of conduits (LineStrings) and nodes.

    With ``simplify_tolerance_km``, conduit geometry is Douglas-Peucker
    simplified (endpoints preserved) — typically a 3-5x smaller file at
    no visible cost.
    """
    from repro.geo.simplify import simplify_polyline

    features = []
    for _, conduit in sorted(fiber_map.conduits.items()):
        geometry = conduit.geometry
        if simplify_tolerance_km is not None:
            geometry = simplify_polyline(geometry, simplify_tolerance_km)
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    # GeoJSON is lon,lat ordered.
                    "coordinates": [
                        [p.lon, p.lat] for p in geometry.points
                    ],
                },
                "properties": {
                    "conduit_id": conduit.conduit_id,
                    "endpoints": list(conduit.edge),
                    "row_id": conduit.row_id,
                    "tenants": sorted(conduit.tenants),
                    "num_tenants": conduit.num_tenants,
                    "length_km": round(conduit.length_km, 1),
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}
