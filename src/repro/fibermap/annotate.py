"""Annotated map generation — the paper's §8 future work, delivered.

"We also plan to generate annotated versions of our map, focusing in
particular on traffic and propagation delay."  An annotated map decorates
every conduit with its measured probe traffic, propagation delay, tenant
count and a coarse risk class, and exports as GeoJSON so a GIS (or the
ASCII renderer) can style by any annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.traceroute.overlay import TrafficOverlay

#: Risk classes by tenant count.
RISK_CLASSES = (
    (1, "private"),
    (4, "shared"),
    (9, "heavily-shared"),
    (10**9, "critical"),
)


def risk_class(tenants: int) -> str:
    """Coarse risk label for a tenant count."""
    if tenants < 0:
        raise ValueError(f"tenant count must be non-negative: {tenants}")
    for bound, label in RISK_CLASSES:
        if tenants <= bound:
            return label
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class ConduitAnnotation:
    """Everything known about one conduit, in one record."""

    conduit_id: str
    endpoints: Tuple[str, str]
    length_km: float
    delay_ms: float
    tenants: int
    risk_class: str
    probes_total: int
    probes_west_to_east: int
    probes_east_to_west: int
    inferred_extra_isps: int


@dataclass(frozen=True)
class AnnotatedMap:
    """The full annotated map."""

    annotations: Tuple[ConduitAnnotation, ...]

    def __len__(self) -> int:
        return len(self.annotations)

    def by_id(self, conduit_id: str) -> ConduitAnnotation:
        for annotation in self.annotations:
            if annotation.conduit_id == conduit_id:
                return annotation
        raise KeyError(conduit_id)

    def critical(self) -> Tuple[ConduitAnnotation, ...]:
        """Conduits in the highest risk class, busiest first."""
        rows = [a for a in self.annotations if a.risk_class == "critical"]
        rows.sort(key=lambda a: (-a.probes_total, a.conduit_id))
        return tuple(rows)

    def busiest(self, top: int = 10) -> Tuple[ConduitAnnotation, ...]:
        rows = sorted(
            self.annotations, key=lambda a: (-a.probes_total, a.conduit_id)
        )
        return tuple(rows[:top])


def annotate_map(
    fiber_map: FiberMap,
    overlay: Optional[TrafficOverlay] = None,
) -> AnnotatedMap:
    """Build the annotated map (traffic annotations need an overlay)."""
    traffic = overlay.traffic() if overlay is not None else {}
    annotations = []
    for conduit_id, conduit in sorted(fiber_map.conduits.items()):
        item = traffic.get(conduit_id)
        extra = (
            len(overlay.inferred_additional_isps(conduit_id))
            if overlay is not None
            else 0
        )
        annotations.append(
            ConduitAnnotation(
                conduit_id=conduit_id,
                endpoints=conduit.edge,
                length_km=conduit.length_km,
                delay_ms=fiber_delay_ms(conduit.length_km),
                tenants=conduit.num_tenants,
                risk_class=risk_class(conduit.num_tenants),
                probes_total=item.total if item else 0,
                probes_west_to_east=item.west_to_east if item else 0,
                probes_east_to_west=item.east_to_west if item else 0,
                inferred_extra_isps=extra,
            )
        )
    return AnnotatedMap(annotations=tuple(annotations))


def annotated_geojson(
    fiber_map: FiberMap,
    annotated: AnnotatedMap,
) -> Dict[str, Any]:
    """GeoJSON FeatureCollection with the annotations as properties."""
    features = []
    for annotation in annotated.annotations:
        conduit = fiber_map.conduit(annotation.conduit_id)
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        [p.lon, p.lat] for p in conduit.geometry.points
                    ],
                },
                "properties": {
                    "conduit_id": annotation.conduit_id,
                    "endpoints": list(annotation.endpoints),
                    "length_km": round(annotation.length_km, 1),
                    "delay_ms": round(annotation.delay_ms, 3),
                    "tenants": annotation.tenants,
                    "risk_class": annotation.risk_class,
                    "probes_total": annotation.probes_total,
                    "probes_west_to_east": annotation.probes_west_to_east,
                    "probes_east_to_west": annotation.probes_east_to_west,
                    "inferred_extra_isps": annotation.inferred_extra_isps,
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}
