"""Map evolution: projecting growth under the same economics.

The paper stresses that the physical map changes slowly ("installed
conduits rarely become defunct, and deploying new conduits takes
considerable time") and that sharing-friendly policy accelerates conduit
reuse.  This module grows a ground-truth world forward year by year —
each provider adds links at a configurable rate, routed with the same
lease-vs-trench economics as the original synthesis — and records the
sharing trajectory: does growth mostly pile into the existing tubes?
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.data.isps import isp_by_name
from repro.fibermap.elements import FiberMap, MapStats
from repro.fibermap.serialization import fiber_map_from_dict, fiber_map_to_dict
from repro.fibermap.synthesis import GroundTruth, _IspRouter, _occupy_edge
from repro.transport.network import canonical_edge


@dataclass(frozen=True)
class YearSnapshot:
    """The map's risk posture after one simulated year."""

    year: int
    stats: MapStats
    mean_tenancy: float
    shared_ge4_fraction: float
    new_links: int
    new_conduits: int


@dataclass(frozen=True)
class GrowthResult:
    """Trajectory over the simulated horizon."""

    snapshots: Tuple[YearSnapshot, ...]

    @property
    def final(self) -> YearSnapshot:
        return self.snapshots[-1]

    @property
    def reuse_fraction(self) -> float:
        """Fraction of growth absorbed by existing conduits.

        1.0 means every new link rode existing tubes; the paper's
        economics predict values near 1.
        """
        links = sum(s.new_links for s in self.snapshots[1:])
        conduits = sum(s.new_conduits for s in self.snapshots[1:])
        if links == 0:
            return 1.0
        # Each link could in principle have demanded several new conduits.
        return max(0.0, 1.0 - conduits / links)


def _snapshot(fiber_map: FiberMap, year: int, new_links: int,
              new_conduits: int) -> YearSnapshot:
    tenancies = [c.num_tenants for c in fiber_map.conduits.values()]
    total = max(1, len(tenancies))
    return YearSnapshot(
        year=year,
        stats=fiber_map.stats(),
        mean_tenancy=sum(tenancies) / total,
        shared_ge4_fraction=sum(1 for t in tenancies if t >= 4) / total,
        new_links=new_links,
        new_conduits=new_conduits,
    )


def simulate_growth(
    ground_truth: GroundTruth,
    years: int = 5,
    annual_link_growth: float = 0.03,
    seed: int = 29,
) -> GrowthResult:
    """Grow the world forward and record the sharing trajectory.

    The input ground truth is not mutated; growth happens on a deep copy
    of its fiber map.  Each year every provider adds
    ``round(annual_link_growth * current links)`` new links between
    randomly chosen pairs of its existing POPs, routed with the original
    synthesis economics (builders trench, lessees herd).
    """
    if years <= 0:
        raise ValueError("years must be positive")
    if annual_link_growth < 0:
        raise ValueError("growth rate must be non-negative")
    fiber_map = fiber_map_from_dict(fiber_map_to_dict(ground_truth.fiber_map))
    registry = ground_truth.registry
    network = ground_truth.network
    rng = random.Random(seed)
    used_row_ids: Set[str] = {
        c.row_id for c in fiber_map.conduits.values()
    }
    snapshots: List[YearSnapshot] = [_snapshot(fiber_map, 0, 0, 0)]
    for year in range(1, years + 1):
        year_links = 0
        conduits_before = fiber_map.stats().num_conduits
        for isp in fiber_map.isps():
            profile = isp_by_name(isp)
            current = fiber_map.links_of(isp)
            budget = round(annual_link_growth * len(current))
            if budget <= 0:
                continue
            pops = sorted({e for link in current for e in link.endpoints})
            if len(pops) < 2:
                continue
            existing_pairs = {link.endpoints for link in current}
            edges_with_conduits = {
                c.edge for c in fiber_map.conduits.values()
            }
            router = _IspRouter(profile, network, edges_with_conduits)
            added = 0
            attempts = 0
            while added < budget and attempts < budget * 50:
                attempts += 1
                a, b = rng.sample(pops, 2)
                pair = canonical_edge(a, b)
                if pair in existing_pairs:
                    continue
                path = router.route(a, b)
                router.mark_used(path)
                conduit_ids = []
                for u, v in zip(path, path[1:]):
                    conduit = _occupy_edge(
                        fiber_map, registry, canonical_edge(u, v),
                        isp, used_row_ids, rng,
                    )
                    conduit_ids.append(conduit.conduit_id)
                fiber_map.add_link(isp, path, conduit_ids)
                existing_pairs.add(pair)
                added += 1
                year_links += 1
        new_conduits = fiber_map.stats().num_conduits - conduits_before
        snapshots.append(
            _snapshot(fiber_map, year, year_links, new_conduits)
        )
    return GrowthResult(snapshots=tuple(snapshots))
