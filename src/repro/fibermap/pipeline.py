"""The paper's four-step long-haul map construction (§2).

1. Build an initial map from providers with explicitly geocoded maps.
2. Check the initial map against public records: georeference coarse
   links, validate conduit locations, infer conduit sharing.
3. Build an augmented map by aligning POP-only provider maps along the
   closest known rights-of-way.
4. Validate the augmented map with public records again, identifying
   which links share the same ROW.

The pipeline never looks at the ground truth; it sees only the published
maps and the records corpus.  Accuracy against the ground truth is
computed afterwards, which is how we quantify what the paper could only
argue qualitatively ("the constructed map is not complete ... but of
sufficient quality").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fibermap.augment import RowAligner
from repro.fibermap.elements import FiberMap, MapStats
from repro.fibermap.publish import (
    QUALITY_DETAILED,
    ProviderMap,
    publish_provider_maps,
)
from repro.fibermap.records import RecordsCorpus, generate_records
from repro.fibermap.synthesis import GroundTruth
from repro.fibermap.validate import (
    choose_row_with_evidence,
    geometry_row_distance_km,
    tenants_from_records,
)
from repro.geo.polyline import Polyline
from repro.obs.tracer import get_tracer
from repro.transport.network import EdgeKey, canonical_edge
from repro.transport.rightofway import RowRegistry


@dataclass(frozen=True)
class Table1Row:
    """Per-provider counts of the initial map (the paper's Table 1)."""

    isp: str
    num_nodes: int
    num_links: int


@dataclass(frozen=True)
class StepSnapshot:
    """Map size after one pipeline step."""

    step: int
    stats: MapStats


@dataclass(frozen=True)
class AccuracyReport:
    """Constructed map vs ground truth.

    Conduits are matched by (city-pair edge, right-of-way); tenancy over
    (conduit, provider) pairs of matched conduits.
    """

    conduit_precision: float
    conduit_recall: float
    tenancy_precision: float
    tenancy_recall: float
    step3_path_exact: float


@dataclass
class ConstructionReport:
    """Everything the pipeline learned on the way to the final map."""

    table1: List[Table1Row] = field(default_factory=list)
    snapshots: List[StepSnapshot] = field(default_factory=list)
    validated_conduits: int = 0
    evidence_backed_rows: int = 0
    inferred_tenancies: int = 0
    accuracy: Optional[AccuracyReport] = None

    @property
    def final_stats(self) -> MapStats:
        if not self.snapshots:
            raise RuntimeError("pipeline has not run")
        return self.snapshots[-1].stats


class MapConstructionPipeline:
    """Runs the four-step §2 process against published artifacts."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        provider_maps: Optional[Dict[str, ProviderMap]] = None,
        corpus: Optional[RecordsCorpus] = None,
    ):
        self._gt = ground_truth
        self._registry: RowRegistry = ground_truth.registry
        self._network = ground_truth.network
        self._maps = (
            provider_maps
            if provider_maps is not None
            else publish_provider_maps(ground_truth)
        )
        self._corpus = (
            corpus if corpus is not None else generate_records(ground_truth)
        )
        self._map = FiberMap()
        self._report = ConstructionReport()
        self._validated: Set[str] = set()
        # Published links we could not place in step 1 (coarse quality).
        self._pending_coarse: List = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def corpus(self) -> RecordsCorpus:
        return self._corpus

    @property
    def provider_maps(self) -> Dict[str, ProviderMap]:
        return dict(self._maps)

    def run(self) -> Tuple[FiberMap, ConstructionReport]:
        """Execute steps 1-4 and return the constructed map + report.

        Each step runs in a ``pipeline.stepN`` tracing span annotated
        with the map size after the step (and the validation counters
        the step contributed).
        """
        tracer = get_tracer()
        with tracer.span("pipeline.step1", step=1):
            self.step1_initial_map()
            self._annotate_step(tracer)
        with tracer.span("pipeline.step2", step=2):
            self.step2_check_initial_map()
            self._annotate_step(tracer)
        with tracer.span("pipeline.step3", step=3):
            self.step3_augment()
            self._annotate_step(tracer)
        with tracer.span("pipeline.step4", step=4):
            self.step4_validate_augmented()
            self._annotate_step(tracer)
        with tracer.span("pipeline.accuracy"):
            self._report.accuracy = self._compute_accuracy()
        return self._map, self._report

    def _annotate_step(self, tracer) -> None:
        """Record post-step map size and validation counters on the span."""
        if not tracer.enabled:
            return
        stats = self._report.snapshots[-1].stats
        tracer.annotate(
            nodes=stats.num_nodes,
            links=stats.num_links,
            conduits=stats.num_conduits,
            validated_conduits=self._report.validated_conduits,
            evidence_backed_rows=self._report.evidence_backed_rows,
            inferred_tenancies=self._report.inferred_tenancies,
        )

    # ------------------------------------------------------------------
    # Step 1
    # ------------------------------------------------------------------
    def step1_initial_map(self) -> None:
        """Ingest explicitly geocoded (step-1) provider maps."""
        for name in sorted(self._maps):
            pmap = self._maps[name]
            if pmap.step != 1:
                continue
            self._report.table1.append(
                Table1Row(
                    isp=name,
                    num_nodes=pmap.num_nodes,
                    num_links=pmap.num_links,
                )
            )
            for link in pmap.links:
                if link.quality != QUALITY_DETAILED:
                    self._pending_coarse.append(link)
                    continue
                self._ingest_detailed_link(link)
        self._snapshot(1)

    def _ingest_detailed_link(self, link) -> None:
        """Place one fully geocoded link leg-by-leg onto rights-of-way."""
        conduit_ids = []
        for u, v in zip(link.city_path, link.city_path[1:]):
            edge = canonical_edge(u, v)
            row_id = self._row_from_geometry(edge, link.geometry)
            conduit_ids.append(self._find_or_create_conduit(edge, row_id))
        self._map.add_link(link.isp, link.city_path, conduit_ids)

    def _row_from_geometry(self, edge: EdgeKey, geometry: Polyline) -> str:
        """Identify the ROW a published geometry follows on one edge.

        The candidate whose midpoint lies closest to the published route
        wins; this is the geometric core of the paper's "link locations
        align along the same geographic path" test.
        """
        best_row = None
        best_distance = float("inf")
        for row in self._registry.rows_for_edge(*edge):
            row_geometry = self._registry.geometry(row.row_id)
            midpoint = row_geometry.point_at_km(row_geometry.length_km / 2.0)
            distance = geometry.distance_to_point_km(midpoint)
            if distance < best_distance:
                best_distance = distance
                best_row = row
        if best_row is None:
            raise KeyError(f"no rights-of-way registered for edge {edge}")
        return best_row.row_id

    def _find_or_create_conduit(self, edge: EdgeKey, row_id: str) -> str:
        """Reuse the constructed conduit on (edge, row) or create it."""
        for conduit in self._map.conduits_between(*edge):
            if conduit.row_id == row_id:
                return conduit.conduit_id
        conduit = self._map.add_conduit(
            edge[0], edge[1], row_id, self._registry.geometry(row_id)
        )
        return conduit.conduit_id

    # ------------------------------------------------------------------
    # Step 2
    # ------------------------------------------------------------------
    def step2_check_initial_map(self) -> None:
        """Georeference coarse links; validate and infer sharing."""
        aligner = RowAligner(self._network, self._corpus)
        for link in self._pending_coarse:
            self._ingest_endpoint_link(aligner, link)
        self._pending_coarse = []
        self._validate_and_infer(step1_only=True)
        self._snapshot(2)

    def _ingest_endpoint_link(self, aligner: RowAligner, link) -> None:
        """Place a link known only by its endpoints (coarse or step-3)."""
        a, b = link.endpoints
        best = aligner.best_path(link.isp, a, b, constructed=self._map)
        if best is None:  # pragma: no cover - network is connected
            return
        conduit_ids = []
        for u, v in zip(best.city_path, best.city_path[1:]):
            edge = canonical_edge(u, v)
            row_id, backed = choose_row_with_evidence(
                edge, link.isp, self._registry, self._corpus
            )
            if backed:
                self._report.evidence_backed_rows += 1
            conduit_ids.append(self._find_or_create_conduit(edge, row_id))
        self._map.add_link(link.isp, best.city_path, conduit_ids)

    def _validate_and_infer(self, step1_only: bool) -> None:
        """Record-based validation + conduit-sharing inference."""
        step1_isps = {
            name for name, m in self._maps.items() if m.step == 1
        }
        for conduit in list(self._map.conduits.values()):
            records = self._corpus.records_for_edge(*conduit.edge)
            if any(r.row_id == conduit.row_id for r in records):
                self._validated.add(conduit.conduit_id)
                self._report.validated_conduits = len(self._validated)
            evidenced = tenants_from_records(conduit.edge, self._corpus)
            if step1_only:
                evidenced = evidenced & step1_isps
            # Attach tenants only when the record's ROW matches (or the
            # edge has a single constructed conduit, the unambiguous case).
            single = len(self._map.conduits_between(*conduit.edge)) == 1
            for record in records:
                if record.row_id != conduit.row_id and not single:
                    continue
                for isp in record.tenants:
                    if step1_only and isp not in step1_isps:
                        continue
                    if isp not in conduit.tenants:
                        self._map.add_tenant(conduit.conduit_id, isp)
                        self._report.inferred_tenancies += 1

    # ------------------------------------------------------------------
    # Step 3
    # ------------------------------------------------------------------
    def step3_augment(self) -> None:
        """Align POP-only (step-3) provider maps along known ROWs."""
        aligner = RowAligner(self._network, self._corpus)
        for name in sorted(self._maps):
            pmap = self._maps[name]
            if pmap.step != 3:
                continue
            for link in pmap.links:
                self._ingest_endpoint_link(aligner, link)
        self._snapshot(3)

    # ------------------------------------------------------------------
    # Step 4
    # ------------------------------------------------------------------
    def step4_validate_augmented(self) -> None:
        """Re-run record validation over the full augmented map."""
        self._validate_and_infer(step1_only=False)
        self._snapshot(4)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _snapshot(self, step: int) -> None:
        self._report.snapshots.append(
            StepSnapshot(step=step, stats=self._map.stats())
        )

    def _compute_accuracy(self) -> AccuracyReport:
        gt_map = self._gt.fiber_map
        gt_conduits = {
            (c.edge, c.row_id): c for c in gt_map.conduits.values()
        }
        built_conduits = {
            (c.edge, c.row_id): c for c in self._map.conduits.values()
        }
        matched = set(gt_conduits) & set(built_conduits)
        conduit_precision = len(matched) / max(1, len(built_conduits))
        conduit_recall = len(matched) / max(1, len(gt_conduits))

        gt_pairs = set()
        built_pairs = set()
        for key in matched:
            for isp in gt_conduits[key].tenants:
                gt_pairs.add((key, isp))
            for isp in built_conduits[key].tenants:
                built_pairs.add((key, isp))
        common = gt_pairs & built_pairs
        tenancy_precision = len(common) / max(1, len(built_pairs))
        tenancy_recall = len(common) / max(1, len(gt_pairs))

        # How often did step-3 alignment recover the exact ground-truth path?
        exact = 0
        total = 0
        gt_paths = {
            (link.isp, link.endpoints): link.city_path
            for link in gt_map.links.values()
        }
        for link in self._map.links.values():
            pmap = self._maps.get(link.isp)
            if pmap is None or pmap.step != 3:
                continue
            total += 1
            truth = gt_paths.get((link.isp, link.endpoints))
            if truth is not None and tuple(truth) in (
                tuple(link.city_path),
                tuple(reversed(link.city_path)),
            ):
                exact += 1
        step3_path_exact = exact / max(1, total)
        return AccuracyReport(
            conduit_precision=conduit_precision,
            conduit_recall=conduit_recall,
            tenancy_precision=tenancy_precision,
            tenancy_recall=tenancy_recall,
            step3_path_exact=step3_path_exact,
        )
