"""Merging community contributions into the long-haul map (§2.5).

A contribution is itself a fiber map (maybe built from a different
document trove, maybe covering one region).  Merging deduplicates
conduits by (city-pair edge, right-of-way), unions tenant sets, and
re-homes the contribution's links onto the merged conduit identities —
the growing-database workflow the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fibermap.elements import FiberMap
from repro.transport.network import EdgeKey

ConduitKey = Tuple[EdgeKey, str]


@dataclass(frozen=True)
class MergeReport:
    """What a merge did."""

    conduits_added: int
    conduits_matched: int
    tenancies_added: int
    links_added: int


def merge_maps(base: FiberMap, contribution: FiberMap) -> Tuple[FiberMap, MergeReport]:
    """Merge *contribution* into a copy of *base*.

    Neither input is mutated.  Conduit identity is (edge, row);
    matched conduits union their tenants, unmatched ones are added with
    their geometry.  The contribution's links are re-added against the
    merged conduit ids (base links keep their ids; contributed link ids
    are regenerated to avoid collisions).
    """
    merged = FiberMap()
    key_to_id: Dict[ConduitKey, str] = {}
    # Copy the base verbatim (stable ids).
    for conduit_id, conduit in sorted(base.conduits.items()):
        merged.add_conduit(
            conduit.edge[0], conduit.edge[1], conduit.row_id,
            conduit.geometry, conduit_id=conduit_id,
        )
        key_to_id[(conduit.edge, conduit.row_id)] = conduit_id
    for link_id, link in sorted(base.links.items()):
        merged.add_link(link.isp, link.city_path, link.conduit_ids,
                        link_id=link_id)
    for conduit_id, conduit in sorted(base.conduits.items()):
        for tenant in sorted(conduit.tenants):
            if tenant not in merged.conduit(conduit_id).tenants:
                merged.add_tenant(conduit_id, tenant)

    conduits_added = 0
    conduits_matched = 0
    tenancies_added = 0
    remap: Dict[str, str] = {}
    for conduit_id, conduit in sorted(contribution.conduits.items()):
        key = (conduit.edge, conduit.row_id)
        existing = key_to_id.get(key)
        if existing is None:
            created = merged.add_conduit(
                conduit.edge[0], conduit.edge[1], conduit.row_id,
                conduit.geometry,
            )
            key_to_id[key] = created.conduit_id
            remap[conduit_id] = created.conduit_id
            conduits_added += 1
            existing = created.conduit_id
        else:
            remap[conduit_id] = existing
            conduits_matched += 1
        for tenant in sorted(conduit.tenants):
            if tenant not in merged.conduit(existing).tenants:
                merged.add_tenant(existing, tenant)
                tenancies_added += 1

    links_added = 0
    existing_links = {
        (link.isp, link.city_path) for link in merged.links.values()
    }
    for link in sorted(contribution.links.values(), key=lambda l: l.link_id):
        if (link.isp, link.city_path) in existing_links:
            continue
        merged.add_link(
            link.isp,
            link.city_path,
            [remap[cid] for cid in link.conduit_ids],
        )
        links_added += 1
    report = MergeReport(
        conduits_added=conduits_added,
        conduits_matched=conduits_matched,
        tenancies_added=tenancies_added,
        links_added=links_added,
    )
    return merged, report
