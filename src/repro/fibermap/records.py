"""The public-records corpus: the paper's under-utilized data sources.

§2.2 enumerates the document taxonomy the authors mined: government
agency filings, environmental impact statements, indefeasible-right-of-
use (IRU) agreements, franchise agreements, press releases, class-action
settlements over railroad rights-of-way, and state DOT project
documents.  We synthesize a corpus of such documents about the ground
truth — each document reveals a conduit's location (its right-of-way)
and *some* of its tenants — plus a keyword search engine over it, since
the paper's method is literally web search ("los angeles to san
francisco fiber iru at&t sprint").
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.data.cities import city_by_name
from repro.fibermap.synthesis import GroundTruth
from repro.transport.network import EdgeKey, canonical_edge

#: Document kinds, mirroring §2.2's source taxonomy.
RECORD_KINDS = (
    "agency_filing",
    "environmental_impact",
    "iru_agreement",
    "franchise_agreement",
    "press_release",
    "row_settlement",
    "dot_project",
)

#: Probability that a conduit is covered by at least one public record.
DEFAULT_COVERAGE = 0.88
#: Probability that a covered conduit's record mentions each tenant.
DEFAULT_TENANT_RECALL = 0.6
#: Maximum records generated per conduit.
MAX_RECORDS_PER_CONDUIT = 3

_TEMPLATES: Dict[str, str] = {
    "agency_filing": (
        "Filing before the {state} public utilities commission regarding "
        "the fiber-optic conduit installed along the {corridor} right-of-way "
        "between {a} and {b}. Carriers with facilities in the conduit "
        "include {tenants}."
    ),
    "environmental_impact": (
        "Final environmental impact statement, {corridor} corridor project, "
        "{a} to {b}. Section 4 (utilities) notes existing buried "
        "telecommunications conduit occupied by {tenants} within the "
        "{kind} right-of-way."
    ),
    "iru_agreement": (
        "Indefeasible right of use agreement covering dark fiber between "
        "{a} and {b} along the {corridor} route. Parties purchasing or "
        "leasing fiber in the conduit: {tenants}."
    ),
    "franchise_agreement": (
        "Franchise agreement with {state} county authorities permitting "
        "fiber deployment along {corridor} from {a} to {b}; co-located "
        "facilities of {tenants} are noted in the utilities exhibit."
    ),
    "press_release": (
        "Press release: network expansion completes new long-haul segment "
        "between {a} and {b} following the {corridor} {kind} corridor. "
        "The build is shared with {tenants}."
    ),
    "row_settlement": (
        "Class action settlement involving land adjacent to the {corridor} "
        "railroad right-of-way between {a} and {b} where {tenants} have "
        "installed telecommunications facilities such as fiber-optic cables."
    ),
    "dot_project": (
        "{state} DOT project documentation for the {corridor} corridor "
        "({a} - {b}): existing conduit with fiber of {tenants} to be "
        "protected during construction."
    ),
}


@dataclass(frozen=True)
class PublicRecord:
    """One public document about one conduit."""

    doc_id: str
    kind: str
    state: str
    edge: EdgeKey
    row_id: str
    conduit_id: str
    tenants: Tuple[str, ...]
    text: str

    @property
    def title(self) -> str:
        a, b = self.edge
        return f"{self.kind}: {a} - {b}"


def _tokenize(text: str) -> List[str]:
    return re.findall(r"[a-z0-9&]+", text.lower())


class RecordsCorpus:
    """A searchable corpus of public records.

    Search mirrors the paper's workflow: a bag-of-terms query scores
    documents by matched-token count (ties broken by doc id for
    determinism).
    """

    def __init__(self, records: Iterable[PublicRecord]):
        self._records: List[PublicRecord] = sorted(
            records, key=lambda r: r.doc_id
        )
        self._by_edge: Dict[EdgeKey, List[PublicRecord]] = {}
        self._tokens: Dict[str, FrozenSet[str]] = {}
        for record in self._records:
            self._by_edge.setdefault(record.edge, []).append(record)
            self._tokens[record.doc_id] = frozenset(_tokenize(record.text))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records_for_edge(self, a_key: str, b_key: str) -> List[PublicRecord]:
        """All records about conduits between two adjacent cities."""
        return list(self._by_edge.get(canonical_edge(a_key, b_key), []))

    def search(self, query: str, limit: int = 10) -> List[Tuple[PublicRecord, int]]:
        """Keyword search; returns ``(record, score)`` sorted best-first.

        Score is the number of distinct query tokens present in the
        document.  Zero-score documents are never returned.
        """
        terms = set(_tokenize(query))
        if not terms:
            return []
        scored = []
        for record in self._records:
            score = len(terms & self._tokens[record.doc_id])
            if score > 0:
                scored.append((record, score))
        scored.sort(key=lambda rs: (-rs[1], rs[0].doc_id))
        return scored[:limit]

    def tenants_evidenced(self, a_key: str, b_key: str) -> FrozenSet[str]:
        """Union of tenants mentioned by any record about this edge."""
        tenants = set()
        for record in self.records_for_edge(a_key, b_key):
            tenants.update(record.tenants)
        return frozenset(tenants)

    def rows_evidenced(self, a_key: str, b_key: str) -> FrozenSet[str]:
        """Right-of-way ids documented for this edge."""
        return frozenset(
            r.row_id for r in self.records_for_edge(a_key, b_key)
        )


def generate_records(
    ground_truth: GroundTruth,
    seed: int = 11,
    coverage: float = DEFAULT_COVERAGE,
    tenant_recall: float = DEFAULT_TENANT_RECALL,
) -> RecordsCorpus:
    """Synthesize the public-records corpus for a ground-truth world.

    Each conduit is covered with probability *coverage*; covered conduits
    get one to three documents, each revealing the conduit's right-of-way
    and a random subset of its tenants (each tenant with probability
    *tenant_recall* per document).
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage out of [0,1]: {coverage}")
    if not 0.0 <= tenant_recall <= 1.0:
        raise ValueError(f"tenant_recall out of [0,1]: {tenant_recall}")
    rng = random.Random(seed)
    registry = ground_truth.registry
    records: List[PublicRecord] = []
    seq = 0
    for conduit_id, conduit in sorted(ground_truth.fiber_map.conduits.items()):
        if rng.random() >= coverage:
            continue
        n_docs = rng.randint(1, MAX_RECORDS_PER_CONDUIT)
        row = registry.row(conduit.row_id)
        a_key, b_key = conduit.edge
        for _ in range(n_docs):
            kind = rng.choice(RECORD_KINDS)
            # Rail settlements only make sense for rail ROWs.
            if kind == "row_settlement" and row.kind != "rail":
                kind = "agency_filing"
            # Iterate tenants in sorted order: pairing the RNG stream
            # with set-iteration order would make the selection depend
            # on PYTHONHASHSEED (observed as cross-process divergence
            # of the constructed map before PR 4's golden-hash tests).
            tenants = tuple(
                t for t in sorted(conduit.tenants)
                if rng.random() < tenant_recall
            )
            if not tenants:
                # A document always names at least one carrier.
                tenants = (sorted(conduit.tenants)[rng.randrange(conduit.num_tenants)],)
            state = city_by_name(a_key).state
            text = _TEMPLATES[kind].format(
                state=state,
                corridor=row.corridor_name,
                a=a_key,
                b=b_key,
                kind=row.kind,
                tenants=", ".join(tenants),
            )
            seq += 1
            records.append(
                PublicRecord(
                    doc_id=f"D{seq:05d}",
                    kind=kind,
                    state=state,
                    edge=conduit.edge,
                    row_id=conduit.row_id,
                    conduit_id=conduit_id,
                    tenants=tenants,
                    text=text,
                )
            )
    return RecordsCorpus(records)
