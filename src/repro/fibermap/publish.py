"""Published provider maps: what the world gets to see.

§2 distinguishes two kinds of published maps:

* **step-1 maps** (9 providers, Table 1) "include the precise geographic
  locations of all the long-haul routes" — modeled as links with full
  city paths and route geometry.  "Due to varying accuracy of the
  sources, some maps required manual annotation, georeferencing and
  validation" — modeled as a small fraction of links published at
  *coarse* quality (endpoints and straight-line geometry only), which
  step 2 of the pipeline must align to rights-of-way.
* **step-3 maps** (11 providers) "do not contain explicit geocoded
  information ... list only POP-level connectivity" — modeled as links
  with endpoints only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fibermap.elements import FiberMap, Link
from repro.fibermap.synthesis import GroundTruth
from repro.geo.polyline import Polyline
from repro.transport.network import EdgeKey

#: Fraction of a step-1 provider's links published without detailed
#: geometry (scanned raster maps, marketing PDFs, ...).
COARSE_FRACTION = 0.06

#: Link quality levels.
QUALITY_DETAILED = "detailed"
QUALITY_COARSE = "coarse"
QUALITY_ENDPOINTS = "endpoints"


@dataclass(frozen=True)
class PublishedLink:
    """One link as it appears in a provider's published map."""

    isp: str
    endpoints: EdgeKey
    quality: str
    #: Full waypoint city path; only present at detailed quality.
    city_path: Optional[Tuple[str, ...]]
    #: Route geometry; detailed quality only.
    geometry: Optional[Polyline]

    def __post_init__(self) -> None:
        if self.quality not in (QUALITY_DETAILED, QUALITY_COARSE, QUALITY_ENDPOINTS):
            raise ValueError(f"unknown quality: {self.quality}")
        if self.quality == QUALITY_DETAILED and (
            self.city_path is None or self.geometry is None
        ):
            raise ValueError("detailed links need city_path and geometry")


@dataclass(frozen=True)
class ProviderMap:
    """A provider's published long-haul map artifact."""

    isp: str
    step: int
    nodes: Tuple[str, ...]
    links: Tuple[PublishedLink, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)


def _link_geometry(fiber_map: FiberMap, link: Link) -> Polyline:
    """Concatenated conduit geometry along a ground-truth link."""
    line: Optional[Polyline] = None
    for (a, b), cid in zip(
        zip(link.city_path, link.city_path[1:]), link.conduit_ids
    ):
        conduit = fiber_map.conduit(cid)
        leg = conduit.geometry
        if a != conduit.edge[0]:
            leg = leg.reversed()
        line = leg if line is None else line.concat(leg)
    return line


def publish_provider_maps(
    ground_truth: GroundTruth, seed: int = 7
) -> Dict[str, ProviderMap]:
    """Derive every provider's published map from the ground truth.

    Deterministic given *seed* (which drives only the choice of which
    step-1 links are published coarsely).
    """
    rng = random.Random(seed)
    fiber_map = ground_truth.fiber_map
    result: Dict[str, ProviderMap] = {}
    for profile in ground_truth.profiles:
        links = []
        node_set = set()
        for link in fiber_map.links_of(profile.name):
            node_set.update(link.endpoints)
            if profile.step == 1:
                coarse = rng.random() < COARSE_FRACTION
                if coarse:
                    links.append(
                        PublishedLink(
                            isp=profile.name,
                            endpoints=link.endpoints,
                            quality=QUALITY_COARSE,
                            city_path=None,
                            geometry=None,
                        )
                    )
                else:
                    links.append(
                        PublishedLink(
                            isp=profile.name,
                            endpoints=link.endpoints,
                            quality=QUALITY_DETAILED,
                            city_path=link.city_path,
                            geometry=_link_geometry(fiber_map, link),
                        )
                    )
            else:
                links.append(
                    PublishedLink(
                        isp=profile.name,
                        endpoints=link.endpoints,
                        quality=QUALITY_ENDPOINTS,
                        city_path=None,
                        geometry=None,
                    )
                )
        result[profile.name] = ProviderMap(
            isp=profile.name,
            step=profile.step,
            nodes=tuple(sorted(node_set)),
            links=tuple(links),
        )
    return result
