"""Model of the long-haul fiber map: nodes, links, conduits.

Terminology follows the paper (§2): a **conduit** is "a tube or trench
specially built to house the fiber of potentially multiple providers"
between two cities along one right-of-way; a **link** is one provider's
long-haul fiber span between two of its POP cities, realized as a path
over one or more conduits; a **node** is a city that terminates at least
one conduit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.geo.polyline import Polyline
from repro.transport.network import EdgeKey, canonical_edge


@dataclass
class Node:
    """A city terminating at least one conduit."""

    city_key: str
    isps: Set[str] = field(default_factory=set)

    @property
    def degree_isps(self) -> int:
        return len(self.isps)


@dataclass
class Conduit:
    """One physical conduit between two cities along one right-of-way."""

    conduit_id: str
    edge: EdgeKey
    row_id: str
    geometry: Polyline
    tenants: Set[str] = field(default_factory=set)

    @property
    def length_km(self) -> float:
        return self.geometry.length_km

    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    @property
    def endpoints(self) -> Tuple[str, str]:
        return self.edge

    def describe(self) -> str:
        a, b = self.edge
        return f"{a} <-> {b} ({self.num_tenants} tenants, {self.length_km:.0f} km)"


@dataclass
class Link:
    """One provider's long-haul link: a conduit path between two POPs."""

    link_id: str
    isp: str
    endpoints: EdgeKey
    city_path: Tuple[str, ...]
    conduit_ids: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.city_path) < 2:
            raise ValueError("a link needs at least two cities")
        if len(self.conduit_ids) != len(self.city_path) - 1:
            raise ValueError(
                f"link {self.link_id}: {len(self.conduit_ids)} conduits for "
                f"{len(self.city_path)} cities"
            )

    @property
    def num_hops(self) -> int:
        """Number of conduits the link traverses."""
        return len(self.conduit_ids)


@dataclass(frozen=True)
class MapStats:
    """Headline counts of a fiber map (the paper's Figure 1 caption)."""

    num_nodes: int
    num_links: int
    num_conduits: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_nodes} nodes, {self.num_links} links, "
            f"{self.num_conduits} conduits"
        )


class FiberMap:
    """The long-haul fiber-optic map: conduits, provider links, nodes.

    Conduit identity is physical (one trench); provider links reference
    conduit ids, and tenancy is maintained automatically as links are
    added.  The map supports the graph views used by §4 (risk) and §5
    (mitigation): the conduit graph weighted by length or by shared risk,
    and per-provider subgraphs.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._conduits: Dict[str, Conduit] = {}
        self._links: Dict[str, Link] = {}
        self._conduits_by_edge: Dict[EdgeKey, List[str]] = {}
        self._links_by_isp: Dict[str, List[str]] = {}
        self._conduit_seq = 0
        self._link_seq = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_conduit(
        self,
        a_key: str,
        b_key: str,
        row_id: str,
        geometry: Polyline,
        conduit_id: Optional[str] = None,
    ) -> Conduit:
        """Create a new conduit between two cities along *row_id*."""
        edge = canonical_edge(a_key, b_key)
        if conduit_id is None:
            # Skip over ids taken by explicitly-identified conduits
            # (deserialized or merged maps).
            while True:
                self._conduit_seq += 1
                conduit_id = f"C{self._conduit_seq:04d}"
                if conduit_id not in self._conduits:
                    break
        if conduit_id in self._conduits:
            raise ValueError(f"duplicate conduit id: {conduit_id}")
        conduit = Conduit(conduit_id=conduit_id, edge=edge, row_id=row_id,
                          geometry=geometry)
        self._conduits[conduit_id] = conduit
        self._conduits_by_edge.setdefault(edge, []).append(conduit_id)
        for key in edge:
            self._nodes.setdefault(key, Node(city_key=key))
        return conduit

    def add_link(
        self,
        isp: str,
        city_path: Iterable[str],
        conduit_ids: Iterable[str],
        link_id: Optional[str] = None,
    ) -> Link:
        """Add one provider link over an existing conduit path.

        Registers the provider as tenant of every conduit on the path and
        as present at every city along it.
        """
        path = tuple(city_path)
        ids = tuple(conduit_ids)
        if link_id is None:
            while True:
                self._link_seq += 1
                link_id = f"L{self._link_seq:05d}"
                if link_id not in self._links:
                    break
        if link_id in self._links:
            raise ValueError(f"duplicate link id: {link_id}")
        # Validate the conduit path is contiguous and matches the city path.
        for (a, b), cid in zip(zip(path, path[1:]), ids):
            conduit = self._conduits.get(cid)
            if conduit is None:
                raise KeyError(f"unknown conduit {cid}")
            if conduit.edge != canonical_edge(a, b):
                raise ValueError(
                    f"conduit {cid} spans {conduit.edge}, not ({a}, {b})"
                )
        link = Link(
            link_id=link_id,
            isp=isp,
            endpoints=canonical_edge(path[0], path[-1]),
            city_path=path,
            conduit_ids=ids,
        )
        self._links[link_id] = link
        self._links_by_isp.setdefault(isp, []).append(link_id)
        for cid in ids:
            self._conduits[cid].tenants.add(isp)
        for key in path:
            node = self._nodes.setdefault(key, Node(city_key=key))
            node.isps.add(isp)
        return link

    def add_tenant(self, conduit_id: str, isp: str) -> None:
        """Record tenancy directly (used by records-based inference)."""
        self._conduits[conduit_id].tenants.add(isp)
        for key in self._conduits[conduit_id].edge:
            node = self._nodes.setdefault(key, Node(city_key=key))
            node.isps.add(isp)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, Node]:
        return self._nodes

    @property
    def conduits(self) -> Dict[str, Conduit]:
        return self._conduits

    @property
    def links(self) -> Dict[str, Link]:
        return self._links

    def conduit(self, conduit_id: str) -> Conduit:
        return self._conduits[conduit_id]

    def link(self, link_id: str) -> Link:
        return self._links[link_id]

    def conduits_between(self, a_key: str, b_key: str) -> List[Conduit]:
        """All (possibly parallel) conduits between two adjacent cities."""
        edge = canonical_edge(a_key, b_key)
        return [self._conduits[c] for c in self._conduits_by_edge.get(edge, [])]

    def isps(self) -> List[str]:
        """Providers with at least one link, in name order."""
        return sorted(self._links_by_isp)

    def links_of(self, isp: str) -> List[Link]:
        return [self._links[i] for i in self._links_by_isp.get(isp, [])]

    def conduits_of(self, isp: str) -> List[Conduit]:
        """Conduits where *isp* is a tenant, in id order."""
        return [
            c for _, c in sorted(self._conduits.items()) if isp in c.tenants
        ]

    def nodes_of(self, isp: str) -> List[str]:
        return sorted(k for k, n in self._nodes.items() if isp in n.isps)

    def stats(self) -> MapStats:
        return MapStats(
            num_nodes=len(self._nodes),
            num_links=len(self._links),
            num_conduits=len(self._conduits),
        )

    def tenancy(self) -> Dict[str, FrozenSet[str]]:
        """Map of conduit id to its (frozen) tenant set."""
        return {cid: frozenset(c.tenants) for cid, c in self._conduits.items()}

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def conduit_graph(self, isp: Optional[str] = None) -> nx.MultiGraph:
        """Conduits as a multigraph over cities.

        Edge data: ``conduit_id``, ``length_km``, ``tenants`` (count).
        When *isp* is given, only conduits that provider occupies are
        included (its physical footprint).
        """
        graph = nx.MultiGraph()
        for cid, conduit in sorted(self._conduits.items()):
            if isp is not None and isp not in conduit.tenants:
                continue
            a, b = conduit.edge
            graph.add_edge(
                a,
                b,
                key=cid,
                conduit_id=cid,
                length_km=conduit.length_km,
                tenants=conduit.num_tenants,
            )
        return graph

    def simple_conduit_graph(self, isp: Optional[str] = None) -> nx.Graph:
        """Simple-graph view: parallel conduits collapsed to the best one.

        Edge data: ``conduit_id`` (least-shared conduit on that edge),
        ``length_km`` (of that conduit), ``tenants`` (its tenant count).
        """
        graph = nx.Graph()
        for cid, conduit in sorted(self._conduits.items()):
            if isp is not None and isp not in conduit.tenants:
                continue
            a, b = conduit.edge
            existing = graph.get_edge_data(a, b)
            if existing is None or conduit.num_tenants < existing["tenants"]:
                graph.add_edge(
                    a,
                    b,
                    conduit_id=cid,
                    length_km=conduit.length_km,
                    tenants=conduit.num_tenants,
                )
        return graph
