"""The long-haul fiber map: model, synthesis, and the §2 construction pipeline.

* :mod:`repro.fibermap.elements` — nodes, links, conduits, and the map.
* :mod:`repro.fibermap.synthesis` — deterministic ground-truth generator
  (the "world" whose published maps and public records the pipeline sees).
* :mod:`repro.fibermap.publish` — per-provider published map artifacts.
* :mod:`repro.fibermap.records` — public-records corpus and search.
* :mod:`repro.fibermap.pipeline` — the paper's four-step map construction.
* :mod:`repro.fibermap.serialization` — JSON / GeoJSON interchange.
"""

from repro.fibermap.diff import MapDiff, diff_maps, fidelity_gain
from repro.fibermap.elements import Conduit, FiberMap, Link, MapStats, Node
from repro.fibermap.merge import MergeReport, merge_maps
from repro.fibermap.pipeline import (
    AccuracyReport,
    ConstructionReport,
    MapConstructionPipeline,
    Table1Row,
)
from repro.fibermap.publish import ProviderMap, PublishedLink, publish_provider_maps
from repro.fibermap.records import PublicRecord, RecordsCorpus, generate_records
from repro.fibermap.serialization import (
    fiber_map_from_dict,
    fiber_map_to_dict,
    fiber_map_to_geojson,
    load_fiber_map,
    save_fiber_map,
)
from repro.fibermap.synthesis import GroundTruth, synthesize_ground_truth

__all__ = [
    "Node",
    "Link",
    "Conduit",
    "FiberMap",
    "MapStats",
    "GroundTruth",
    "synthesize_ground_truth",
    "ProviderMap",
    "PublishedLink",
    "publish_provider_maps",
    "PublicRecord",
    "RecordsCorpus",
    "generate_records",
    "MapConstructionPipeline",
    "ConstructionReport",
    "AccuracyReport",
    "Table1Row",
    "fiber_map_to_dict",
    "fiber_map_from_dict",
    "fiber_map_to_geojson",
    "save_fiber_map",
    "load_fiber_map",
    "diff_maps",
    "MapDiff",
    "fidelity_gain",
    "merge_maps",
    "MergeReport",
]
