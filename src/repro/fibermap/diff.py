"""Map diffing: what changed between two versions of the long-haul map.

§2.5 hopes for "a community effort aimed at gradually improving the
overall fidelity of our basic map by contributing to a growing database
of information about geocoded conduits and their tenants."  A growing
database needs review tooling: this module compares two maps at conduit
granularity — identity is (city-pair edge, right-of-way) — and reports
additions, removals, and tenancy changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.fibermap.elements import Conduit, FiberMap
from repro.transport.network import EdgeKey

ConduitKey = Tuple[EdgeKey, str]


def _conduit_index(fiber_map: FiberMap) -> Dict[ConduitKey, Conduit]:
    return {
        (c.edge, c.row_id): c for c in fiber_map.conduits.values()
    }


@dataclass(frozen=True)
class TenancyChange:
    """Tenant-set delta for one conduit present in both maps."""

    key: ConduitKey
    added: FrozenSet[str]
    removed: FrozenSet[str]


@dataclass(frozen=True)
class MapDiff:
    """Structured difference between two fiber maps."""

    #: Conduits only in the newer map.
    added_conduits: Tuple[ConduitKey, ...]
    #: Conduits only in the older map.
    removed_conduits: Tuple[ConduitKey, ...]
    #: Conduits in both whose tenant sets differ.
    tenancy_changes: Tuple[TenancyChange, ...]
    #: Conduits in both with identical tenancy.
    unchanged: int

    @property
    def is_empty(self) -> bool:
        return (
            not self.added_conduits
            and not self.removed_conduits
            and not self.tenancy_changes
        )

    @property
    def tenancies_added(self) -> int:
        return sum(len(c.added) for c in self.tenancy_changes)

    @property
    def tenancies_removed(self) -> int:
        return sum(len(c.removed) for c in self.tenancy_changes)

    def summary(self) -> str:
        return (
            f"+{len(self.added_conduits)} conduits, "
            f"-{len(self.removed_conduits)} conduits, "
            f"{len(self.tenancy_changes)} tenancy changes "
            f"(+{self.tenancies_added}/-{self.tenancies_removed} tenancies), "
            f"{self.unchanged} unchanged"
        )


def diff_maps(old: FiberMap, new: FiberMap) -> MapDiff:
    """Compare two maps; *new* is the proposed update."""
    old_index = _conduit_index(old)
    new_index = _conduit_index(new)
    added = tuple(sorted(set(new_index) - set(old_index)))
    removed = tuple(sorted(set(old_index) - set(new_index)))
    changes: List[TenancyChange] = []
    unchanged = 0
    for key in sorted(set(old_index) & set(new_index)):
        before = old_index[key].tenants
        after = new_index[key].tenants
        if before == after:
            unchanged += 1
            continue
        changes.append(
            TenancyChange(
                key=key,
                added=frozenset(after - before),
                removed=frozenset(before - after),
            )
        )
    return MapDiff(
        added_conduits=added,
        removed_conduits=removed,
        tenancy_changes=tuple(changes),
        unchanged=unchanged,
    )


def fidelity_gain(
    ground_truth: FiberMap, old: FiberMap, new: FiberMap
) -> Tuple[float, float]:
    """(old, new) tenancy recall against a reference map.

    Measures whether an update actually improved fidelity — the check a
    community database maintainer runs before accepting a contribution.
    """
    truth_index = {
        key: c.tenants for key, c in _conduit_index(ground_truth).items()
    }

    def recall(candidate: FiberMap) -> float:
        candidate_index = {
            key: c.tenants for key, c in _conduit_index(candidate).items()
        }
        truth_pairs = 0
        found = 0
        for key, tenants in truth_index.items():
            truth_pairs += len(tenants)
            got = candidate_index.get(key, frozenset())
            found += len(tenants & got)
        return found / truth_pairs if truth_pairs else 0.0

    return recall(old), recall(new)
