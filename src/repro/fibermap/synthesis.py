"""Deterministic ground-truth synthesis of the US long-haul fiber plant.

The paper reverse-engineers a real, unobservable ground truth (which
conduits exist, who has fiber in them) from published maps and public
records.  To reproduce the *process*, we first need such a ground truth.
This module synthesizes one with the economics the paper describes:

* providers deploy fiber between their POP cities along existing
  rights-of-way (roads preferred, then rail, then pipelines — §3);
* "substantial cost savings" push providers into previously installed
  conduits rather than new trenches (§1), so conduit sharing concentrates
  on trunk corridors;
* heavily tenanted corridors occasionally gain a second, parallel conduit
  (the paper's "parallel deployments (e.g., Kansas City to Denver)").

Everything is driven by one integer seed; two runs with the same seed
produce byte-identical maps.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.data.cities import City, city_by_name
from repro.data.isps import ISPS, STYLE_NATIONAL, STYLE_STATES, ISPProfile
from repro.fibermap.elements import Conduit, FiberMap
from repro.transport.builder import build_transport_network
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge
from repro.transport.rightofway import RowRegistry

#: Tenants on the least-loaded conduit of an edge before a parallel
#: conduit becomes attractive.
PARALLEL_THRESHOLD = 13
#: Maximum parallel conduits per city-pair edge.
MAX_PARALLEL = 2
#: Fraction of edges with room for a parallel conduit (sticky per edge;
#: pinch points that never split accumulate the extreme tenant counts of
#: the paper's twelve most-shared conduits).
PARALLEL_PROB = 0.35
#: Probability a brand-new conduit picks a road ROW when one exists.
ROAD_PREFERENCE = 0.8
#: Relative routing cost of non-road rights-of-way.
KIND_FACTORS = {"road": 1.0, "rail": 1.07, "pipeline": 1.12}
#: Routing penalty of secondary (US-route / state-highway) corridors.
#: Cable MSOs actively prefer the local-road grid of their own markets;
#: other facilities builders are indifferent; lessees can only go where
#: conduits already run, which keeps them on the primary trunk system.
SECONDARY_FACTOR_CABLE = 0.95
SECONDARY_FACTOR_BUILDER = 1.05
SECONDARY_FACTOR_LESSEE = 1.5
#: Magnitude of per-provider route diversity (fraction of edge length).
JITTER_SPREAD = 0.4
#: Discount applied to edges a provider already uses (trunk reuse).
REUSE_DISCOUNT = 0.55
#: Discount for edges where *any* provider already installed a conduit:
#: pulling fiber through an existing tube (IRU / dark-fiber lease) is far
#: cheaper than trenching a new one (§1, "substantial cost savings").
#: Applies to lessees; facilities builders are indifferent.
EXISTING_CONDUIT_DISCOUNT = 0.4


@dataclass
class GroundTruth:
    """The synthesized world: actual conduits, tenancy, and substrates."""

    fiber_map: FiberMap
    network: TransportationNetwork
    registry: RowRegistry
    seed: int
    profiles: Tuple[ISPProfile, ...]


def _stable_unit(token: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) from a string token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _select_pops(
    profile: ISPProfile,
    cities: Sequence[City],
    rng: random.Random,
) -> List[str]:
    """Choose POP cities for one provider.

    Weighted sampling without replacement (A-Res scheme) with weight
    ``population ** (0.55 * hub_bias)``; regional styles restrict the pool
    to their states while keeping the national top hubs reachable.
    """
    pool = list(cities)
    if profile.style != STYLE_NATIONAL:
        states = set(STYLE_STATES[profile.style])
        hubs = sorted(pool, key=lambda c: -c.population)[:5]
        pool = [c for c in pool if c.state in states]
        # Regional tier-1s still interconnect at the national hubs; cable
        # MSOs and regional networks stay inside their markets (this is
        # what makes Suddenlink's deployments "geographically diverse"
        # yet lightly shared, §4.2).
        if profile.tier == "tier1":
            for hub in hubs:
                if hub not in pool:
                    pool.append(hub)
    count = min(profile.target_nodes, len(pool))
    exponent = 0.55 * profile.hub_bias

    def sample_key(city: City) -> float:
        weight = max(1.0, float(city.population)) ** exponent
        u = rng.random()
        # A-Res: larger key  <=>  more likely selected.
        return u ** (1.0 / weight)

    ranked = sorted(pool, key=sample_key, reverse=True)
    return sorted(c.key for c in ranked[:count])


def _plan_links(
    pops: List[str],
    target_links: int,
    rng: random.Random,
) -> List[EdgeKey]:
    """Plan which POP pairs a provider connects.

    A nearest-neighbor spanning skeleton guarantees connectivity; extra
    links (up to the Table 1 target) preferentially join nearby POPs,
    which is how real backbones grow.
    """
    cities = {key: city_by_name(key) for key in pops}
    ordered = sorted(pops, key=lambda k: -cities[k].population)
    links: Set[EdgeKey] = set()
    connected: List[str] = [ordered[0]]
    for key in ordered[1:]:
        partner = min(
            connected, key=lambda c: cities[key].distance_km(cities[c])
        )
        links.add(canonical_edge(key, partner))
        connected.append(key)
    attempts = 0
    max_attempts = target_links * 200
    while len(links) < target_links and attempts < max_attempts:
        attempts += 1
        a = rng.choice(ordered)
        b = rng.choice(ordered)
        if a == b:
            continue
        edge = canonical_edge(a, b)
        if edge in links:
            continue
        distance = cities[a].distance_km(cities[b])
        # Accept with probability decaying in distance; 300 km scale.
        if rng.random() < 1.0 / (1.0 + (distance / 300.0) ** 1.6):
            links.add(edge)
    return sorted(links)


class _IspRouter:
    """Routes one provider's links over the transport network.

    Edge weights combine geometry length, right-of-way kind preference, a
    provider-specific deterministic jitter (route diversity across
    providers), and a reuse discount that consolidates the provider onto
    its own trunks.
    """

    def __init__(
        self,
        profile: ISPProfile,
        network: TransportationNetwork,
        edges_with_conduits: Set[EdgeKey],
    ):
        self.isp = profile.name
        self.graph = nx.Graph()
        self._base: Dict[EdgeKey, float] = {}
        # Lessees are pulled hard toward edges that already host a conduit
        # (an IRU is far cheaper than trenching); facilities builders are
        # nearly indifferent and lay fiber where their own routing says.
        herd = EXISTING_CONDUIT_DISCOUNT if not profile.builder else 1.0
        if profile.tier == "cable":
            secondary_factor = SECONDARY_FACTOR_CABLE
        elif profile.builder:
            secondary_factor = SECONDARY_FACTOR_BUILDER
        else:
            secondary_factor = SECONDARY_FACTOR_LESSEE
        for record in network.edges():
            kind_factor = min(
                KIND_FACTORS[record.kind_of[name]]
                * (secondary_factor if record.grade_of[name] == "secondary" else 1.0)
                for name in record.corridor_names
            )
            jitter = 1.0 + JITTER_SPREAD * _stable_unit(
                f"{profile.name}|{record.edge[0]}|{record.edge[1]}"
            )
            weight = record.length_km * kind_factor * jitter
            if record.edge in edges_with_conduits:
                weight *= herd
            self._base[record.edge] = weight
            self.graph.add_edge(record.edge[0], record.edge[1], w=weight)

    def route(self, a_key: str, b_key: str) -> List[str]:
        return nx.shortest_path(self.graph, a_key, b_key, weight="w")

    def mark_used(self, path: List[str]) -> None:
        for a, b in zip(path, path[1:]):
            edge = canonical_edge(a, b)
            base = self._base[edge]
            discounted = base * REUSE_DISCOUNT
            if self.graph[a][b]["w"] > discounted:
                self.graph[a][b]["w"] = discounted


def _pick_row_for_new_conduit(
    edge: EdgeKey,
    registry: RowRegistry,
    used_row_ids: Set[str],
    rng: random.Random,
) -> Optional[str]:
    """Choose the right-of-way for a brand-new conduit on *edge*.

    Kinds are drawn with the empirical ROW mix of §3 — mostly roads,
    some rail, occasionally a pipeline right-of-way (Figure 5) — among
    the kinds still unused on the edge; returns ``None`` when every ROW
    on the edge already hosts a conduit.
    """
    candidates = [
        r for r in registry.rows_for_edge(*edge) if r.row_id not in used_row_ids
    ]
    if not candidates:
        return None
    by_kind = {"road": [], "rail": [], "pipeline": []}
    for row in candidates:
        by_kind[row.kind].append(row)
    weights = {"road": ROAD_PREFERENCE, "rail": 0.18, "pipeline": 0.12}
    available = [k for k in ("road", "rail", "pipeline") if by_kind[k]]
    total = sum(weights[k] for k in available)
    draw = rng.random() * total
    for kind in available:
        draw -= weights[kind]
        if draw <= 0.0:
            return by_kind[kind][0].row_id
    return by_kind[available[-1]][0].row_id


def synthesize_ground_truth(
    seed: int = 2015,
    network: Optional[TransportationNetwork] = None,
    profiles: Optional[Sequence[ISPProfile]] = None,
) -> GroundTruth:
    """Generate the full ground-truth world for one seed.

    Providers are processed in the paper's order (step-1 ISPs first); each
    provider selects POPs, plans links, routes them over rights-of-way,
    and occupies (or creates) conduits along the way.
    """
    if network is None:
        network = build_transport_network()
    registry = RowRegistry(network)
    chosen = tuple(profiles) if profiles is not None else ISPS
    rng = random.Random(seed)
    fiber_map = FiberMap()
    # Conduits already created, keyed by edge; rows already hosting one.
    used_row_ids: Set[str] = set()
    on_network = set(network.cities())
    city_pool = [city_by_name(k) for k in sorted(on_network)]

    for profile in chosen:
        pops = _select_pops(profile, city_pool, rng)
        planned = _plan_links(pops, profile.target_links, rng)
        edges_with_conduits = {
            c.edge for c in fiber_map.conduits.values()
        }
        router = _IspRouter(profile, network, edges_with_conduits)
        # Route long links first so trunks form before short spurs route.
        planned.sort(
            key=lambda e: -city_by_name(e[0]).distance_km(city_by_name(e[1]))
        )
        for a_key, b_key in planned:
            path = router.route(a_key, b_key)
            router.mark_used(path)
            conduit_ids: List[str] = []
            for u, v in zip(path, path[1:]):
                conduit = _occupy_edge(
                    fiber_map, registry, canonical_edge(u, v),
                    profile.name, used_row_ids, rng,
                )
                conduit_ids.append(conduit.conduit_id)
                registry.occupy(conduit.row_id, profile.name)
            fiber_map.add_link(profile.name, path, conduit_ids)
    return GroundTruth(
        fiber_map=fiber_map,
        network=network,
        registry=registry,
        seed=seed,
        profiles=chosen,
    )


def _occupy_edge(
    fiber_map: FiberMap,
    registry: RowRegistry,
    edge: EdgeKey,
    isp: str,
    used_row_ids: Set[str],
    rng: random.Random,
) -> Conduit:
    """Find or create the conduit *isp* uses on one city-pair edge."""
    existing = fiber_map.conduits_between(*edge)
    if not existing:
        row_id = _pick_row_for_new_conduit(edge, registry, used_row_ids, rng)
        if row_id is None:  # pragma: no cover - rows always exist for edges
            raise RuntimeError(f"no right-of-way available for edge {edge}")
        used_row_ids.add(row_id)
        return fiber_map.add_conduit(
            edge[0], edge[1], row_id, registry.geometry(row_id)
        )
    # Already a tenant somewhere on this edge?  Stay in that conduit.
    for conduit in existing:
        if isp in conduit.tenants:
            return conduit
    least_loaded = min(existing, key=lambda c: (c.num_tenants, c.conduit_id))
    crowded = least_loaded.num_tenants >= PARALLEL_THRESHOLD
    # Whether an edge can host a parallel conduit is a property of the
    # place (is there room along another ROW?), so the decision is sticky
    # per edge: pinch points that never split accumulate the extreme
    # tenant counts the paper observes (12 conduits shared by >17 ISPs).
    splittable = _stable_unit(f"split|{edge[0]}|{edge[1]}") < PARALLEL_PROB
    if crowded and splittable and len(existing) < MAX_PARALLEL:
        row_id = _pick_row_for_new_conduit(edge, registry, used_row_ids, rng)
        if row_id is not None:
            used_row_ids.add(row_id)
            return fiber_map.add_conduit(
                edge[0], edge[1], row_id, registry.geometry(row_id)
            )
    return least_loaded
