"""Validation and inference helpers for the map-construction pipeline.

These implement the evidence logic of §2.2 and §2.4: aligning published
geometry to known rights-of-way, ruling out candidate ROWs ("it may be
that we simply need to rule out one or more ROWs in order to establish
sufficient evidence for the path that a fiber link follows"), and
accumulating conduit-sharing evidence from public records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.fibermap.records import RecordsCorpus
from repro.geo.polyline import Polyline
from repro.transport.network import EdgeKey
from repro.transport.rightofway import RowRegistry

#: A published geometry matches a ROW when its samples stay within this
#: distance of the ROW geometry on average.
ALIGNMENT_TOLERANCE_KM = 12.0
#: Sampling density for alignment checks.
ALIGNMENT_SPACING_KM = 25.0


@dataclass(frozen=True)
class RowAlignment:
    """Result of aligning a geometry against one candidate right-of-way."""

    row_id: str
    mean_distance_km: float

    @property
    def aligned(self) -> bool:
        return self.mean_distance_km <= ALIGNMENT_TOLERANCE_KM


def geometry_row_distance_km(geometry: Polyline, row_geometry: Polyline,
                             spacing_km: float = ALIGNMENT_SPACING_KM) -> float:
    """Mean distance from samples of *geometry* to *row_geometry*."""
    samples = geometry.resample(spacing_km)
    return sum(row_geometry.distance_to_point_km(p) for p in samples) / len(samples)


def align_geometry_to_row(
    edge: EdgeKey,
    geometry: Polyline,
    registry: RowRegistry,
) -> Optional[RowAlignment]:
    """Best-matching right-of-way for a published link-leg geometry.

    Candidates are the registered ROWs of *edge*; the closest one wins
    when it is within tolerance, otherwise ``None`` (the geometry does
    not follow any known ROW — the paper's Figure 5 situation before
    pipeline ROWs were considered).
    """
    best: Optional[RowAlignment] = None
    for row in registry.rows_for_edge(*edge):
        distance = geometry_row_distance_km(geometry, registry.geometry(row.row_id))
        alignment = RowAlignment(row_id=row.row_id, mean_distance_km=distance)
        if best is None or alignment.mean_distance_km < best.mean_distance_km:
            best = alignment
    if best is not None and best.aligned:
        return best
    return None


def choose_row_with_evidence(
    edge: EdgeKey,
    isp: str,
    registry: RowRegistry,
    corpus: RecordsCorpus,
) -> Tuple[str, bool]:
    """Pick the right-of-way for an inferred (non-geocoded) link leg.

    Prefers a ROW that a public record documents for this edge — ideally
    one naming *isp* — and falls back to the default candidate ordering
    (road first) when the records are silent.  Returns ``(row_id,
    evidence_backed)``.
    """
    candidates = registry.rows_for_edge(*edge)
    if not candidates:
        raise KeyError(f"no rights-of-way between {edge[0]} and {edge[1]}")
    evidenced_rows = corpus.rows_evidenced(*edge)
    named = [
        r
        for r in corpus.records_for_edge(*edge)
        if isp in r.tenants
    ]
    if named:
        # A record placing this ISP's fiber on a specific ROW is decisive.
        return named[0].row_id, True
    for row in candidates:
        if row.row_id in evidenced_rows:
            return row.row_id, True
    return candidates[0].row_id, False


def tenants_from_records(
    edge: EdgeKey, corpus: RecordsCorpus
) -> FrozenSet[str]:
    """All providers that public records place in conduits on *edge*."""
    return corpus.tenants_evidenced(*edge)


def search_evidence(
    edge: EdgeKey, isp: str, corpus: RecordsCorpus, limit: int = 5
) -> List[str]:
    """Run the paper-style keyword search for one (edge, ISP) question.

    Returns the doc ids of records that both match the query and actually
    concern the edge — the systematic search §2.2 describes, e.g.
    ``"los angeles to san francisco fiber iru at&t sprint"``.
    """
    a, b = edge
    query = f"{a} {b} fiber iru right-of-way {isp}"
    hits = corpus.search(query, limit=limit * 4)
    relevant = [r.doc_id for r, _ in hits if r.edge == edge]
    return relevant[:limit]
