"""Capacity layer: fiber counts, lit wavelengths, and utilization.

The paper treats conduits as risk containers; operationally they are
also capacity containers.  This layer assigns each conduit a plausible
fiber-strand count (scaling with tenancy — more tenants means more
cables pulled through the tube), each tenant a lit-capacity share, and
computes utilization from a traceroute overlay's probe counts, exposing
the *amplification* effect: the most-shared conduits also concentrate
the most capacity, so one cut destroys disproportionate bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fibermap.elements import FiberMap
from repro.fibermap.synthesis import _stable_unit
from repro.traceroute.overlay import TrafficOverlay

#: Fiber strands per cable a tenant pulls through a conduit.
STRANDS_PER_TENANT_CABLE = 96
#: Lit wavelengths per strand pair (DWDM) and capacity per wavelength.
WAVELENGTHS_PER_PAIR = 40
GBPS_PER_WAVELENGTH = 10.0


@dataclass(frozen=True)
class ConduitCapacity:
    """Capacity attributes of one conduit."""

    conduit_id: str
    endpoints: Tuple[str, str]
    tenants: int
    strands: int
    lit_gbps: float
    probe_share: float

    @property
    def capacity_at_risk_gbps(self) -> float:
        """Capacity destroyed if this conduit is cut."""
        return self.lit_gbps


@dataclass(frozen=True)
class CapacityModel:
    """The capacity-annotated conduit system."""

    conduits: Tuple[ConduitCapacity, ...]

    def __len__(self) -> int:
        return len(self.conduits)

    @property
    def total_lit_gbps(self) -> float:
        return sum(c.lit_gbps for c in self.conduits)

    def by_id(self, conduit_id: str) -> ConduitCapacity:
        for conduit in self.conduits:
            if conduit.conduit_id == conduit_id:
                return conduit
        raise KeyError(conduit_id)

    def top_capacity(self, top: int = 10) -> Tuple[ConduitCapacity, ...]:
        return tuple(
            sorted(
                self.conduits,
                key=lambda c: (-c.lit_gbps, c.conduit_id),
            )[:top]
        )

    def amplification(self) -> float:
        """Capacity share of the top decile of conduits by tenancy.

        >0.1 means shared conduits concentrate capacity beyond their
        numbers — the risk-amplification effect.
        """
        if not self.conduits:
            return 0.0
        ranked = sorted(self.conduits, key=lambda c: -c.tenants)
        decile = max(1, len(ranked) // 10)
        top_capacity = sum(c.lit_gbps for c in ranked[:decile])
        total = self.total_lit_gbps
        return top_capacity / total if total else 0.0


def build_capacity_model(
    fiber_map: FiberMap,
    overlay: Optional[TrafficOverlay] = None,
) -> CapacityModel:
    """Assign capacity to every conduit, deterministically.

    Strands scale with tenant count (each tenant pulls its own cable);
    lit capacity scales with strands, modulated by a stable per-conduit
    utilization factor; probe share comes from the overlay when given.
    """
    traffic = overlay.traffic() if overlay is not None else {}
    total_probes = sum(t.total for t in traffic.values()) or 1
    conduits: List[ConduitCapacity] = []
    for conduit_id, conduit in sorted(fiber_map.conduits.items()):
        strands = max(1, conduit.num_tenants) * STRANDS_PER_TENANT_CABLE
        # Only a fraction of strand pairs are lit; stable per conduit.
        lit_fraction = 0.15 + 0.35 * _stable_unit(f"lit|{conduit_id}")
        pairs = strands // 2
        lit_gbps = (
            pairs * lit_fraction * WAVELENGTHS_PER_PAIR * GBPS_PER_WAVELENGTH
        )
        item = traffic.get(conduit_id)
        probe_share = (item.total / total_probes) if item else 0.0
        conduits.append(
            ConduitCapacity(
                conduit_id=conduit_id,
                endpoints=conduit.edge,
                tenants=conduit.num_tenants,
                strands=strands,
                lit_gbps=lit_gbps,
                probe_share=probe_share,
            )
        )
    return CapacityModel(conduits=tuple(conduits))


def capacity_risk_correlation(model: CapacityModel) -> float:
    """Pearson correlation between tenancy and lit capacity.

    Strongly positive by construction of the economics — the measurable
    form of "the riskiest tubes are also the fattest".
    """
    if len(model) < 2:
        return 0.0
    tenants = np.array([c.tenants for c in model.conduits], dtype=float)
    capacity = np.array([c.lit_gbps for c in model.conduits], dtype=float)
    if tenants.std() == 0 or capacity.std() == 0:
        return 0.0
    return float(np.corrcoef(tenants, capacity)[0, 1])
