"""Quantifying the Title II open-access trade-off (§6.2).

If conduits must be opened to third parties, new entrants "take
advantage of expensive already-existing long-haul infrastructure to
facilitate the build out of their own infrastructure at considerably
lower cost" — and every conduit they enter becomes a bigger shared-risk
group.  We simulate *n* entrants building national footprints under two
regimes:

* **open access** — entrants pull fiber through existing conduits
  (cost: a lease fraction of trenching);
* **build-own** — the counterfactual where each entrant must trench its
  own conduits along the same routes.

The outcome is the paper's trade-off, measured: capital saved by the
entrants vs the growth of conduit sharing (Figure 6 statistics before
and after).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap
from repro.risk.matrix import RiskMatrix

#: Leasing into an existing conduit costs this fraction of trenching.
LEASE_COST_FRACTION = 0.12
#: Entrant footprint size (POPs).
ENTRANT_POPS = 25


@dataclass(frozen=True)
class OpenAccessOutcome:
    """Sharing and cost effects of admitting open-access entrants."""

    entrants: Tuple[str, ...]
    #: Conduit-km entrants occupy.
    leased_km: float
    #: What trenching the same routes would have cost (km).
    build_own_km: float
    #: Fraction of conduits shared by >= k providers, before and after.
    sharing_before: Dict[int, float]
    sharing_after: Dict[int, float]
    #: Mean tenants per conduit, before and after.
    mean_tenants_before: float
    mean_tenants_after: float

    @property
    def capital_savings_fraction(self) -> float:
        """Fraction of build-own capital the entrants avoided."""
        if self.build_own_km <= 0:
            return 0.0
        leased_cost = self.leased_km * LEASE_COST_FRACTION
        return 1.0 - leased_cost / self.build_own_km

    @property
    def sharing_increase(self) -> float:
        """Growth of mean conduit tenancy (shared-risk proxy)."""
        return self.mean_tenants_after - self.mean_tenants_before


def _entrant_tenancy(
    fiber_map: FiberMap,
    rng: random.Random,
    name: str,
) -> Tuple[List[str], float]:
    """Conduits one entrant leases, plus the route mileage."""
    graph = fiber_map.simple_conduit_graph()
    cities = sorted(graph.nodes)
    weights = [city_by_name(c).population for c in cities]
    pops = sorted(set(rng.choices(cities, weights=weights, k=ENTRANT_POPS)))
    if len(pops) < 2:
        return [], 0.0
    ordered = sorted(pops, key=lambda c: -city_by_name(c).population)
    connected = [ordered[0]]
    conduit_ids: List[str] = []
    total_km = 0.0
    for city in ordered[1:]:
        partner = min(
            connected,
            key=lambda c: city_by_name(city).distance_km(city_by_name(c)),
        )
        try:
            path = nx.shortest_path(graph, city, partner, weight="length_km")
        except (nx.NetworkXNoPath, nx.NodeNotFound):  # pragma: no cover
            continue
        connected.append(city)
        for u, v in zip(path, path[1:]):
            data = graph[u][v]
            conduit_ids.append(data["conduit_id"])
            total_km += data["length_km"]
    return conduit_ids, total_km


def _sharing_stats(counts: Sequence[int]) -> Tuple[Dict[int, float], float]:
    total = max(1, len(counts))
    fractions = {
        k: sum(1 for c in counts if c >= k) / total for k in (2, 3, 4)
    }
    mean = sum(counts) / total
    return fractions, mean


def simulate_open_access(
    fiber_map: FiberMap,
    num_entrants: int = 3,
    seed: int = 19,
) -> OpenAccessOutcome:
    """Admit *num_entrants* open-access entrants and measure the fallout.

    The input map is not mutated; tenancy effects are computed on a
    copy of the tenant counts.
    """
    if num_entrants < 0:
        raise ValueError("num_entrants must be non-negative")
    rng = random.Random(seed)
    counts_before = [c.num_tenants for c in fiber_map.conduits.values()]
    before, mean_before = _sharing_stats(counts_before)
    extra: Dict[str, set] = {cid: set() for cid in fiber_map.conduits}
    entrants = tuple(f"Entrant-{i + 1}" for i in range(num_entrants))
    leased_km = 0.0
    build_own_km = 0.0
    for name in entrants:
        conduit_ids, km = _entrant_tenancy(fiber_map, rng, name)
        leased_km += km
        build_own_km += km  # same routes, own trench
        for cid in conduit_ids:
            extra[cid].add(name)
    counts_after = [
        c.num_tenants + len(extra[c.conduit_id])
        for c in fiber_map.conduits.values()
    ]
    after, mean_after = _sharing_stats(counts_after)
    return OpenAccessOutcome(
        entrants=entrants,
        leased_km=leased_km,
        build_own_km=build_own_km,
        sharing_before=before,
        sharing_after=after,
        mean_tenants_before=mean_before,
        mean_tenants_after=mean_after,
    )


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the savings-vs-risk trade-off curve."""

    num_entrants: int
    capital_savings_fraction: float
    mean_tenants_after: float
    sharing_increase: float


def open_access_tradeoff(
    fiber_map: FiberMap,
    max_entrants: int = 8,
    seed: int = 19,
) -> List[TradeoffPoint]:
    """The §6.2 trade-off curve: entrants vs savings vs shared risk."""
    points = []
    for n in range(0, max_entrants + 1):
        outcome = simulate_open_access(fiber_map, num_entrants=n, seed=seed)
        points.append(
            TradeoffPoint(
                num_entrants=n,
                capital_savings_fraction=outcome.capital_savings_fraction,
                mean_tenants_after=outcome.mean_tenants_after,
                sharing_increase=outcome.sharing_increase,
            )
        )
    return points
