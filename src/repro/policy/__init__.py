"""Policy analysis: the §6.2 Title II / open-access trade-off.

The paper argues the net-neutrality debate "would benefit from a
quantitative assessment of the unavoidable trade-offs ... between the
substantial cost savings enjoyed by future Title II regulated service
providers and an increasingly vulnerable national long-haul fiber-optic
infrastructure".  :mod:`repro.policy.titleii` provides exactly that
quantification over the constructed map.
"""

from repro.policy.titleii import (
    OpenAccessOutcome,
    TradeoffPoint,
    open_access_tradeoff,
    simulate_open_access,
)

__all__ = [
    "simulate_open_access",
    "OpenAccessOutcome",
    "open_access_tradeoff",
    "TradeoffPoint",
]
