"""Impact assessment: what one cut event does to each provider.

For every tenant of a severed conduit: which of its links crossed the
cut, which of its POP pairs lose connectivity entirely (no alternate
path over its remaining footprint), and how much one-way delay the
survivable pairs gain when rerouted.  Optionally, a traffic overlay
quantifies how much probe traffic crossed the cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.perf.substrate import RoutingSubstrate, resolve_substrate
from repro.resilience.cuts import CutEvent
from repro.traceroute.overlay import TrafficOverlay
from repro.transport.network import EdgeKey


@dataclass(frozen=True)
class IspImpact:
    """One provider's exposure to one cut event."""

    isp: str
    #: Links whose conduit path crosses the cut.
    links_hit: int
    #: POP pairs (of the hit links) with no surviving alternate path.
    pairs_disconnected: int
    #: Mean extra one-way delay (ms) for the survivable hit pairs.
    mean_reroute_delay_ms: float
    #: Worst extra one-way delay (ms).
    max_reroute_delay_ms: float

    @property
    def survivable(self) -> bool:
        return self.pairs_disconnected == 0


@dataclass(frozen=True)
class CutImpact:
    """Full assessment of one cut event."""

    event: CutEvent
    per_isp: Tuple[IspImpact, ...]
    #: Probe traffic that crossed the severed conduits (0 if no overlay).
    probes_affected: int

    @property
    def isps_affected(self) -> int:
        return sum(1 for i in self.per_isp if i.links_hit > 0)

    @property
    def total_links_hit(self) -> int:
        return sum(i.links_hit for i in self.per_isp)

    @property
    def total_pairs_disconnected(self) -> int:
        return sum(i.pairs_disconnected for i in self.per_isp)

    def impact_of(self, isp: str) -> Optional[IspImpact]:
        for impact in self.per_isp:
            if impact.isp == isp:
                return impact
        return None


def _surviving_graph(fiber_map: FiberMap, isp: str, event: CutEvent) -> nx.Graph:
    """The provider's conduit graph with the severed conduits removed."""
    graph = nx.Graph()
    for cid, conduit in sorted(fiber_map.conduits.items()):
        if isp not in conduit.tenants or cid in event.conduit_ids:
            continue
        a, b = conduit.edge
        data = graph.get_edge_data(a, b)
        if data is None or conduit.length_km < data["length_km"]:
            graph.add_edge(a, b, length_km=conduit.length_km)
    return graph


def probes_crossing(traffic: Dict[str, object], conduit_ids) -> int:
    """Probe traffic that crossed the given conduits (overlay units)."""
    probes = 0
    for conduit_id in conduit_ids:
        item = traffic.get(conduit_id)
        if item is not None:
            probes += item.total
    return probes


def _reroute_stats(
    fiber_map: FiberMap,
    isp: str,
    event: CutEvent,
    hit_links,
    substrate: Optional[RoutingSubstrate],
) -> Tuple[int, List[float]]:
    """Disconnected-pair count and reroute delays for one provider."""
    if substrate is None:
        survivors = _surviving_graph(fiber_map, isp, event)

        def rerouted(a: str, b: str) -> Optional[float]:
            try:
                return nx.shortest_path_length(
                    survivors, a, b, weight="length_km"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                return None

    else:
        conduits = substrate.conduits
        dead_rows = {
            conduits.row_of[cid]
            for cid in event.conduit_ids
            if cid in conduits.row_of
        }
        view = conduits.surviving_footprint_view(isp, dead_rows)
        dist_pack = view.dijkstra(
            [link.endpoints[0] for link in hit_links], "length_km"
        )

        def rerouted(a: str, b: str) -> Optional[float]:
            if not view.present(a) or not view.present(b):
                return None
            dist, _pred, row_of = dist_pack
            km = float(dist[row_of[a], view.index[b]])
            if km == float("inf"):
                return None
            return km

    disconnected = 0
    delays: List[float] = []
    for link in hit_links:
        a, b = link.endpoints
        original_km = sum(
            fiber_map.conduit(cid).length_km for cid in link.conduit_ids
        )
        rerouted_km = rerouted(a, b)
        if rerouted_km is None:
            disconnected += 1
            continue
        delays.append(
            max(0.0, fiber_delay_ms(rerouted_km) - fiber_delay_ms(original_km))
        )
    return disconnected, delays


def assess_cut(
    fiber_map: FiberMap,
    event: CutEvent,
    overlay: Optional[TrafficOverlay] = None,
    substrate=None,
) -> CutImpact:
    """Assess one cut event across every tenant of the severed conduits.

    On the routing substrate each provider's reroute distances come from
    one batched Dijkstra over its surviving-footprint view; without
    scipy the per-link NetworkX solves answer instead.
    """
    resolved = resolve_substrate(fiber_map, substrate)
    tenants = set()
    for conduit_id in event.conduit_ids:
        tenants |= fiber_map.conduit(conduit_id).tenants
    per_isp: List[IspImpact] = []
    for isp in sorted(tenants):
        hit_links = [
            link
            for link in fiber_map.links_of(isp)
            if any(cid in event.conduit_ids for cid in link.conduit_ids)
        ]
        if not hit_links:
            per_isp.append(IspImpact(isp, 0, 0, 0.0, 0.0))
            continue
        disconnected, delays = _reroute_stats(
            fiber_map, isp, event, hit_links, resolved
        )
        per_isp.append(
            IspImpact(
                isp=isp,
                links_hit=len(hit_links),
                pairs_disconnected=disconnected,
                mean_reroute_delay_ms=(
                    sum(delays) / len(delays) if delays else 0.0
                ),
                max_reroute_delay_ms=max(delays, default=0.0),
            )
        )
    probes = 0
    if overlay is not None:
        probes = probes_crossing(overlay.traffic(), event.conduit_ids)
    return CutImpact(event=event, per_isp=tuple(per_isp), probes_affected=probes)
