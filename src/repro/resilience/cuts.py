"""Failure specifications: which conduits go dark together.

A *cut event* is the physical unit of failure.  The paper's central
observation makes it dangerous: a single trench cut ("The Backhoe: A
Real Cyberthreat", ref. [64]) severs the fiber of *every* tenant of the
conduit simultaneously — and of every parallel conduit in the same
trench if the event is at the right-of-way level.  Disasters take out
every conduit whose geometry passes near the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.fibermap.elements import FiberMap
from repro.geo.coords import GeoPoint
from repro.transport.network import canonical_edge


@dataclass(frozen=True)
class CutEvent:
    """One failure event: a set of conduits severed together."""

    description: str
    conduit_ids: FrozenSet[str]
    #: Where it happened (informational; None for logical cuts).
    location: Optional[GeoPoint] = None

    def __post_init__(self) -> None:
        if not self.conduit_ids:
            raise ValueError("a cut event needs at least one conduit")

    @property
    def size(self) -> int:
        return len(self.conduit_ids)


def conduit_cut(fiber_map: FiberMap, conduit_id: str) -> CutEvent:
    """A backhoe cut of one specific conduit."""
    conduit = fiber_map.conduit(conduit_id)
    a, b = conduit.edge
    midpoint = conduit.geometry.point_at_km(conduit.geometry.length_km / 2)
    return CutEvent(
        description=f"conduit cut: {a} - {b} ({conduit_id})",
        conduit_ids=frozenset({conduit_id}),
        location=midpoint,
    )


def edge_cut(fiber_map: FiberMap, a_key: str, b_key: str) -> CutEvent:
    """A right-of-way level cut: every conduit between two cities.

    Parallel conduits along the same corridor usually share the trench
    or an adjacent one ("the fiber links either reside in the same fiber
    bundle, or in an adjacent conduit", §2.2), so a serious dig event
    takes them all.
    """
    conduits = fiber_map.conduits_between(a_key, b_key)
    if not conduits:
        raise KeyError(f"no conduits between {a_key} and {b_key}")
    edge = canonical_edge(a_key, b_key)
    geometry = conduits[0].geometry
    midpoint = geometry.point_at_km(geometry.length_km / 2)
    return CutEvent(
        description=f"right-of-way cut: {edge[0]} - {edge[1]}",
        conduit_ids=frozenset(c.conduit_id for c in conduits),
        location=midpoint,
    )


def disaster_cut(
    fiber_map: FiberMap,
    center: GeoPoint,
    radius_km: float,
    description: Optional[str] = None,
) -> CutEvent:
    """A geographically correlated failure (earthquake, flood, storm).

    Severs every conduit whose geometry passes within *radius_km* of
    *center* — the probabilistic-geographic-failure model of the
    paper's reference [74].
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive: {radius_km}")
    hit = set()
    for conduit_id, conduit in fiber_map.conduits.items():
        if conduit.geometry.distance_to_point_km(center) <= radius_km:
            hit.add(conduit_id)
    if not hit:
        raise ValueError(
            f"no conduit within {radius_km} km of {center}"
        )
    return CutEvent(
        description=description
        or f"disaster at {center} (radius {radius_km:.0f} km)",
        conduit_ids=frozenset(hit),
        location=center,
    )


def cuts_for_city(fiber_map: FiberMap, city_key: str) -> Tuple[CutEvent, ...]:
    """All single-ROW cut events incident to one city."""
    edges = sorted(
        {
            c.edge
            for c in fiber_map.conduits.values()
            if city_key in c.edge
        }
    )
    return tuple(edge_cut(fiber_map, *edge) for edge in edges)
