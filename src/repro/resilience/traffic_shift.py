"""Traffic shift under failures: what users feel when a conduit dies.

The impact module measures topology-level damage; this one measures the
traffic-level consequence.  After a cut event, every router adjacency
whose fiber ran through a severed conduit disappears; affected
traceroutes re-route over the degraded topology (or black-hole).  The
result is the RTT-inflation distribution the measurement hosts would
observe — the paper's localized-outage discussion (§7) made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.resilience.cuts import CutEvent
from repro.traceroute.probe import ProbeEngine, TracerouteRecord
from repro.traceroute.topology import InternetTopology


class DegradedTopology:
    """A read-only view of a topology with cut conduits removed.

    Implements the subset of the :class:`InternetTopology` interface the
    probe engine uses, so traces can be re-run over the degraded network
    without rebuilding routers or addressing.
    """

    def __init__(self, topology: InternetTopology, event: CutEvent):
        self._topology = topology
        self._event = event
        graph = topology.graph.copy()
        dead_edges = []
        for u, v, data in graph.edges(data=True):
            if data.get("kind") != "intra":
                continue
            isp = data.get("isp")
            conduits = topology.conduits_for_hop(isp, u[1], v[1])
            if set(conduits) & event.conduit_ids:
                dead_edges.append((u, v))
        graph.remove_edges_from(dead_edges)
        self._graph = graph
        self._dead_edges = tuple(dead_edges)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def dead_router_adjacencies(self) -> Tuple:
        return self._dead_edges

    # Delegated interface (what ProbeEngine needs).
    def uses_mpls(self, isp: str) -> bool:
        return self._topology.uses_mpls(isp)

    def router(self, isp: str, city_key: str):
        return self._topology.router(isp, city_key)

    def has_router(self, isp: str, city_key: str) -> bool:
        return self._topology.has_router(isp, city_key)


@dataclass(frozen=True)
class TrafficShiftReport:
    """RTT consequences of one cut for a traced workload."""

    event_description: str
    #: Traces re-examined (those whose endpoints could be affected).
    traces_examined: int
    #: Traces whose end-to-end RTT grew.
    traces_slower: int
    #: Traces that lost connectivity entirely.
    traces_blackholed: int
    #: Mean / p95 end-to-end RTT inflation (ms) over slower traces.
    mean_inflation_ms: float
    p95_inflation_ms: float

    @property
    def affected_fraction(self) -> float:
        if self.traces_examined == 0:
            return 0.0
        return (self.traces_slower + self.traces_blackholed) / self.traces_examined


def traffic_shift(
    topology: InternetTopology,
    event: CutEvent,
    records: Sequence[TracerouteRecord],
    seed: int = 67,
    max_traces: Optional[int] = 2000,
) -> TrafficShiftReport:
    """Re-trace a workload over the degraded topology after *event*.

    Each record's (src, dst) is re-run on both the intact and the
    degraded topology with the same noise seed, so the RTT difference
    isolates the routing change.
    """
    degraded = DegradedTopology(topology, event)
    baseline_engine = ProbeEngine(topology, seed=seed)
    degraded_engine = ProbeEngine(degraded, seed=seed)  # type: ignore[arg-type]
    sample = list(records[:max_traces]) if max_traces else list(records)
    examined = 0
    slower = 0
    blackholed = 0
    inflations: List[float] = []
    seen = set()
    for record in sample:
        key = (record.src_city, record.src_isp, record.dst_city, record.dst_isp)
        if key in seen:
            continue
        seen.add(key)
        examined += 1
        before = baseline_engine.trace(*key)
        after = degraded_engine.trace(*key)
        if not before.reached or not before.hops:
            continue
        if not after.reached or not after.hops:
            blackholed += 1
            continue
        delta = after.hops[-1].rtt_ms - before.hops[-1].rtt_ms
        if delta > 0.5:  # beyond queueing noise
            slower += 1
            inflations.append(delta)
    inflations.sort()
    mean = sum(inflations) / len(inflations) if inflations else 0.0
    p95 = (
        inflations[int(0.95 * (len(inflations) - 1))] if inflations else 0.0
    )
    return TrafficShiftReport(
        event_description=event.description,
        traces_examined=examined,
        traces_slower=slower,
        traces_blackholed=blackholed,
        mean_inflation_ms=mean,
        p95_inflation_ms=p95,
    )
