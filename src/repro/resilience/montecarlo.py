"""Random-cut studies and targeted attacks.

How much worse is an adversary who reads the map than a random backhoe?
The targeted attack severs the most-shared rights-of-way first (the
"How to Destroy the Internet" scenario of the paper's reference [40]);
the random study samples ROW cuts uniformly.  Comparing the two
quantifies the security implication the paper raises in §4 ("certain
metrics ... have associated security implications").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fibermap.elements import FiberMap
from repro.perf.substrate import UnionFind, resolve_substrate
from repro.resilience.cuts import CutEvent, edge_cut
from repro.resilience.impact import CutImpact, assess_cut, probes_crossing
from repro.risk.matrix import RiskMatrix
from repro.traceroute.overlay import TrafficOverlay
from repro.transport.network import EdgeKey


@dataclass(frozen=True)
class AttackResult:
    """Cumulative damage as cuts accumulate."""

    #: Cut events in the order applied.
    events: Tuple[CutEvent, ...]
    #: After the i-th cut: total POP pairs disconnected across providers.
    cumulative_disconnected: Tuple[int, ...]
    #: After the i-th cut: providers with at least one disconnected pair.
    cumulative_isps_harmed: Tuple[int, ...]
    #: Probe traffic crossing each cut (0 without an overlay).
    probes_affected: Tuple[int, ...]


def _apply_sequence_reference(
    fiber_map: FiberMap,
    edges: Sequence[EdgeKey],
    overlay: Optional[TrafficOverlay],
) -> AttackResult:
    """Assess a sequence of ROW cuts with cumulative conduit removal.

    One :func:`assess_cut` per step; the per-step probe count comes from
    the overlay's traffic table directly instead of a second full
    assessment of the single-edge event.
    """
    traffic = overlay.traffic() if overlay is not None else None
    events: List[CutEvent] = []
    dead: set = set()
    cumulative_disconnected: List[int] = []
    cumulative_isps: List[int] = []
    probes: List[int] = []
    for edge in edges:
        event = edge_cut(fiber_map, *edge)
        # Accumulate: everything severed so far goes dark together.
        dead |= event.conduit_ids
        combined = CutEvent(
            description=f"cumulative cuts through {event.description}",
            conduit_ids=frozenset(dead),
            location=event.location,
        )
        impact = assess_cut(fiber_map, combined, substrate=False)
        events.append(event)
        cumulative_disconnected.append(impact.total_pairs_disconnected)
        cumulative_isps.append(
            sum(1 for i in impact.per_isp if i.pairs_disconnected > 0)
        )
        probes.append(
            probes_crossing(traffic, event.conduit_ids)
            if traffic is not None
            else 0
        )
    return AttackResult(
        events=tuple(events),
        cumulative_disconnected=tuple(cumulative_disconnected),
        cumulative_isps_harmed=tuple(cumulative_isps),
        probes_affected=tuple(probes),
    )


def _apply_sequence_substrate(
    fiber_map: FiberMap,
    edges: Sequence[EdgeKey],
    overlay: Optional[TrafficOverlay],
    substrate,
) -> AttackResult:
    """Cumulative-cut assessment via offline decremental connectivity.

    Cuts only ever remove conduits, so the cumulative step sequence is
    processed **in reverse** per provider: start from the footprint that
    survives every cut, then union conduit rows back in as steps rewind.
    Each provider therefore costs one union-find sweep over its rows
    instead of one shortest-path solve per hit link per step.
    """
    conduits = substrate.conduits
    traffic = overlay.traffic() if overlay is not None else None
    events: List[CutEvent] = []
    death_step: Dict[int, int] = {}
    running_tenants: set = set()
    step_tenants: List[set] = []
    probes: List[int] = []
    for step, edge in enumerate(edges):
        event = edge_cut(fiber_map, *edge)
        events.append(event)
        for cid in event.conduit_ids:
            row = conduits.row_of.get(cid)
            if row is not None:
                death_step.setdefault(row, step)
            running_tenants |= fiber_map.conduit(cid).tenants
        step_tenants.append(set(running_tenants))
        probes.append(
            probes_crossing(traffic, event.conduit_ids)
            if traffic is not None
            else 0
        )
    num_steps = len(edges)
    n = len(conduits.nodes)
    disconnected: List[Dict[str, int]] = [{} for _ in range(num_steps)]
    for isp in sorted(running_tenants):
        rows = [int(r) for r in conduits.rows_for_isp(isp)]
        link_info: List[Tuple[int, Tuple[str, str]]] = []
        first_step = num_steps
        for link in fiber_map.links_of(isp):
            hit = min(
                (
                    death_step[conduits.row_of[cid]]
                    for cid in link.conduit_ids
                    if conduits.row_of.get(cid) in death_step
                ),
                default=None,
            )
            if hit is not None:
                link_info.append((hit, link.endpoints))
                first_step = min(first_step, hit)
        if not link_info:
            continue
        union = UnionFind(n)
        incident = [0] * n
        def add_row(row: int) -> None:
            ia = int(conduits.cu[row])
            ib = int(conduits.cv[row])
            incident[ia] += 1
            incident[ib] += 1
            union.union(ia, ib)
        revive: Dict[int, List[int]] = {}
        for row in rows:
            died = death_step.get(row)
            if died is None:
                add_row(row)
            else:
                revive.setdefault(died, []).append(row)
        for k in range(num_steps - 1, first_step - 1, -1):
            count = 0
            for hit, (a, b) in link_info:
                if hit > k:
                    continue
                ia = conduits.index[a]
                ib = conduits.index[b]
                if (
                    incident[ia] == 0
                    or incident[ib] == 0
                    or not union.connected(ia, ib)
                ):
                    count += 1
            disconnected[k][isp] = count
            for row in revive.get(k, ()):
                add_row(row)
    cumulative_disconnected = []
    cumulative_isps = []
    for k in range(num_steps):
        per_isp = [
            disconnected[k].get(isp, 0) for isp in sorted(step_tenants[k])
        ]
        cumulative_disconnected.append(sum(per_isp))
        cumulative_isps.append(sum(1 for c in per_isp if c > 0))
    return AttackResult(
        events=tuple(events),
        cumulative_disconnected=tuple(cumulative_disconnected),
        cumulative_isps_harmed=tuple(cumulative_isps),
        probes_affected=tuple(probes),
    )


def _apply_sequence(
    fiber_map: FiberMap,
    edges: Sequence[EdgeKey],
    overlay: Optional[TrafficOverlay],
    substrate=None,
) -> AttackResult:
    """Assess a sequence of ROW cuts with cumulative conduit removal."""
    resolved = resolve_substrate(fiber_map, substrate)
    if resolved is None:
        return _apply_sequence_reference(fiber_map, edges, overlay)
    return _apply_sequence_substrate(fiber_map, edges, overlay, resolved)


def targeted_attack(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    cuts: int = 5,
    overlay: Optional[TrafficOverlay] = None,
    substrate=None,
) -> AttackResult:
    """Sever the most-shared rights-of-way, worst first."""
    if cuts <= 0:
        raise ValueError("cuts must be positive")
    by_edge: Dict[EdgeKey, int] = {}
    for conduit in fiber_map.conduits.values():
        count = matrix.sharing_count(conduit.conduit_id)
        by_edge[conduit.edge] = max(by_edge.get(conduit.edge, 0), count)
    ranked = sorted(by_edge.items(), key=lambda kv: (-kv[1], kv[0]))
    edges = [edge for edge, _ in ranked[:cuts]]
    return _apply_sequence(fiber_map, edges, overlay, substrate=substrate)


def random_cut_study(
    fiber_map: FiberMap,
    cuts: int = 5,
    trials: int = 10,
    seed: int = 13,
    overlay: Optional[TrafficOverlay] = None,
    substrate=None,
) -> List[AttackResult]:
    """Repeated random ROW cut sequences, for baseline comparison."""
    if cuts <= 0 or trials <= 0:
        raise ValueError("cuts and trials must be positive")
    rng = random.Random(seed)
    all_edges = sorted({c.edge for c in fiber_map.conduits.values()})
    results = []
    for _ in range(trials):
        edges = rng.sample(all_edges, min(cuts, len(all_edges)))
        results.append(
            _apply_sequence(fiber_map, edges, overlay, substrate=substrate)
        )
    return results


def mean_final_disconnected(results: Sequence[AttackResult]) -> float:
    """Average final disconnected-pair count over trials."""
    if not results:
        return 0.0
    return sum(r.cumulative_disconnected[-1] for r in results) / len(results)
