"""Random-cut studies and targeted attacks.

How much worse is an adversary who reads the map than a random backhoe?
The targeted attack severs the most-shared rights-of-way first (the
"How to Destroy the Internet" scenario of the paper's reference [40]);
the random study samples ROW cuts uniformly.  Comparing the two
quantifies the security implication the paper raises in §4 ("certain
metrics ... have associated security implications").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fibermap.elements import FiberMap
from repro.resilience.cuts import CutEvent, edge_cut
from repro.resilience.impact import CutImpact, assess_cut
from repro.risk.matrix import RiskMatrix
from repro.traceroute.overlay import TrafficOverlay
from repro.transport.network import EdgeKey


@dataclass(frozen=True)
class AttackResult:
    """Cumulative damage as cuts accumulate."""

    #: Cut events in the order applied.
    events: Tuple[CutEvent, ...]
    #: After the i-th cut: total POP pairs disconnected across providers.
    cumulative_disconnected: Tuple[int, ...]
    #: After the i-th cut: providers with at least one disconnected pair.
    cumulative_isps_harmed: Tuple[int, ...]
    #: Probe traffic crossing each cut (0 without an overlay).
    probes_affected: Tuple[int, ...]


def _apply_sequence(
    fiber_map: FiberMap,
    edges: Sequence[EdgeKey],
    overlay: Optional[TrafficOverlay],
) -> AttackResult:
    """Assess a sequence of ROW cuts with cumulative conduit removal."""
    events: List[CutEvent] = []
    dead: set = set()
    cumulative_disconnected: List[int] = []
    cumulative_isps: List[int] = []
    probes: List[int] = []
    for edge in edges:
        event = edge_cut(fiber_map, *edge)
        # Accumulate: everything severed so far goes dark together.
        dead |= event.conduit_ids
        combined = CutEvent(
            description=f"cumulative cuts through {event.description}",
            conduit_ids=frozenset(dead),
            location=event.location,
        )
        impact = assess_cut(fiber_map, combined, overlay)
        events.append(event)
        cumulative_disconnected.append(impact.total_pairs_disconnected)
        cumulative_isps.append(
            sum(1 for i in impact.per_isp if i.pairs_disconnected > 0)
        )
        probes.append(
            assess_cut(fiber_map, event, overlay).probes_affected
            if overlay is not None
            else 0
        )
    return AttackResult(
        events=tuple(events),
        cumulative_disconnected=tuple(cumulative_disconnected),
        cumulative_isps_harmed=tuple(cumulative_isps),
        probes_affected=tuple(probes),
    )


def targeted_attack(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    cuts: int = 5,
    overlay: Optional[TrafficOverlay] = None,
) -> AttackResult:
    """Sever the most-shared rights-of-way, worst first."""
    if cuts <= 0:
        raise ValueError("cuts must be positive")
    by_edge: Dict[EdgeKey, int] = {}
    for conduit in fiber_map.conduits.values():
        count = matrix.sharing_count(conduit.conduit_id)
        by_edge[conduit.edge] = max(by_edge.get(conduit.edge, 0), count)
    ranked = sorted(by_edge.items(), key=lambda kv: (-kv[1], kv[0]))
    edges = [edge for edge, _ in ranked[:cuts]]
    return _apply_sequence(fiber_map, edges, overlay)


def random_cut_study(
    fiber_map: FiberMap,
    cuts: int = 5,
    trials: int = 10,
    seed: int = 13,
    overlay: Optional[TrafficOverlay] = None,
) -> List[AttackResult]:
    """Repeated random ROW cut sequences, for baseline comparison."""
    if cuts <= 0 or trials <= 0:
        raise ValueError("cuts and trials must be positive")
    rng = random.Random(seed)
    all_edges = sorted({c.edge for c in fiber_map.conduits.values()})
    results = []
    for _ in range(trials):
        edges = rng.sample(all_edges, min(cuts, len(all_edges)))
        results.append(_apply_sequence(fiber_map, edges, overlay))
    return results


def mean_final_disconnected(results: Sequence[AttackResult]) -> float:
    """Average final disconnected-pair count over trials."""
    if not results:
        return 0.0
    return sum(r.cumulative_disconnected[-1] for r in results) / len(results)
