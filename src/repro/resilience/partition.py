"""Partitioning the US long-haul infrastructure (§4's security metric).

The paper notes that "certain metrics (e.g., number of fiber cuts to
partition the US long-haul infrastructure) have associated security
implications", and footnote 8 adds: "when accounting for alternate
routes via undersea cables, network partitioning for the US Internet is
a very unlikely scenario."  This module computes both: the minimum
number of right-of-way cuts that split the west coast from the east
coast over the terrestrial conduit graph, and the same figure when the
coastal undersea bypass (landing stations on both seaboards) is
included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap
from repro.transport.network import EdgeKey

#: Cities with major undersea cable landing stations, by seaboard.
WEST_LANDINGS = ("Seattle, WA", "San Francisco, CA", "Los Angeles, CA",
                 "San Diego, CA")
EAST_LANDINGS = ("Boston, MA", "New York, NY", "Norfolk, VA", "Miami, FL")

#: Longitude bounds classifying coastal anchor cities.
_WEST_LON = -115.0
_EAST_LON = -80.0


@dataclass(frozen=True)
class PartitionReport:
    """Minimum cuts to split west from east."""

    #: Right-of-way edges in the minimum cut.
    cut_edges: Tuple[EdgeKey, ...]
    #: Number of ROW cuts needed.
    min_cuts: int
    #: Same with the undersea bypass; ``None`` when partitioning becomes
    #: impossible (footnote 8's claim).
    min_cuts_with_undersea: Optional[int]

    @property
    def partitionable_with_undersea(self) -> bool:
        return self.min_cuts_with_undersea is not None


def _coastal_anchors(fiber_map: FiberMap) -> Tuple[List[str], List[str]]:
    west, east = [], []
    for city_key in fiber_map.nodes:
        lon = city_by_name(city_key).lon
        if lon <= _WEST_LON:
            west.append(city_key)
        elif lon >= _EAST_LON:
            east.append(city_key)
    return sorted(west), sorted(east)


def _row_graph(fiber_map: FiberMap) -> nx.Graph:
    """ROW-level graph: one unit-capacity edge per city pair.

    Cuts are physical dig events, so parallel conduits collapse into one
    edge (one trench event severs them together).
    """
    graph = nx.Graph()
    for conduit in fiber_map.conduits.values():
        graph.add_edge(*conduit.edge, capacity=1)
    return graph


def partition_report(fiber_map: FiberMap) -> PartitionReport:
    """Minimum west-east ROW cuts, with and without the undersea bypass."""
    west, east = _coastal_anchors(fiber_map)
    if not west or not east:
        raise ValueError("map lacks coastal anchor cities")
    graph = _row_graph(fiber_map)
    source, sink = "__WEST__", "__EAST__"
    for city in west:
        if city in graph:
            graph.add_edge(source, city, capacity=10**6)
    for city in east:
        if city in graph:
            graph.add_edge(sink, city, capacity=10**6)
    cut_value, (west_side, _east_side) = nx.minimum_cut(
        graph, source, sink, capacity="capacity"
    )
    cut_edges = tuple(
        sorted(
            (u, v) if u <= v else (v, u)
            for u, v in nx.edge_boundary(graph, west_side)
            if source not in (u, v) and sink not in (u, v)
        )
    )
    # Undersea bypass: landing stations on each seaboard are mutually
    # reachable by sea, which an inland backhoe cannot touch.
    bypass = graph.copy()
    landings = [
        c for c in WEST_LANDINGS + EAST_LANDINGS if c in fiber_map.nodes
    ]
    for i, a in enumerate(landings):
        for b in landings[i + 1:]:
            bypass.add_edge(a, b, capacity=10**6)
    cut_with_sea, _ = nx.minimum_cut(bypass, source, sink, capacity="capacity")
    return PartitionReport(
        cut_edges=cut_edges,
        min_cuts=int(cut_value),
        min_cuts_with_undersea=(
            int(cut_with_sea) if cut_with_sea < 10**6 else None
        ),
    )


def isp_partition_cuts(fiber_map: FiberMap, isp: str) -> int:
    """Minimum ROW cuts to split one provider's own network west-east.

    Returns 0 when the provider has no presence on one of the coasts
    (nothing to partition).
    """
    sub = nx.Graph()
    for conduit in fiber_map.conduits.values():
        if isp in conduit.tenants:
            sub.add_edge(*conduit.edge, capacity=1)
    west = [c for c in sub if city_by_name(c).lon <= _WEST_LON]
    east = [c for c in sub if city_by_name(c).lon >= _EAST_LON]
    if not west or not east:
        return 0
    source, sink = "__W__", "__E__"
    for city in west:
        sub.add_edge(source, city, capacity=10**6)
    for city in east:
        sub.add_edge(sink, city, capacity=10**6)
    value, _ = nx.minimum_cut(sub, source, sink, capacity="capacity")
    return int(value)
