"""Resilience analysis: what conduit cuts actually do.

The paper defers "different dimensions of network resilience" to future
work (§4) and motivates the threat model with backhoe cuts and natural
disasters (§7).  This subpackage provides that analysis over the
constructed map:

* :mod:`repro.resilience.cuts` — failure specifications: single conduit
  cuts, multi-conduit events (a trench cut severs every tenant at once),
  and geographically correlated disasters;
* :mod:`repro.resilience.impact` — per-provider impact of a cut:
  disconnected POP pairs, latency inflation of rerouted paths, probe
  traffic crossing the cut;
* :mod:`repro.resilience.montecarlo` — random-cut sampling vs targeted
  attacks on the most-shared conduits.
"""

from repro.resilience.cuts import (
    CutEvent,
    conduit_cut,
    disaster_cut,
    edge_cut,
)
from repro.resilience.impact import (
    CutImpact,
    IspImpact,
    assess_cut,
)
from repro.resilience.montecarlo import (
    AttackResult,
    random_cut_study,
    targeted_attack,
)
from repro.resilience.partition import (
    PartitionReport,
    isp_partition_cuts,
    partition_report,
)
from repro.resilience.traffic_shift import (
    DegradedTopology,
    TrafficShiftReport,
    traffic_shift,
)

__all__ = [
    "CutEvent",
    "conduit_cut",
    "edge_cut",
    "disaster_cut",
    "CutImpact",
    "IspImpact",
    "assess_cut",
    "random_cut_study",
    "targeted_attack",
    "AttackResult",
    "partition_report",
    "PartitionReport",
    "isp_partition_cuts",
    "traffic_shift",
    "TrafficShiftReport",
    "DegradedTopology",
]
