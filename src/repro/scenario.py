"""The canonical **US2015** scenario: everything wired together.

One object exposes (lazily, with caching) every artifact the paper's
analyses need: the ground-truth world, the published maps and records,
the §2 constructed map, the router-level topology, a traceroute
campaign, its conduit overlay, and the §4 risk matrix.  All components
derive deterministically from the scenario seed.

    >>> from repro import us2015
    >>> scenario = us2015()
    >>> scenario.constructed_map.stats()
    MapStats(...)

Since PR 4 the dataflow itself is declarative: :data:`STAGES` is a
table of :class:`repro.engine.StageDef` nodes — each naming its
dependencies, derived-seed offset, and cache policy — and a
:class:`repro.engine.StageGraph` owns all execution policy
(memoization, artifact-cache fetch/store with degraded-store recovery,
tracer spans, thread fan-out).  ``Scenario`` is a thin facade over
that graph: the public properties below are unchanged, and
``scenario.graph`` exposes the engine for inspection
(``python -m repro graph show``), targeted cache eviction
(``graph invalidate``), and concurrent stage materialization.

Configuration lives in one frozen :class:`ScenarioConfig` value
(``Scenario(config=...)`` / ``us2015(config=...)``); the individual
``seed``/``campaign_traces``/``workers``/``cache`` keyword arguments
remain supported as a legacy spelling of the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.engine import StageContext, StageDef, StageGraph
from repro.fibermap.elements import FiberMap
from repro.fibermap.pipeline import ConstructionReport, MapConstructionPipeline
from repro.fibermap.publish import ProviderMap, publish_provider_maps
from repro.fibermap.records import RecordsCorpus, generate_records
from repro.fibermap.synthesis import GroundTruth, synthesize_ground_truth
from repro.perf.cache import (
    CacheLike,
    describe_cache_setting,
    normalize_cache_setting,
    resolve_cache,
)
from repro.perf.substrate import RoutingSubstrate, build_substrate
from repro.risk.matrix import RiskMatrix
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.columns import TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase
from repro.traceroute.overlay import TrafficOverlay
from repro.traceroute.probe import ProbeEngine
from repro.traceroute.topology import InternetTopology
from repro.transport.network import TransportationNetwork

#: Default campaign size — the single documented default, shared by the
#: library and the CLI.  The paper used 4.9M traceroutes over three
#: months; 20k keeps the same top-conduit and top-ISP orderings at
#: interactive runtimes (scale up via ``ScenarioConfig(campaign_traces=...)``).
DEFAULT_CAMPAIGN_TRACES = 20000


@dataclass(frozen=True)
class ScenarioConfig:
    """Immutable configuration of one scenario.

    Consolidates the four knobs previously threaded as separate keyword
    arguments.  *cache* is canonicalized on construction (see
    :func:`repro.perf.cache.normalize_cache_setting`) so ``Path``,
    ``str``, and ``True`` spellings of the same cache root compare (and
    hash) equal — and therefore share one ``us2015`` memoization slot.
    """

    seed: int = 2015
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES
    workers: int = 1
    cache: CacheLike = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cache", normalize_cache_setting(self.cache)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (embedded in run manifests and BENCH records)."""
        return {
            "seed": self.seed,
            "campaign_traces": self.campaign_traces,
            "workers": self.workers,
            "cache": describe_cache_setting(self.cache),
        }


# ----------------------------------------------------------------------
# The stage table: the paper's dataflow, declared.
#
# Seed offsets are the historical per-stage derivations (previously
# scattered as ``seed + 1`` ... ``seed + 6`` literals); cache keys are
# the historical ``(stage, params)`` pairs, so a cache warmed before
# this refactor still serves.  The campaign's worker count shards the
# build without changing its records, so it stays out of the cache key.


def _build_ground_truth(ctx: StageContext) -> GroundTruth:
    return synthesize_ground_truth(ctx.seed)


def _build_provider_maps(ctx: StageContext) -> Dict[str, ProviderMap]:
    return publish_provider_maps(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_records(ctx: StageContext) -> RecordsCorpus:
    return generate_records(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_constructed_map(
    ctx: StageContext,
) -> Tuple[FiberMap, ConstructionReport]:
    pipeline = MapConstructionPipeline(
        ctx.dep("ground_truth"),
        provider_maps=ctx.dep("provider_maps"),
        corpus=ctx.dep("records"),
    )
    return pipeline.run()


def _build_topology(ctx: StageContext) -> InternetTopology:
    return InternetTopology(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_probe_engine(ctx: StageContext) -> ProbeEngine:
    return ProbeEngine(ctx.dep("topology"), seed=ctx.seed)


def _build_campaign(ctx: StageContext) -> TraceColumns:
    config = CampaignConfig(
        num_traces=ctx.params["traces"],
        seed=ctx.seed,
        workers=ctx.params["workers"],
    )
    return run_campaign(
        ctx.dep("topology"), config, engine=ctx.dep("probe_engine")
    )


def _build_geolocation(ctx: StageContext) -> GeolocationDatabase:
    return GeolocationDatabase(ctx.dep("topology"), seed=ctx.seed)


def _build_overlay(ctx: StageContext) -> TrafficOverlay:
    fiber_map, _ = ctx.dep("constructed_map")
    overlay = TrafficOverlay(
        fiber_map, ctx.dep("topology"), ctx.dep("geolocation")
    )
    overlay.add_traces(ctx.dep("campaign"))
    return overlay


def _build_risk_matrix(ctx: StageContext) -> RiskMatrix:
    fiber_map, _ = ctx.dep("constructed_map")
    return RiskMatrix(
        fiber_map,
        isps=[p.name for p in ctx.dep("ground_truth").profiles],
    )


def _build_substrate(ctx: StageContext) -> Optional[RoutingSubstrate]:
    fiber_map, _ = ctx.dep("constructed_map")
    return build_substrate(
        fiber_map, network=ctx.dep("ground_truth").network
    )


#: The declared dataflow of one scenario, in paper order.
STAGES: Tuple[StageDef, ...] = (
    StageDef(
        "ground_truth", _build_ground_truth, seed_offset=0,
        persist=True, cache_params=("seed",),
        doc="the synthesized world: actual conduits, tenancy, substrates",
    ),
    StageDef(
        "provider_maps", _build_provider_maps,
        deps=("ground_truth",), seed_offset=1,
        doc="step-1 published provider maps",
    ),
    StageDef(
        "records", _build_records,
        deps=("ground_truth",), seed_offset=2,
        doc="the public-records corpus (permits, filings)",
    ),
    StageDef(
        "constructed_map", _build_constructed_map,
        deps=("ground_truth", "provider_maps", "records"),
        persist=True, cache_params=("seed",),
        doc="the §2 four-step constructed map (+ construction report)",
    ),
    StageDef(
        "topology", _build_topology,
        deps=("ground_truth",), seed_offset=3,
        doc="router-level internet topology over the true world",
    ),
    StageDef(
        "probe_engine", _build_probe_engine,
        deps=("topology",), seed_offset=4,
        doc="the traceroute simulator",
    ),
    StageDef(
        "campaign", _build_campaign,
        deps=("topology", "probe_engine"), seed_offset=5,
        persist=True, cache_params=("seed", "traces"),
        doc="the §4.3 traceroute campaign (columnar record store)",
    ),
    StageDef(
        "geolocation", _build_geolocation,
        deps=("topology",), seed_offset=6,
        doc="router-to-city geolocation database",
    ),
    StageDef(
        "overlay", _build_overlay,
        deps=("constructed_map", "topology", "geolocation", "campaign"),
        persist=True, cache_params=("seed", "traces"),
        doc="the §4.3 traffic overlay on the constructed map",
    ),
    StageDef(
        "risk_matrix", _build_risk_matrix,
        deps=("constructed_map", "ground_truth"),
        doc="the §4.1 ISP x conduit shared-risk matrix",
    ),
    StageDef(
        "substrate", _build_substrate,
        deps=("constructed_map", "ground_truth"),
        persist=True, cache_params=("seed",),
        doc="the compiled §5/resilience routing substrate (CSR arrays)",
    ),
)

#: Facade attribute -> backing stage.  Derived views (``network``,
#: ``isps``, ``construction_report``) resolve to the stage whose value
#: they project; the experiment runner uses this to enforce each
#: experiment's declared ``requires``.
STAGE_OF_ATTRIBUTE: Dict[str, str] = {
    "ground_truth": "ground_truth",
    "network": "ground_truth",
    "isps": "ground_truth",
    "provider_maps": "provider_maps",
    "records": "records",
    "constructed_map": "constructed_map",
    "construction_report": "constructed_map",
    "topology": "topology",
    "probe_engine": "probe_engine",
    "campaign": "campaign",
    "geolocation": "geolocation",
    "overlay": "overlay",
    "risk_matrix": "risk_matrix",
    "substrate": "substrate",
}


def build_stage_graph(
    config: ScenarioConfig, cache: Any = None
) -> StageGraph:
    """A fresh :class:`StageGraph` wired for *config*."""
    return StageGraph(
        STAGES,
        base_seed=config.seed,
        params={
            "seed": config.seed,
            "traces": config.campaign_traces,
            "workers": config.workers,
        },
        cache=cache,
        span_prefix="scenario",
    )


class Scenario:
    """A fully wired reproduction scenario.

    A thin facade over a :class:`repro.engine.StageGraph` built from
    :data:`STAGES`: every property materializes its backing stage on
    first access (memoized by the graph), and all randomness derives
    from ``config.seed`` via each stage's declared offset, so two
    scenarios with the same configuration are identical.

    Pass a :class:`ScenarioConfig` (preferred), or the legacy
    ``seed``/``campaign_traces``/``workers``/``cache`` keywords — both
    spellings produce the same scenario.  ``workers`` shards the
    traceroute campaign across processes (0 auto-detects cores) without
    changing its records.  ``cache`` selects the persistent artifact
    cache: ``None`` defers to the ``REPRO_CACHE``/``REPRO_CACHE_DIR``
    environment (off by default), ``True``/``False`` force it, a path
    selects a specific cache root.  Persisted stages (ground truth,
    constructed map, campaign, overlay) are keyed by seed, campaign
    size, and a hash of the package source, so a warm cache can never
    serve stale artifacts.
    """

    def __init__(
        self,
        seed: int = 2015,
        campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
        workers: int = 1,
        cache: CacheLike = None,
        config: Optional[ScenarioConfig] = None,
    ):
        if config is None:
            config = ScenarioConfig(
                seed=seed,
                campaign_traces=campaign_traces,
                workers=workers,
                cache=cache,
            )
        self.config = config
        self.cache = resolve_cache(config.cache)
        self.graph = build_stage_graph(config, self.cache)

    # -- legacy attribute views of the config --------------------------
    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def campaign_traces(self) -> int:
        return self.config.campaign_traces

    @property
    def workers(self) -> int:
        return self.config.workers

    # ------------------------------------------------------------------
    def peek(self, stage: str) -> Any:
        """A stage's value if already materialized, else ``None``
        (never forces a build)."""
        return self.graph.peek(stage)

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss accounting for benchmarks and diagnostics."""
        if self.cache is None:
            return {"enabled": False, "hits": 0, "misses": 0, "root": None}
        return {
            "enabled": True,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "root": str(self.cache.root),
        }

    # -- the artifacts -------------------------------------------------
    @property
    def ground_truth(self) -> GroundTruth:
        return self.graph.materialize("ground_truth")

    @property
    def network(self) -> TransportationNetwork:
        return self.ground_truth.network

    @property
    def provider_maps(self) -> Dict[str, ProviderMap]:
        return self.graph.materialize("provider_maps")

    @property
    def records(self) -> RecordsCorpus:
        return self.graph.materialize("records")

    @property
    def constructed_map(self) -> FiberMap:
        """The §2 four-step constructed map (what all analyses use)."""
        return self.graph.materialize("constructed_map")[0]

    @property
    def construction_report(self) -> ConstructionReport:
        return self.graph.materialize("constructed_map")[1]

    @property
    def topology(self) -> InternetTopology:
        return self.graph.materialize("topology")

    @property
    def probe_engine(self) -> ProbeEngine:
        return self.graph.materialize("probe_engine")

    @property
    def campaign(self) -> TraceColumns:
        """The campaign as columns (still a sequence of records)."""
        return self.graph.materialize("campaign")

    @property
    def geolocation(self) -> GeolocationDatabase:
        return self.graph.materialize("geolocation")

    @property
    def overlay(self) -> TrafficOverlay:
        """The §4.3 traffic overlay, populated with the full campaign."""
        return self.graph.materialize("overlay")

    @property
    def risk_matrix(self) -> RiskMatrix:
        """The §4.1 risk matrix over the 20 studied providers."""
        return self.graph.materialize("risk_matrix")

    @property
    def substrate(self) -> Optional[RoutingSubstrate]:
        """The compiled routing substrate the §5 mitigation and
        resilience analyses run on (``None`` without scipy — the
        analyses then take their NetworkX reference paths)."""
        return self.graph.materialize("substrate")

    @property
    def isps(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ground_truth.profiles)

    # -- the typed query API -------------------------------------------
    def query(self, request: Any) -> Any:
        """Answer one typed what-if query against this scenario.

        *request* is either a :mod:`repro.service.schema` request
        dataclass (``CutRequest``, ``LatencyRequest``, ...) or the
        equivalent JSON mapping (``{"v": 1, "kind": "cut", ...}``),
        which is parsed and validated first.  Dispatches through the
        same handlers as the HTTP service and the CLI what-if verbs, so
        all three frontends give identical answers.  Raises
        :class:`repro.service.schema.QueryError` on validation or
        lookup failures.
        """
        from collections.abc import Mapping

        from repro.service.handlers import handle_query
        from repro.service.schema import parse_request

        if isinstance(request, Mapping):
            request = parse_request(request)
        return handle_query(self, request)


@lru_cache(maxsize=4)
def _us2015_for_config(config: ScenarioConfig) -> Scenario:
    return Scenario(config=config)


def us2015(
    seed: int = 2015,
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
    workers: int = 1,
    cache: CacheLike = None,
    config: Optional[ScenarioConfig] = None,
) -> Scenario:
    """The canonical scenario, cached so experiments share one instance.

    Memoization is keyed on the normalized :class:`ScenarioConfig`, so
    equivalent spellings (legacy keywords vs an explicit config, ``Path``
    vs ``str`` vs ``True`` cache settings) all share one instance.
    """
    if config is None:
        config = ScenarioConfig(
            seed=seed,
            campaign_traces=campaign_traces,
            workers=workers,
            cache=cache,
        )
    return _us2015_for_config(config)


#: Exposed for tests that need to drop the memoized scenarios.
us2015.cache_clear = _us2015_for_config.cache_clear  # type: ignore[attr-defined]
