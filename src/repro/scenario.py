"""Scenarios: a map family, a seed, and everything wired together.

One object exposes (lazily, with caching) every artifact the paper's
analyses need: the ground-truth world, the published maps and records,
the §2 constructed map, the router-level topology, a traceroute
campaign, its conduit overlay, and the §4 risk matrix.  All components
derive deterministically from the scenario seed.

    >>> from repro import us2015
    >>> scenario = us2015()
    >>> scenario.constructed_map.stats()
    MapStats(...)

Since PR 4 the dataflow itself is declarative: a table of
:class:`repro.engine.StageDef` nodes — each naming its dependencies,
derived-seed offset, and cache policy — and a
:class:`repro.engine.StageGraph` owns all execution policy
(memoization, artifact-cache fetch/store with degraded-store recovery,
tracer spans, thread fan-out).  ``Scenario`` is a thin facade over
that graph: the public properties below are unchanged, and
``scenario.graph`` exposes the engine for inspection
(``python -m repro graph show``), targeted cache eviction
(``graph invalidate``), and concurrent stage materialization.

The stage table is produced per **map family**
(:mod:`repro.families`): ``ScenarioConfig.family`` selects which map
universe the stages build — ``"us2015"`` (the paper's US long-haul
map, the default) or any other registered family (``"global2023"``,
the submarine-cable extension).  :func:`us2015` remains the canonical
spelling of the default scenario; :func:`load_scenario` is the
family-generic equivalent.

Configuration lives in one frozen :class:`ScenarioConfig` value
(``Scenario(config=...)`` / ``us2015(config=...)``); the individual
``seed``/``campaign_traces``/``workers``/``cache`` keyword arguments
remain supported as a legacy spelling of the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.engine import StageDef, StageGraph
from repro.families import (
    DEFAULT_FAMILY,
    MapFamily,
    get_family,
)
from repro.families.stages import STAGE_OF_ATTRIBUTE  # noqa: F401 (compat re-export)
from repro.fibermap.elements import FiberMap
from repro.fibermap.pipeline import ConstructionReport
from repro.fibermap.publish import ProviderMap
from repro.fibermap.records import RecordsCorpus
from repro.fibermap.synthesis import GroundTruth
from repro.perf.cache import (
    CacheLike,
    describe_cache_setting,
    normalize_cache_setting,
    resolve_cache,
)
from repro.perf.substrate import RoutingSubstrate
from repro.risk.matrix import RiskMatrix
from repro.traceroute.columns import TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase
from repro.traceroute.rngv2 import (
    SUPPORTED_RNG_CONTRACTS,
    default_rng_contract,
)
from repro.traceroute.overlay import TrafficOverlay
from repro.traceroute.probe import ProbeEngine
from repro.traceroute.topology import InternetTopology
from repro.transport.network import TransportationNetwork

#: Default campaign size — the single documented default, shared by the
#: library and the CLI.  The paper used 4.9M traceroutes over three
#: months; 20k keeps the same top-conduit and top-ISP orderings at
#: interactive runtimes (scale up via ``ScenarioConfig(campaign_traces=...)``).
DEFAULT_CAMPAIGN_TRACES = 20000


@dataclass(frozen=True)
class ScenarioConfig:
    """Immutable configuration of one scenario.

    Consolidates the knobs previously threaded as separate keyword
    arguments.  *cache* is canonicalized on construction (see
    :func:`repro.perf.cache.normalize_cache_setting`) so ``Path``,
    ``str``, and ``True`` spellings of the same cache root compare (and
    hash) equal — and therefore share one memoization slot.  *family*
    names a registered map family (validated on construction; see
    :mod:`repro.families`).
    """

    seed: int = 2015
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES
    workers: int = 1
    cache: CacheLike = field(default=None)
    family: str = DEFAULT_FAMILY
    rng_contract: int = field(default_factory=default_rng_contract)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cache", normalize_cache_setting(self.cache)
        )
        get_family(self.family)  # fail fast on unknown families
        if self.rng_contract not in SUPPORTED_RNG_CONTRACTS:
            raise ValueError(
                f"rng_contract must be one of {SUPPORTED_RNG_CONTRACTS}, "
                f"got {self.rng_contract!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (embedded in run manifests and BENCH records)."""
        return {
            "seed": self.seed,
            "campaign_traces": self.campaign_traces,
            "workers": self.workers,
            "cache": describe_cache_setting(self.cache),
            "family": self.family,
            "rng_contract": self.rng_contract,
        }


#: The default family's stage table, as a module-level tuple for
#: compatibility (the experiment runner and engine tests consume it).
#: Family-aware callers should use ``get_family(name).stage_table()``.
STAGES: Tuple[StageDef, ...] = get_family(DEFAULT_FAMILY).stage_table()


def build_stage_graph(
    config: ScenarioConfig, cache: Any = None
) -> StageGraph:
    """A fresh :class:`StageGraph` wired for *config*'s family.

    The ``family`` graph parameter reaches the family-generic stage
    builders; for the default family it is **not** part of any cache
    key (preserving pre-registry keys), while other families' persisted
    stages are keyed on it.  ``rng_contract`` likewise reaches the
    campaign/geolocation builders, and joins the draw-dependent stages'
    cache keys only under contract v2 — v1 artifacts keep their
    historical keys, and v1/v2 artifacts can never collide.
    """
    family = get_family(config.family)
    family.ensure_ready()
    return StageGraph(
        family.stage_table(rng_contract=config.rng_contract),
        base_seed=config.seed,
        params={
            "seed": config.seed,
            "traces": config.campaign_traces,
            "workers": config.workers,
            "family": config.family,
            "rng_contract": config.rng_contract,
        },
        cache=cache,
        span_prefix="scenario",
    )


class Scenario:
    """A fully wired reproduction scenario.

    A thin facade over a :class:`repro.engine.StageGraph` built from
    the configured family's stage table: every property materializes
    its backing stage on first access (memoized by the graph), and all
    randomness derives from ``config.seed`` via each stage's declared
    offset, so two scenarios with the same configuration are identical.

    Pass a :class:`ScenarioConfig` (preferred), or the legacy
    ``seed``/``campaign_traces``/``workers``/``cache`` keywords — both
    spellings produce the same scenario.  ``workers`` shards the
    traceroute campaign across processes (0 auto-detects cores) without
    changing its records.  ``cache`` selects the persistent artifact
    cache: ``None`` defers to the ``REPRO_CACHE``/``REPRO_CACHE_DIR``
    environment (off by default), ``True``/``False`` force it, a path
    selects a specific cache root.  Persisted stages (ground truth,
    constructed map, campaign, overlay) are keyed by seed, campaign
    size, family (for non-default families), and a hash of the package
    source, so a warm cache can never serve stale artifacts.
    """

    def __init__(
        self,
        seed: int = 2015,
        campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
        workers: int = 1,
        cache: CacheLike = None,
        config: Optional[ScenarioConfig] = None,
        family: str = DEFAULT_FAMILY,
    ):
        if config is None:
            config = ScenarioConfig(
                seed=seed,
                campaign_traces=campaign_traces,
                workers=workers,
                cache=cache,
                family=family,
            )
        self.config = config
        self.cache = resolve_cache(config.cache)
        self.graph = build_stage_graph(config, self.cache)

    # -- legacy attribute views of the config --------------------------
    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def campaign_traces(self) -> int:
        return self.config.campaign_traces

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def family(self) -> MapFamily:
        """The scenario's map-family declaration."""
        return get_family(self.config.family)

    # ------------------------------------------------------------------
    def peek(self, stage: str) -> Any:
        """A stage's value if already materialized, else ``None``
        (never forces a build)."""
        return self.graph.peek(stage)

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss accounting for benchmarks and diagnostics."""
        if self.cache is None:
            return {"enabled": False, "hits": 0, "misses": 0, "root": None}
        return {
            "enabled": True,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "root": str(self.cache.root),
        }

    # -- the artifacts -------------------------------------------------
    @property
    def ground_truth(self) -> GroundTruth:
        return self.graph.materialize("ground_truth")

    @property
    def network(self) -> TransportationNetwork:
        return self.ground_truth.network

    @property
    def provider_maps(self) -> Dict[str, ProviderMap]:
        return self.graph.materialize("provider_maps")

    @property
    def records(self) -> RecordsCorpus:
        return self.graph.materialize("records")

    @property
    def constructed_map(self) -> FiberMap:
        """The §2 four-step constructed map (what all analyses use)."""
        return self.graph.materialize("constructed_map")[0]

    @property
    def construction_report(self) -> ConstructionReport:
        return self.graph.materialize("constructed_map")[1]

    @property
    def topology(self) -> InternetTopology:
        return self.graph.materialize("topology")

    @property
    def probe_engine(self) -> ProbeEngine:
        return self.graph.materialize("probe_engine")

    @property
    def campaign(self) -> TraceColumns:
        """The campaign as columns (still a sequence of records)."""
        return self.graph.materialize("campaign")

    @property
    def geolocation(self) -> GeolocationDatabase:
        return self.graph.materialize("geolocation")

    @property
    def overlay(self) -> TrafficOverlay:
        """The §4.3 traffic overlay, populated with the full campaign."""
        return self.graph.materialize("overlay")

    @property
    def risk_matrix(self) -> RiskMatrix:
        """The §4.1 risk matrix over the scenario's providers."""
        return self.graph.materialize("risk_matrix")

    @property
    def substrate(self) -> Optional[RoutingSubstrate]:
        """The compiled routing substrate the §5 mitigation and
        resilience analyses run on (``None`` without scipy — the
        analyses then take their NetworkX reference paths)."""
        return self.graph.materialize("substrate")

    @property
    def isps(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ground_truth.profiles)

    # -- the typed query API -------------------------------------------
    def query(self, request: Any) -> Any:
        """Answer one typed what-if query against this scenario.

        *request* is either a :mod:`repro.service.schema` request
        dataclass (``CutRequest``, ``LatencyRequest``, ...) or the
        equivalent JSON mapping (``{"v": 1, "kind": "cut", ...}``),
        which is parsed and validated first.  Dispatches through the
        same handlers as the HTTP service and the CLI what-if verbs, so
        all three frontends give identical answers.  Raises
        :class:`repro.service.schema.QueryError` on validation or
        lookup failures.
        """
        from collections.abc import Mapping

        from repro.service.handlers import handle_query
        from repro.service.schema import parse_request

        if isinstance(request, Mapping):
            request = parse_request(request)
        return handle_query(self, request)


@lru_cache(maxsize=8)
def _scenario_for_config(config: ScenarioConfig) -> Scenario:
    return Scenario(config=config)


def load_scenario(
    family: str = DEFAULT_FAMILY,
    seed: Optional[int] = None,
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
    workers: int = 1,
    cache: CacheLike = None,
    config: Optional[ScenarioConfig] = None,
) -> Scenario:
    """The memoized scenario of any registered family.

    ``seed`` defaults to the family's declared ``default_seed``.
    Memoization is keyed on the normalized :class:`ScenarioConfig`, so
    equivalent spellings (legacy keywords vs an explicit config,
    ``Path`` vs ``str`` vs ``True`` cache settings) share one instance,
    and scenarios of different families coexist in the cache.
    """
    if config is None:
        declared = get_family(family)
        config = ScenarioConfig(
            seed=declared.default_seed if seed is None else seed,
            campaign_traces=campaign_traces,
            workers=workers,
            cache=cache,
            family=family,
        )
    return _scenario_for_config(config)


def us2015(
    seed: int = 2015,
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
    workers: int = 1,
    cache: CacheLike = None,
    config: Optional[ScenarioConfig] = None,
) -> Scenario:
    """The canonical US scenario, cached so experiments share one instance.

    A thin alias of :func:`load_scenario` pinned to the default family
    (rejecting configs of any other family, so a mislabeled call cannot
    silently serve the wrong map).
    """
    if config is None:
        config = ScenarioConfig(
            seed=seed,
            campaign_traces=campaign_traces,
            workers=workers,
            cache=cache,
            family=DEFAULT_FAMILY,
        )
    elif config.family != DEFAULT_FAMILY:
        raise ValueError(
            f"us2015() serves only the {DEFAULT_FAMILY!r} family "
            f"(got {config.family!r}); use load_scenario()"
        )
    return _scenario_for_config(config)


#: Exposed for tests that need to drop the memoized scenarios.  Both
#: entry points share one memo table, so either clear empties both.
load_scenario.cache_clear = _scenario_for_config.cache_clear  # type: ignore[attr-defined]
us2015.cache_clear = _scenario_for_config.cache_clear  # type: ignore[attr-defined]
