"""The canonical **US2015** scenario: everything wired together.

One object builds (lazily, with caching) every artifact the paper's
analyses need: the ground-truth world, the published maps and records,
the §2 constructed map, the router-level topology, a traceroute
campaign, its conduit overlay, and the §4 risk matrix.  All components
derive deterministically from the scenario seed.

    >>> from repro import us2015
    >>> scenario = us2015()
    >>> scenario.constructed_map.stats()
    MapStats(...)

Configuration lives in one frozen :class:`ScenarioConfig` value
(``Scenario(config=...)`` / ``us2015(config=...)``); the individual
``seed``/``campaign_traces``/``workers``/``cache`` keyword arguments
remain supported as a legacy spelling of the same thing.  Every stage
build runs inside a :mod:`repro.obs` tracing span, so a run under an
enabled tracer yields a full manifest of where the time went and which
stages the artifact cache served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fibermap.elements import FiberMap
from repro.fibermap.pipeline import ConstructionReport, MapConstructionPipeline
from repro.fibermap.publish import ProviderMap, publish_provider_maps
from repro.fibermap.records import RecordsCorpus, generate_records
from repro.fibermap.synthesis import GroundTruth, synthesize_ground_truth
from repro.obs.tracer import get_tracer
from repro.perf.cache import (
    CacheLike,
    describe_cache_setting,
    normalize_cache_setting,
    resolve_cache,
)
from repro.risk.matrix import RiskMatrix
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.geolocate import GeolocationDatabase
from repro.traceroute.overlay import TrafficOverlay
from repro.traceroute.probe import ProbeEngine, TracerouteRecord
from repro.traceroute.topology import InternetTopology
from repro.transport.network import TransportationNetwork

#: Default campaign size — the single documented default, shared by the
#: library and the CLI.  The paper used 4.9M traceroutes over three
#: months; 20k keeps the same top-conduit and top-ISP orderings at
#: interactive runtimes (scale up via ``ScenarioConfig(campaign_traces=...)``).
DEFAULT_CAMPAIGN_TRACES = 20000


@dataclass(frozen=True)
class ScenarioConfig:
    """Immutable configuration of one scenario.

    Consolidates the four knobs previously threaded as separate keyword
    arguments.  *cache* is canonicalized on construction (see
    :func:`repro.perf.cache.normalize_cache_setting`) so ``Path``,
    ``str``, and ``True`` spellings of the same cache root compare (and
    hash) equal — and therefore share one ``us2015`` memoization slot.
    """

    seed: int = 2015
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES
    workers: int = 1
    cache: CacheLike = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cache", normalize_cache_setting(self.cache)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (embedded in run manifests and BENCH records)."""
        return {
            "seed": self.seed,
            "campaign_traces": self.campaign_traces,
            "workers": self.workers,
            "cache": describe_cache_setting(self.cache),
        }


class Scenario:
    """A fully wired reproduction scenario.

    Every property is computed on first access and cached; all
    randomness is seeded from ``config.seed``, so two scenarios with the
    same configuration are identical.

    Pass a :class:`ScenarioConfig` (preferred), or the legacy
    ``seed``/``campaign_traces``/``workers``/``cache`` keywords — both
    spellings produce the same scenario.  ``workers`` shards the
    traceroute campaign across processes (0 auto-detects cores) without
    changing its records.  ``cache`` selects the persistent artifact
    cache: ``None`` defers to the ``REPRO_CACHE``/``REPRO_CACHE_DIR``
    environment (off by default), ``True``/``False`` force it, a path
    selects a specific cache root.  Cached stages (ground truth,
    constructed map, campaign, overlay) are keyed by seed, campaign
    size, and a hash of the package source, so a warm cache can never
    serve stale artifacts.
    """

    def __init__(
        self,
        seed: int = 2015,
        campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
        workers: int = 1,
        cache: CacheLike = None,
        config: Optional[ScenarioConfig] = None,
    ):
        if config is None:
            config = ScenarioConfig(
                seed=seed,
                campaign_traces=campaign_traces,
                workers=workers,
                cache=cache,
            )
        self.config = config
        self.cache = resolve_cache(config.cache)
        self._ground_truth: Optional[GroundTruth] = None
        self._provider_maps: Optional[Dict[str, ProviderMap]] = None
        self._corpus: Optional[RecordsCorpus] = None
        self._constructed: Optional[FiberMap] = None
        self._report: Optional[ConstructionReport] = None
        self._topology: Optional[InternetTopology] = None
        self._engine: Optional[ProbeEngine] = None
        self._campaign: Optional[List[TracerouteRecord]] = None
        self._database: Optional[GeolocationDatabase] = None
        self._overlay: Optional[TrafficOverlay] = None
        self._matrix: Optional[RiskMatrix] = None

    # -- legacy attribute views of the config --------------------------
    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def campaign_traces(self) -> int:
        return self.config.campaign_traces

    @property
    def workers(self) -> int:
        return self.config.workers

    # ------------------------------------------------------------------
    def _cached(
        self, stage: str, params: Dict[str, Any], build: Callable[[], Any]
    ) -> Any:
        """Memoize one stage through the artifact cache, if enabled.

        Under an enabled tracer each call is one ``scenario.<stage>``
        span, annotated with cache hit/miss attribution.  A cache
        *write* failure (disk full, permissions, injected fault) never
        fails the run: the freshly built value is returned anyway and
        the stage is marked degraded in the trace.
        """
        tracer = get_tracer()
        with tracer.span(f"scenario.{stage}"):
            if self.cache is None:
                value = build()
                tracer.annotate(cache="off")
                return value
            hit, value = self.cache.fetch(stage, params)
            if hit:
                tracer.annotate(cache="hit")
                return value
            value = build()
            try:
                self.cache.store(stage, params, value)
            except OSError as error:
                tracer.event(
                    "cache.degraded", stage=stage,
                    error=type(error).__name__,
                )
                tracer.annotate(cache="miss", store="failed")
            else:
                tracer.annotate(cache="miss")
            return value

    def _traced(self, stage: str, build: Callable[[], Any]) -> Any:
        """Span wrapper for the cheap, never-persisted stages."""
        with get_tracer().span(f"scenario.{stage}"):
            return build()

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss accounting for benchmarks and diagnostics."""
        if self.cache is None:
            return {"enabled": False, "hits": 0, "misses": 0, "root": None}
        return {
            "enabled": True,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "root": str(self.cache.root),
        }

    # ------------------------------------------------------------------
    @property
    def ground_truth(self) -> GroundTruth:
        if self._ground_truth is None:
            self._ground_truth = self._cached(
                "ground_truth",
                {"seed": self.seed},
                lambda: synthesize_ground_truth(self.seed),
            )
        return self._ground_truth

    @property
    def network(self) -> TransportationNetwork:
        return self.ground_truth.network

    @property
    def provider_maps(self) -> Dict[str, ProviderMap]:
        if self._provider_maps is None:
            self._provider_maps = self._traced(
                "provider_maps",
                lambda: publish_provider_maps(
                    self.ground_truth, seed=self.seed + 1
                ),
            )
        return self._provider_maps

    @property
    def records(self) -> RecordsCorpus:
        if self._corpus is None:
            self._corpus = self._traced(
                "records",
                lambda: generate_records(self.ground_truth, seed=self.seed + 2),
            )
        return self._corpus

    def _run_pipeline(self) -> None:
        def build() -> Tuple[FiberMap, ConstructionReport]:
            pipeline = MapConstructionPipeline(
                self.ground_truth,
                provider_maps=self.provider_maps,
                corpus=self.records,
            )
            return pipeline.run()

        self._constructed, self._report = self._cached(
            "constructed_map", {"seed": self.seed}, build
        )

    @property
    def constructed_map(self) -> FiberMap:
        """The §2 four-step constructed map (what all analyses use)."""
        if self._constructed is None:
            self._run_pipeline()
        return self._constructed

    @property
    def construction_report(self) -> ConstructionReport:
        if self._report is None:
            self._run_pipeline()
        return self._report

    @property
    def topology(self) -> InternetTopology:
        if self._topology is None:
            self._topology = self._traced(
                "topology",
                lambda: InternetTopology(self.ground_truth, seed=self.seed + 3),
            )
        return self._topology

    @property
    def probe_engine(self) -> ProbeEngine:
        if self._engine is None:
            self._engine = self._traced(
                "probe_engine",
                lambda: ProbeEngine(self.topology, seed=self.seed + 4),
            )
        return self._engine

    @property
    def campaign(self) -> List[TracerouteRecord]:
        if self._campaign is None:
            config = CampaignConfig(
                num_traces=self.campaign_traces,
                seed=self.seed + 5,
                workers=self.workers,
            )
            # Worker count never changes the records, so it stays out
            # of the cache key.
            self._campaign = self._cached(
                "campaign",
                {"seed": self.seed, "traces": self.campaign_traces},
                lambda: run_campaign(
                    self.topology, config, engine=self.probe_engine
                ),
            )
        return self._campaign

    @property
    def geolocation(self) -> GeolocationDatabase:
        if self._database is None:
            self._database = self._traced(
                "geolocation",
                lambda: GeolocationDatabase(self.topology, seed=self.seed + 6),
            )
        return self._database

    @property
    def overlay(self) -> TrafficOverlay:
        """The §4.3 traffic overlay, populated with the full campaign."""
        if self._overlay is None:

            def build() -> TrafficOverlay:
                overlay = TrafficOverlay(
                    self.constructed_map, self.topology, self.geolocation
                )
                overlay.add_traces(self.campaign)
                return overlay

            self._overlay = self._cached(
                "overlay",
                {"seed": self.seed, "traces": self.campaign_traces},
                build,
            )
        return self._overlay

    @property
    def risk_matrix(self) -> RiskMatrix:
        """The §4.1 risk matrix over the 20 studied providers."""
        if self._matrix is None:
            self._matrix = self._traced(
                "risk_matrix",
                lambda: RiskMatrix(
                    self.constructed_map,
                    isps=[p.name for p in self.ground_truth.profiles],
                ),
            )
        return self._matrix

    @property
    def isps(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ground_truth.profiles)


@lru_cache(maxsize=4)
def _us2015_for_config(config: ScenarioConfig) -> Scenario:
    return Scenario(config=config)


def us2015(
    seed: int = 2015,
    campaign_traces: int = DEFAULT_CAMPAIGN_TRACES,
    workers: int = 1,
    cache: CacheLike = None,
    config: Optional[ScenarioConfig] = None,
) -> Scenario:
    """The canonical scenario, cached so experiments share one instance.

    Memoization is keyed on the normalized :class:`ScenarioConfig`, so
    equivalent spellings (legacy keywords vs an explicit config, ``Path``
    vs ``str`` vs ``True`` cache settings) all share one instance.
    """
    if config is None:
        config = ScenarioConfig(
            seed=seed,
            campaign_traces=campaign_traces,
            workers=workers,
            cache=cache,
        )
    return _us2015_for_config(config)


#: Exposed for tests that need to drop the memoized scenarios.
us2015.cache_clear = _us2015_for_config.cache_clear  # type: ignore[attr-defined]
