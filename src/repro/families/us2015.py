"""The default map family: the paper's US long-haul fiber map.

A thin registration around :func:`repro.fibermap.synthesis.
synthesize_ground_truth` — the synthesis, datasets, and stage behavior
are exactly the pre-registry code path, and the family's stage table
keeps the historical cache keys, so goldens and warmed caches are
byte-identical through the registry.
"""

from __future__ import annotations

from repro.families.base import MapFamily, register_family
from repro.fibermap.synthesis import synthesize_ground_truth

US2015 = register_family(MapFamily(
    name="us2015",
    title="US long-haul fiber map (InterTubes, SIGCOMM 2015)",
    description=(
        "The paper's universe: 20 providers deploying fiber along US "
        "road/rail/pipeline rights-of-way, reverse-engineered via the "
        "§2 construction pipeline."
    ),
    geographic_model="corridor-right-of-way",
    risk_semantics="shared-conduit",
    synthesize=synthesize_ground_truth,
    row_kinds=(("road", "rail"),),
    experiments=None,  # the paper's own map supports every experiment
    default_seed=2015,
))
