"""Map families: pluggable map universes behind one stage graph.

A *map family* bundles everything that distinguishes one physical-map
universe from another — which ground truth gets synthesized (dataset
loaders + map-synthesis stages), what geographic model the corridors
follow (corridor right-of-way meander vs great-circle cable routes),
what its risk groups mean (a shared conduit along a highway vs a shared
trench/chokepoint like Suez or Malacca), and which of the registered
experiments are meaningful for it.  The stage-graph engine, the routing
substrate, the service, and the sweep orchestrator consume families
through this registry and never special-case any one of them: that a
new family needs *only* a registration here is the proof the engine
generalizes (ROADMAP, "intercontinental + submarine extension").

The default family is :data:`DEFAULT_FAMILY` (``"us2015"``) — the
paper's US long-haul map.  Its stage table, seed derivations, and cache
keys are byte-identical to the pre-registry code path, so goldens and
warmed artifact caches carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

#: The family every config defaults to: the paper's US long-haul map.
DEFAULT_FAMILY = "us2015"


class UnknownFamilyError(ValueError):
    """A family name that is not in the registry.

    Carries the offending name (``.family``) and the registered names
    (``.known``) so CLI/service frontends can render a structured error.
    """

    def __init__(self, family: str, known: Tuple[str, ...]):
        self.family = family
        self.known = tuple(known)
        super().__init__(
            f"unknown map family {family!r}; known families: "
            f"{', '.join(self.known) or '(none registered)'}"
        )


@dataclass(frozen=True)
class MapFamily:
    """Declaration of one map universe.

    ``synthesize`` is the family's ground-truth factory: it takes the
    stage-derived seed and returns a
    :class:`repro.fibermap.synthesis.GroundTruth`; every downstream
    stage (map construction, topology, campaign, overlay, risk matrix,
    substrate) is family-generic and consumes that object unchanged.

    ``prepare`` (optional) runs once before any stage of the family
    builds *or loads from cache* — it is where a family registers its
    extension datasets (e.g. landing-station cities), so artifacts
    unpickled in a fresh process still resolve their city keys.

    ``row_kinds`` are the right-of-way kind groups the routing substrate
    precompiles and the latency study routes over (the US family's
    deployed-route view is ``("road", "rail")``; a submarine family
    routes over ``("sea", "road")``).

    ``experiments`` limits the family to a declared subset of the
    experiment registry (``None`` means every experiment applies —
    reserved for the default family whose artifacts the paper defines).

    ``client_isps``/``dest_isps`` are the traceroute campaign's provider
    mixes — ``(name, weight)`` pairs over this family's carriers.
    ``None`` defers to the campaign module's defaults (the paper's US
    access/content mix).
    """

    name: str
    title: str
    description: str
    #: "corridor-right-of-way" (meandered terrestrial corridors) or
    #: "submarine-great-circle" (cable routes between landing stations).
    geographic_model: str
    #: What a shared risk group physically is in this family.
    risk_semantics: str
    synthesize: Callable[[int], Any]
    row_kinds: Tuple[Tuple[str, ...], ...] = (("road", "rail"),)
    experiments: Optional[FrozenSet[str]] = None
    default_seed: int = 2015
    prepare: Optional[Callable[[], None]] = None
    client_isps: Optional[Tuple[Tuple[str, float], ...]] = None
    dest_isps: Optional[Tuple[Tuple[str, float], ...]] = None

    def supports(self, experiment_id: str) -> bool:
        """Whether *experiment_id* is meaningful for this family."""
        return self.experiments is None or experiment_id in self.experiments

    def supported_experiments(self, all_ids: Any) -> List[str]:
        """The subset of *all_ids* this family supports, sorted."""
        return sorted(i for i in all_ids if self.supports(i))

    def ensure_ready(self) -> None:
        """Run the family's dataset preparation hook (idempotent)."""
        if self.prepare is not None:
            self.prepare()

    def stage_table(self, rng_contract: int = 1) -> Tuple[Any, ...]:
        """This family's stage-graph table (see
        :func:`repro.families.stages.build_stage_table`).

        *rng_contract* only widens draw-dependent cache keys under v2;
        the default keeps the historical (contract v1) keys.
        """
        from repro.families.stages import build_stage_table

        return build_stage_table(self, rng_contract=rng_contract)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (CLI ``families`` listing, service info)."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "geographic_model": self.geographic_model,
            "risk_semantics": self.risk_semantics,
            "row_kinds": [list(group) for group in self.row_kinds],
            "default_seed": self.default_seed,
            "experiments": (
                None if self.experiments is None
                else sorted(self.experiments)
            ),
        }


_REGISTRY: Dict[str, MapFamily] = {}


def register_family(family: MapFamily) -> MapFamily:
    """Add *family* to the registry; returns it for assignment."""
    if family.name in _REGISTRY:
        raise ValueError(f"map family {family.name!r} already registered")
    _REGISTRY[family.name] = family
    return family


def get_family(name: str) -> MapFamily:
    """Look up a registered family; raises :class:`UnknownFamilyError`."""
    family = _REGISTRY.get(name)
    if family is None:
        raise UnknownFamilyError(name, tuple(sorted(_REGISTRY)))
    return family


def family_names() -> List[str]:
    """All registered family names, sorted."""
    return sorted(_REGISTRY)
