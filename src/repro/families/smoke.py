"""CI smoke test for the family registry: ``python -m repro.families.smoke``.

Two checks, both against real end-to-end paths:

1. **Global experiment subset** — builds a small ``global2023``
   scenario and runs every experiment the family declares, through the
   family-gated runner.  Any experiment that raises, or any declared id
   the runner refuses, fails the job.  The gate itself is exercised
   too: an undeclared (US-dataset-bound) experiment must raise
   :class:`~repro.experiments.runner.UnsupportedExperimentError`.
2. **Side-by-side serve** — boots the what-if service with one US and
   one global scenario registered together, warms both, and issues
   ``/v1/query`` risk and cut queries against each by name.  Responses
   must be byte-identical to the CLI ``--json`` path (one canonical
   encoder) and structurally sane for each family's geography.

Scenarios are intentionally small so the whole job fits in CI time.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request
from typing import Any, Dict, Tuple

#: Smoke scenario shapes: small but big enough for stable orderings.
US_SEED = 2015
GLOBAL_SEED = 2023
TRACES = 600

#: One severable submarine edge (a Malacca-approach chokepoint) and a
#: cross-basin latency pair for the global query checks.
GLOBAL_CUT = ("Penang, MY", "Singapore, SG")
GLOBAL_LATENCY = ("Mumbai, IN", "Tokyo, JP")
US_CUT = ("Phoenix, AZ", "Tucson, AZ")


def _request(url: str, payload: Any = None) -> Tuple[int, bytes]:
    req = urllib.request.Request(
        url,
        data=(
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        ),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _check(condition: bool, message: str) -> None:
    if not condition:
        _fail(message)


def _run_global_experiments(scenario) -> None:
    from repro.experiments.runner import (
        EXPERIMENTS,
        UnsupportedExperimentError,
        run_experiment,
    )

    family = scenario.family
    supported = family.supported_experiments(EXPERIMENTS)
    _check(bool(supported), f"{family.name} declares no experiments")
    for experiment_id in supported:
        result = run_experiment(experiment_id, scenario)
        _check(
            bool(result.text.strip()),
            f"{experiment_id} produced empty text for {family.name}",
        )
        print(f"smoke: {family.name} {experiment_id} ok")
    unsupported = sorted(set(EXPERIMENTS) - set(supported))
    _check(
        bool(unsupported),
        f"{family.name} claims every experiment — gate untestable",
    )
    try:
        run_experiment(unsupported[0], scenario)
    except UnsupportedExperimentError as error:
        _check(
            error.family == family.name
            and error.experiment_id == unsupported[0],
            f"gate error carries wrong identity: {error}",
        )
    else:
        _fail(f"{unsupported[0]} ran despite being undeclared")
    print(
        f"smoke: {family.name} subset ok "
        f"({len(supported)} ran, {len(unsupported)} gated)"
    )


def _query(base: str, scenario, name: str, payload: Dict[str, Any]) -> Dict:
    from repro.service.schema import encode_json, parse_request

    payload = dict(payload, scenario=name)
    status, body = _request(f"{base}/v1/query", payload)
    _check(status == 200, f"{name} {payload['kind']}: HTTP {status}")
    local = scenario.query(parse_request(payload))
    expected = (encode_json(local.to_json()) + "\n").encode()
    _check(
        body == expected,
        f"{name} {payload['kind']}: HTTP body differs from CLI --json",
    )
    return json.loads(body)


def main() -> int:
    from repro.scenario import ScenarioConfig, load_scenario
    from repro.service.registry import ScenarioRegistry
    from repro.service.server import ServiceApp, make_server

    us = load_scenario(
        config=ScenarioConfig(
            seed=US_SEED, campaign_traces=TRACES, family="us2015"
        )
    )
    global_ = load_scenario(
        config=ScenarioConfig(
            seed=GLOBAL_SEED, campaign_traces=TRACES, family="global2023"
        )
    )

    _run_global_experiments(global_)

    registry = ScenarioRegistry()
    registry.add("us", scenario=us)
    registry.add("global", scenario=global_)
    app = ServiceApp(registry, tracer=None)
    server = make_server(app, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"smoke: service on {base} (us + global)")

    try:
        registry.warm_all_async()
        _check(registry.wait_ready(timeout=900), "warm-up did not finish")
        status, _ = _request(f"{base}/healthz")
        _check(status == 200, f"healthz after warm-up: {status} != 200")

        us_risk = _query(base, us, "us", {"v": 1, "kind": "risk", "top": 3})
        gl_risk = _query(
            base, global_, "global", {"v": 1, "kind": "risk", "top": 3}
        )
        _check(
            us_risk["num_isps"] > 0 and gl_risk["num_isps"] > 0,
            "risk slices are empty",
        )
        _check(
            us_risk["num_conduits"] != gl_risk["num_conduits"],
            "us and global risk slices are identical — routing broken?",
        )
        us_top = {c["conduit_id"] for c in us_risk["top_conduits"]}
        gl_top = {c["conduit_id"] for c in gl_risk["top_conduits"]}
        print(
            f"smoke: risk ok (us {us_risk['num_conduits']} conduits "
            f"top {sorted(us_top)}; global {gl_risk['num_conduits']} "
            f"conduits top {sorted(gl_top)})"
        )

        us_cut = _query(
            base, us, "us",
            {"v": 1, "kind": "cut", "city_a": US_CUT[0],
             "city_b": US_CUT[1]},
        )
        gl_cut = _query(
            base, global_, "global",
            {"v": 1, "kind": "cut", "city_a": GLOBAL_CUT[0],
             "city_b": GLOBAL_CUT[1]},
        )
        for label, cut in (("us", us_cut), ("global", gl_cut)):
            _check(
                cut["event"]["conduits_severed"] >= 1
                and cut["impact"]["isps_affected"] >= 1,
                f"{label} cut severed nothing: {cut['event']}",
            )
        print(
            f"smoke: cut ok (us {us_cut['impact']['isps_affected']} ISPs, "
            f"global {gl_cut['impact']['isps_affected']} ISPs affected)"
        )

        gl_lat = _query(
            base, global_, "global",
            {"v": 1, "kind": "latency", "city_a": GLOBAL_LATENCY[0],
             "city_b": GLOBAL_LATENCY[1]},
        )
        _check(
            gl_lat["reachable"] and gl_lat["delay_ms"] > 0,
            f"global latency drifted: {gl_lat}",
        )
        print(
            f"smoke: global latency ok ({GLOBAL_LATENCY[0]} -> "
            f"{GLOBAL_LATENCY[1]}: {gl_lat['delay_ms']:.2f} ms, "
            f"{gl_lat['hops']} hops)"
        )

        # A US city must not resolve in the global scenario: families
        # keep distinct geographies even when served side by side.
        status, body = _request(
            f"{base}/v1/query",
            {"v": 1, "kind": "latency", "scenario": "global",
             "city_a": US_CUT[0], "city_b": US_CUT[1]},
        )
        error = json.loads(body)
        _check(
            status == 404 and error["error"]["code"] == "unknown_city",
            f"cross-family city leak: HTTP {status}, {error}",
        )
        print("smoke: cross-family isolation ok")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    _check(not thread.is_alive(), "server thread did not stop")
    print("smoke: clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
