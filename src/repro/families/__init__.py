"""Map-family registry: pluggable map universes behind one stage graph.

Importing this package registers the built-in families — ``us2015``
(the paper's US long-haul map, the default) and ``global2023`` (the
submarine-cable extension).  ``repro.scenario`` resolves
``ScenarioConfig.family`` through :func:`get_family`; this package must
therefore never import ``repro.scenario``.
"""

from repro.families.base import (
    DEFAULT_FAMILY,
    MapFamily,
    UnknownFamilyError,
    family_names,
    get_family,
    register_family,
)
from repro.families.stages import STAGE_OF_ATTRIBUTE, build_stage_table
from repro.families.us2015 import US2015
from repro.families.global2023 import GLOBAL2023

__all__ = [
    "DEFAULT_FAMILY",
    "MapFamily",
    "UnknownFamilyError",
    "family_names",
    "get_family",
    "register_family",
    "build_stage_table",
    "STAGE_OF_ATTRIBUTE",
    "US2015",
    "GLOBAL2023",
]
