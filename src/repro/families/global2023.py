"""The global submarine-cable map family (``global2023``).

A second map universe through the same stage graph: landing stations
and metro hubs (:mod:`repro.data.stations`) joined by submarine cable
systems and terrestrial backhaul, populated by intercontinental
carriers.  The synthesis is deliberately self-contained — it shares the
:class:`~repro.fibermap.synthesis.GroundTruth` contract, the POP
selection and link-planning machinery, and the right-of-way registry
with the US family, but never touches the US synthesis path, so the
``us2015`` goldens cannot move.

Risk semantics follow the submarine world: a "conduit" on a shared edge
is the shared trench/passage itself.  Because several independent cable
systems traverse the same chokepoints (Port Said–Suez, Bab el-Mandeb,
Malacca, Gibraltar — see :data:`repro.data.stations.CABLE_SYSTEMS`) and
carriers all route over the same shortest cable paths, tenancy
concentrates exactly where the real Internet's does, and the §4 risk
matrix surfaces Suez/Malacca-style chokepoint risk.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.data.corridors import KIND_SEA
from repro.data.isps import ISPProfile
from repro.data.stations import GLOBAL_CORRIDORS, ensure_registered
from repro.families.base import MapFamily, register_family
from repro.fibermap.elements import Conduit, FiberMap
from repro.fibermap.synthesis import (
    GroundTruth,
    _select_pops,
    _stable_unit,
)
from repro.transport.builder import build_transport_network
from repro.transport.network import (
    EdgeKey,
    TransportationNetwork,
    canonical_edge,
)
from repro.transport.rightofway import RowRegistry

#: Tenants in an edge's shared trench before a second, physically
#: separate conduit (another cable system's trench on the same passage)
#: becomes attractive.
SHARED_TRENCH_THRESHOLD = 10
#: Maximum physically separate conduits per edge (chokepoints that stay
#: at one accumulate the extreme tenant counts — that is the point).
MAX_PARALLEL = 2
#: Fraction of edges with room for a separate trench (sticky per edge).
PARALLEL_PROB = 0.3
#: Relative routing cost per right-of-way kind: cables are the purpose-
#: built medium; terrestrial backhaul is slightly dispreferred for
#: long-haul segments.
KIND_FACTORS = {"sea": 1.0, "road": 1.05}
#: Magnitude of per-carrier route diversity (fraction of edge length).
#: Smaller than the US family's: there are far fewer viable ocean paths,
#: which is exactly why chokepoints form.
JITTER_SPREAD = 0.25
#: Discount applied to edges a carrier already lights (trunk reuse).
REUSE_DISCOUNT = 0.55
#: Distance scale (km) of the extra-link acceptance decay.  Oceans are
#: wide: nearby-POP preference operates at thousands of kilometers.
LINK_DISTANCE_SCALE_KM = 2500.0

#: Intercontinental carrier footprints.  Names are synthetic (the point
#: is footprint structure, not identity); targets are sized to the
#: ~30-city global universe.  ``step`` keeps the §2 construction
#: pipeline's two-phase semantics: step-1 carriers publish geocoded
#: cable maps, step-3 carriers publish POP lists only.
GLOBAL_ISPS: Tuple[ISPProfile, ...] = (
    ISPProfile("Aquila", "tier1", 1, 24, 40, hub_bias=1.2),
    ISPProfile("Meridian", "tier1", 1, 20, 32, hub_bias=1.5),
    ISPProfile("Pacifica", "tier1", 1, 16, 24, hub_bias=1.8),
    ISPProfile("Atlantica", "tier1", 1, 14, 20, hub_bias=2.0),
    ISPProfile("OrientLink", "tier1", 3, 12, 18, hub_bias=2.2),
    ISPProfile("IndoPacific", "tier1", 3, 12, 16, hub_bias=1.6),
    ISPProfile("EuroRing", "regional", 3, 9, 12, hub_bias=1.4),
    ISPProfile("PolarJet", "tier1", 3, 10, 14, hub_bias=2.4),
    ISPProfile("AustralNet", "regional", 3, 8, 10, hub_bias=1.0),
    ISPProfile("RedSea Telecom", "regional", 3, 7, 9, hub_bias=1.2),
)


#: Traceroute campaign mixes over the global carriers: eyeball traffic
#: enters through the access-heavy regionals plus the biggest tier-1
#: footprints; destinations skew toward the transit backbones.
GLOBAL_CLIENT_ISPS: Tuple[Tuple[str, float], ...] = (
    ("EuroRing", 3.0),
    ("AustralNet", 1.5),
    ("RedSea Telecom", 1.0),
    ("Aquila", 2.5),
    ("Meridian", 2.0),
    ("IndoPacific", 1.5),
)
GLOBAL_DEST_ISPS: Tuple[Tuple[str, float], ...] = (
    ("Aquila", 5.0),
    ("Meridian", 3.0),
    ("Pacifica", 2.5),
    ("Atlantica", 2.0),
    ("OrientLink", 1.8),
    ("IndoPacific", 1.5),
    ("PolarJet", 1.2),
    ("EuroRing", 1.0),
)


def build_global_network() -> TransportationNetwork:
    """The global transport network: cable systems + backhaul only."""
    ensure_registered()
    return build_transport_network(corridors=GLOBAL_CORRIDORS)


def _plan_links_global(
    pops: List[str], target_links: int, rng: random.Random
) -> List[EdgeKey]:
    """Plan which POP pairs a carrier connects (ocean-scale variant of
    :func:`repro.fibermap.synthesis._plan_links`: same nearest-neighbor
    spanning skeleton, distance decay at thousands of kilometers)."""
    cities = {key: city_by_name(key) for key in pops}
    ordered = sorted(pops, key=lambda k: -cities[k].population)
    links: Set[EdgeKey] = set()
    connected: List[str] = [ordered[0]]
    for key in ordered[1:]:
        partner = min(
            connected, key=lambda c: cities[key].distance_km(cities[c])
        )
        links.add(canonical_edge(key, partner))
        connected.append(key)
    attempts = 0
    max_attempts = target_links * 200
    while len(links) < target_links and attempts < max_attempts:
        attempts += 1
        a = rng.choice(ordered)
        b = rng.choice(ordered)
        if a == b:
            continue
        edge = canonical_edge(a, b)
        if edge in links:
            continue
        distance = cities[a].distance_km(cities[b])
        scale = distance / LINK_DISTANCE_SCALE_KM
        if rng.random() < 1.0 / (1.0 + scale ** 1.6):
            links.add(edge)
    return sorted(links)


class _CableRouter:
    """Routes one carrier's links over the cable/backhaul network.

    Weights combine geometry length, medium preference, and a small
    per-carrier jitter; a reuse discount consolidates each carrier onto
    its own lit systems.  With few ocean paths and small jitter, all
    carriers converge on the same passages — the chokepoint effect.
    """

    def __init__(self, isp: str, network: TransportationNetwork):
        self.graph = nx.Graph()
        self._base: Dict[EdgeKey, float] = {}
        for record in network.edges():
            kind_factor = min(
                KIND_FACTORS[record.kind_of[name]]
                for name in record.corridor_names
            )
            jitter = 1.0 + JITTER_SPREAD * _stable_unit(
                f"{isp}|{record.edge[0]}|{record.edge[1]}"
            )
            weight = record.length_km * kind_factor * jitter
            self._base[record.edge] = weight
            self.graph.add_edge(record.edge[0], record.edge[1], w=weight)

    def route(self, a_key: str, b_key: str) -> List[str]:
        return nx.shortest_path(self.graph, a_key, b_key, weight="w")

    def mark_used(self, path: List[str]) -> None:
        for a, b in zip(path, path[1:]):
            edge = canonical_edge(a, b)
            discounted = self._base[edge] * REUSE_DISCOUNT
            if self.graph[a][b]["w"] > discounted:
                self.graph[a][b]["w"] = discounted


def _pick_row(rows: List, used_row_ids: Set[str]) -> Optional[object]:
    """The right-of-way for a new trench: prefer an unused cable row
    (the purpose-built medium), then any unused row."""
    unused = [r for r in rows if r.row_id not in used_row_ids]
    if not unused:
        return None
    for row in unused:
        if row.kind == KIND_SEA:
            return row
    return unused[0]


def _occupy_edge(
    fiber_map: FiberMap,
    registry: RowRegistry,
    edge: EdgeKey,
    isp: str,
    used_row_ids: Set[str],
) -> Conduit:
    """Find or create the shared trench *isp* uses on one edge.

    One conduit per edge until it crowds past
    :data:`SHARED_TRENCH_THRESHOLD` — every carrier through a passage
    shares the trench, which is what makes a chokepoint a chokepoint.
    """
    existing = fiber_map.conduits_between(*edge)
    for conduit in existing:
        if isp in conduit.tenants:
            return conduit
    rows = registry.rows_for_edge(*edge)
    if existing:
        least = min(existing, key=lambda c: (c.num_tenants, c.conduit_id))
        crowded = least.num_tenants >= SHARED_TRENCH_THRESHOLD
        splittable = (
            _stable_unit(f"gsplit|{edge[0]}|{edge[1]}") < PARALLEL_PROB
        )
        if crowded and splittable and len(existing) < MAX_PARALLEL:
            row = _pick_row(rows, used_row_ids)
            if row is not None:
                used_row_ids.add(row.row_id)
                return fiber_map.add_conduit(
                    edge[0], edge[1], row.row_id,
                    registry.geometry(row.row_id),
                )
        return least
    row = _pick_row(rows, used_row_ids)
    if row is None:  # pragma: no cover - rows always exist for edges
        raise RuntimeError(f"no right-of-way available for edge {edge}")
    used_row_ids.add(row.row_id)
    return fiber_map.add_conduit(
        edge[0], edge[1], row.row_id, registry.geometry(row.row_id)
    )


def synthesize_global_ground_truth(seed: int = 2023) -> GroundTruth:
    """Generate the global ground-truth world for one seed.

    Same process shape as the US synthesis — carriers select POPs, plan
    links, route them, and occupy trenches — so every downstream stage
    (construction pipeline, topology, campaign, overlay, risk matrix,
    substrate) consumes the result unchanged.
    """
    network = build_global_network()
    registry = RowRegistry(network)
    rng = random.Random(seed)
    fiber_map = FiberMap()
    used_row_ids: Set[str] = set()
    city_pool = [city_by_name(k) for k in sorted(network.cities())]

    for profile in GLOBAL_ISPS:
        pops = _select_pops(profile, city_pool, rng)
        planned = _plan_links_global(pops, profile.target_links, rng)
        router = _CableRouter(profile.name, network)
        planned.sort(
            key=lambda e: -city_by_name(e[0]).distance_km(city_by_name(e[1]))
        )
        for a_key, b_key in planned:
            path = router.route(a_key, b_key)
            router.mark_used(path)
            conduit_ids: List[str] = []
            for u, v in zip(path, path[1:]):
                conduit = _occupy_edge(
                    fiber_map, registry, canonical_edge(u, v),
                    profile.name, used_row_ids,
                )
                conduit_ids.append(conduit.conduit_id)
                registry.occupy(conduit.row_id, profile.name)
            fiber_map.add_link(profile.name, path, conduit_ids)
    return GroundTruth(
        fiber_map=fiber_map,
        network=network,
        registry=registry,
        seed=seed,
        profiles=GLOBAL_ISPS,
    )


#: The experiments meaningful on a global submarine map.  Excluded:
#: the US layer renders (fig2_3, fig5), the road/rail co-location
#: histogram (fig4), the US west-east partition study (ext_partition),
#: the US Title II policy model (ext_policy), the NSFNET-1995
#: comparison (ext_nsfnet), and the US-growth trajectory (ext_growth),
#: which all assume the US corridor datasets.
GLOBAL_EXPERIMENTS = frozenset({
    "table1", "fig1", "fig6", "fig7", "fig8", "table2_3", "fig9",
    "table4", "fig10", "table5", "fig11", "fig12",
    "ext_resilience", "ext_exchange", "ext_protection", "ext_annotated",
    "ext_opacity", "ext_capacity",
})

GLOBAL2023 = register_family(MapFamily(
    name="global2023",
    title="Global submarine-cable map (landing stations + cable systems)",
    description=(
        "Intercontinental carriers over submarine cable systems and "
        "terrestrial backhaul, with shared-trench/chokepoint risk "
        "groups (Suez, Bab el-Mandeb, Malacca, Gibraltar)."
    ),
    geographic_model="submarine-great-circle",
    risk_semantics="shared-trench-chokepoint",
    synthesize=synthesize_global_ground_truth,
    row_kinds=(("sea", "road"),),
    experiments=GLOBAL_EXPERIMENTS,
    default_seed=2023,
    prepare=ensure_registered,
    client_isps=GLOBAL_CLIENT_ISPS,
    dest_isps=GLOBAL_DEST_ISPS,
))
