"""The family-generic stage table: the paper's dataflow, declared once.

These builders were previously module-level in ``repro.scenario`` and
hardwired to the US ground truth; they are now family-generic — the only
stage that differs per family is ``ground_truth`` (each family's
``synthesize``) and ``substrate`` (compiled over the family's declared
right-of-way kind groups).  Everything in between (provider maps, the §2
construction pipeline, topology, campaign, geolocation, overlay, risk
matrix) consumes the :class:`~repro.fibermap.synthesis.GroundTruth`
contract and runs unchanged on any family.

:func:`build_stage_table` reproduces, for the default family, the exact
pre-registry ``STAGES`` tuple — same names, dependency lists, seed
offsets, persistence flags, cache parameters, and docs — so cache keys
and goldens are byte-identical.  Non-default families qualify persisted
stages' cache keys with the family name, keeping their artifacts from
ever colliding with (or shadowing) the default family's.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine import StageContext, StageDef
from repro.families.base import DEFAULT_FAMILY, MapFamily, get_family
from repro.fibermap.elements import FiberMap
from repro.fibermap.pipeline import ConstructionReport, MapConstructionPipeline
from repro.fibermap.publish import ProviderMap, publish_provider_maps
from repro.fibermap.records import RecordsCorpus, generate_records
from repro.fibermap.synthesis import GroundTruth
from repro.perf.substrate import RoutingSubstrate, build_substrate
from repro.risk.matrix import RiskMatrix
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.columns import TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase
from repro.traceroute.overlay import TrafficOverlay
from repro.traceroute.probe import ProbeEngine
from repro.traceroute.rngv2 import RNG_CONTRACT_V1, default_rng_contract
from repro.traceroute.topology import InternetTopology


def _family_of(ctx: StageContext) -> MapFamily:
    family = get_family(ctx.params.get("family", DEFAULT_FAMILY))
    family.ensure_ready()
    return family


def _build_ground_truth(ctx: StageContext) -> GroundTruth:
    return _family_of(ctx).synthesize(ctx.seed)


def _build_provider_maps(ctx: StageContext) -> Dict[str, ProviderMap]:
    return publish_provider_maps(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_records(ctx: StageContext) -> RecordsCorpus:
    return generate_records(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_constructed_map(
    ctx: StageContext,
) -> Tuple[FiberMap, ConstructionReport]:
    pipeline = MapConstructionPipeline(
        ctx.dep("ground_truth"),
        provider_maps=ctx.dep("provider_maps"),
        corpus=ctx.dep("records"),
    )
    return pipeline.run()


def _build_topology(ctx: StageContext) -> InternetTopology:
    return InternetTopology(ctx.dep("ground_truth"), seed=ctx.seed)


def _build_probe_engine(ctx: StageContext) -> ProbeEngine:
    return ProbeEngine(ctx.dep("topology"), seed=ctx.seed)


def _rng_contract_of(ctx: StageContext) -> int:
    return ctx.params.get("rng_contract", default_rng_contract())


def _build_campaign(ctx: StageContext) -> TraceColumns:
    family = _family_of(ctx)
    overrides = {}
    if family.client_isps is not None:
        overrides["client_isps"] = family.client_isps
    if family.dest_isps is not None:
        overrides["dest_isps"] = family.dest_isps
    config = CampaignConfig(
        num_traces=ctx.params["traces"],
        seed=ctx.seed,
        workers=ctx.params["workers"],
        rng_contract=_rng_contract_of(ctx),
        **overrides,
    )
    return run_campaign(
        ctx.dep("topology"), config, engine=ctx.dep("probe_engine")
    )


def _build_geolocation(ctx: StageContext) -> GeolocationDatabase:
    return GeolocationDatabase(
        ctx.dep("topology"),
        seed=ctx.seed,
        rng_contract=_rng_contract_of(ctx),
    )


def _build_overlay(ctx: StageContext) -> TrafficOverlay:
    fiber_map, _ = ctx.dep("constructed_map")
    overlay = TrafficOverlay(
        fiber_map, ctx.dep("topology"), ctx.dep("geolocation")
    )
    overlay.add_traces(ctx.dep("campaign"))
    return overlay


def _build_risk_matrix(ctx: StageContext) -> RiskMatrix:
    fiber_map, _ = ctx.dep("constructed_map")
    return RiskMatrix(
        fiber_map,
        isps=[p.name for p in ctx.dep("ground_truth").profiles],
    )


def _build_substrate(ctx: StageContext) -> Optional[RoutingSubstrate]:
    fiber_map, _ = ctx.dep("constructed_map")
    return build_substrate(
        fiber_map,
        network=ctx.dep("ground_truth").network,
        row_kinds=_family_of(ctx).row_kinds,
    )


#: Facade attribute -> backing stage.  Derived views (``network``,
#: ``isps``, ``construction_report``) resolve to the stage whose value
#: they project; the experiment runner uses this to enforce each
#: experiment's declared ``requires``.  Identical for every family —
#: families change what the stages *contain*, not what they are.
STAGE_OF_ATTRIBUTE: Dict[str, str] = {
    "ground_truth": "ground_truth",
    "network": "ground_truth",
    "isps": "ground_truth",
    "provider_maps": "provider_maps",
    "records": "records",
    "constructed_map": "constructed_map",
    "construction_report": "constructed_map",
    "topology": "topology",
    "probe_engine": "probe_engine",
    "campaign": "campaign",
    "geolocation": "geolocation",
    "overlay": "overlay",
    "risk_matrix": "risk_matrix",
    "substrate": "substrate",
}


def build_stage_table(
    family: MapFamily, rng_contract: int = RNG_CONTRACT_V1
) -> Tuple[StageDef, ...]:
    """The declared dataflow of one scenario of *family*, in paper order.

    Seed offsets are the historical per-stage derivations (previously
    scattered as ``seed + 1`` ... ``seed + 6`` literals); for the default
    family the cache keys are the historical ``(stage, params)`` pairs,
    so a cache warmed before the family registry still serves.  Other
    families prepend ``family`` to every persisted stage's cache key.
    The campaign's worker count shards the build without changing its
    records, so it stays out of the cache key everywhere.

    Under RNG contract v2 the draw-dependent persisted stages (campaign,
    overlay) append ``rng_contract`` to their cache keys; contract-v1
    artifacts keep their historical keys, so the two contracts' cached
    artifacts never collide and a pre-v2 warm cache still serves v1.
    """

    def keyed(*params: str) -> Tuple[str, ...]:
        if family.name != DEFAULT_FAMILY:
            params = ("family",) + params
        return params

    def draw_keyed(*params: str) -> Tuple[str, ...]:
        if rng_contract != RNG_CONTRACT_V1:
            params = params + ("rng_contract",)
        return keyed(*params)

    return (
        StageDef(
            "ground_truth", _build_ground_truth, seed_offset=0,
            persist=True, cache_params=keyed("seed"),
            doc="the synthesized world: actual conduits, tenancy, substrates",
        ),
        StageDef(
            "provider_maps", _build_provider_maps,
            deps=("ground_truth",), seed_offset=1,
            doc="step-1 published provider maps",
        ),
        StageDef(
            "records", _build_records,
            deps=("ground_truth",), seed_offset=2,
            doc="the public-records corpus (permits, filings)",
        ),
        StageDef(
            "constructed_map", _build_constructed_map,
            deps=("ground_truth", "provider_maps", "records"),
            persist=True, cache_params=keyed("seed"),
            doc="the §2 four-step constructed map (+ construction report)",
        ),
        StageDef(
            "topology", _build_topology,
            deps=("ground_truth",), seed_offset=3,
            doc="router-level internet topology over the true world",
        ),
        StageDef(
            "probe_engine", _build_probe_engine,
            deps=("topology",), seed_offset=4,
            doc="the traceroute simulator",
        ),
        StageDef(
            "campaign", _build_campaign,
            deps=("topology", "probe_engine"), seed_offset=5,
            persist=True, cache_params=draw_keyed("seed", "traces"),
            doc="the §4.3 traceroute campaign (columnar record store)",
        ),
        StageDef(
            "geolocation", _build_geolocation,
            deps=("topology",), seed_offset=6,
            doc="router-to-city geolocation database",
        ),
        StageDef(
            "overlay", _build_overlay,
            deps=("constructed_map", "topology", "geolocation", "campaign"),
            persist=True, cache_params=draw_keyed("seed", "traces"),
            doc="the §4.3 traffic overlay on the constructed map",
        ),
        StageDef(
            "risk_matrix", _build_risk_matrix,
            deps=("constructed_map", "ground_truth"),
            doc="the §4.1 ISP x conduit shared-risk matrix",
        ),
        StageDef(
            "substrate", _build_substrate,
            deps=("constructed_map", "ground_truth"),
            persist=True, cache_params=keyed("seed"),
            doc="the compiled §5/resilience routing substrate (CSR arrays)",
        ),
    )
