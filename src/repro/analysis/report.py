"""Plain-text rendering of tables, histograms, and CDFs.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output consistent and
readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_histogram(
    edges: Sequence[float],
    counts: Sequence[int],
    title: str = "",
    width: int = 40,
) -> str:
    """Horizontal ASCII histogram (Figure 4 style)."""
    peak = max(counts) if counts else 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for left, count in zip(edges, counts):
        bar = "#" * (0 if peak == 0 else round(width * count / max(1, peak)))
        lines.append(f"[{left:4.2f}) {count:5d} {bar}")
    return "\n".join(lines)


def format_cdf(
    series: Sequence[Tuple[float, float]],
    title: str = "",
    points: int = 11,
) -> str:
    """Compact CDF summary at evenly spaced fractions."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(empty)")
        return "\n".join(lines)
    for i in range(points):
        target = i / (points - 1)
        value = None
        for x, fraction in series:
            if fraction >= target:
                value = x
                break
        if value is None:
            value = series[-1][0]
        lines.append(f"p{int(target * 100):3d}: {value}")
    return "\n".join(lines)
