"""Connectivity characterization of the long-haul map (Figure 1).

The paper's prominent features of the constructed map: dense deployments
(northeast, coasts), long-haul hubs (Denver, Salt Lake City), pronounced
absence of infrastructure (upper plains, four corners), parallel
deployments, and spurs.  This module quantifies each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap, MapStats


@dataclass(frozen=True)
class ConnectivityReport:
    """Quantified Figure 1 features."""

    stats: MapStats
    #: Cities ranked by conduit degree (the long-haul hubs).
    top_hubs: Tuple[Tuple[str, int], ...]
    #: City-pair edges hosting more than one parallel conduit.
    parallel_edges: Tuple[Tuple[str, str], ...]
    #: Degree-1 cities (spur endpoints).
    spurs: Tuple[str, ...]
    #: Conduit endpoints per coarse region (conduit density proxy).
    region_density: Dict[str, float]
    #: Whether the conduit graph is a single connected component.
    connected: bool
    diameter_hops: int


#: Coarse census-style regions by state, for the density contrast
#: between the dense northeast and the empty upper plains/four corners.
_REGIONS: Dict[str, str] = {}
for _region, _states in {
    "northeast": ("NY", "NJ", "PA", "MA", "CT", "RI", "NH", "VT", "ME", "MD", "DE", "DC"),
    "southeast": ("VA", "NC", "SC", "GA", "FL", "AL", "MS", "TN", "KY", "WV", "LA", "AR"),
    "midwest": ("OH", "MI", "IN", "IL", "WI", "MN", "IA", "MO"),
    "plains": ("ND", "SD", "NE", "KS", "OK"),
    "four_corners": ("UT", "CO", "NM", "AZ"),
    "mountain": ("MT", "WY", "ID", "NV"),
    "pacific": ("CA", "OR", "WA"),
    "texas": ("TX",),
}.items():
    for _state in _states:
        _REGIONS[_state] = _region


def region_of(city_key: str) -> str:
    """Coarse region of a city."""
    return _REGIONS.get(city_by_name(city_key).state, "other")


def connectivity_report(fiber_map: FiberMap, top: int = 10) -> ConnectivityReport:
    """Quantify the map's Figure 1 features."""
    graph = fiber_map.simple_conduit_graph()
    degrees = dict(graph.degree())
    top_hubs = tuple(
        sorted(degrees.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    )
    parallel = tuple(
        sorted(
            {
                c.edge
                for c in fiber_map.conduits.values()
                if len(fiber_map.conduits_between(*c.edge)) > 1
            }
        )
    )
    spurs = tuple(sorted(c for c, d in degrees.items() if d == 1))
    # Conduit-kilometers per region (each conduit split between the
    # regions of its endpoints).
    density: Dict[str, float] = {}
    for conduit in fiber_map.conduits.values():
        for key in conduit.edge:
            region = region_of(key)
            density[region] = density.get(region, 0.0) + conduit.length_km / 2.0
    connected = nx.is_connected(graph) if len(graph) > 0 else False
    if connected:
        diameter = nx.diameter(graph)
    else:
        diameter = max(
            (nx.diameter(graph.subgraph(c)) for c in nx.connected_components(graph)),
            default=0,
        )
    return ConnectivityReport(
        stats=fiber_map.stats(),
        top_hubs=top_hubs,
        parallel_edges=parallel,
        spurs=spurs,
        region_density=density,
        connected=connected,
        diameter_hops=diameter,
    )
