"""ASCII rendering of the continental-US map (Figures 1-3 in a terminal).

Projects the lower-48 bounding box onto a character grid and draws
conduit/corridor geometry with density shading, so the paper's visual
claims — dense northeast, empty upper plains and four corners, the
transcontinental corridors — are visible without a GIS.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.fibermap.elements import FiberMap
from repro.geo.polyline import Polyline
from repro.transport.network import TransportationNetwork

#: Continental-US bounding box.
LAT_MIN, LAT_MAX = 24.0, 50.0
LON_MIN, LON_MAX = -125.0, -66.0

#: Density shading, lightest to darkest.
SHADES = " .:-=+*#%@"


class AsciiMap:
    """A character-grid canvas over the lower 48."""

    def __init__(self, width: int = 100, height: int = 32):
        if width < 10 or height < 5:
            raise ValueError("canvas too small")
        self.width = width
        self.height = height
        self._density: List[List[int]] = [
            [0] * width for _ in range(height)
        ]
        self._marks: List[List[Optional[str]]] = [
            [None] * width for _ in range(height)
        ]

    # ------------------------------------------------------------------
    def _cell(self, lat: float, lon: float) -> Optional[Tuple[int, int]]:
        if not (LAT_MIN <= lat <= LAT_MAX and LON_MIN <= lon <= LON_MAX):
            return None
        col = int((lon - LON_MIN) / (LON_MAX - LON_MIN) * (self.width - 1))
        row = int((LAT_MAX - lat) / (LAT_MAX - LAT_MIN) * (self.height - 1))
        return row, col

    def draw_polyline(self, line: Polyline, weight: int = 1,
                      spacing_km: float = 25.0) -> None:
        """Accumulate density along a route."""
        for point in line.resample(spacing_km):
            cell = self._cell(point.lat, point.lon)
            if cell is not None:
                row, col = cell
                self._density[row][col] += weight

    def mark(self, lat: float, lon: float, symbol: str) -> None:
        """Place a symbol (city marker) that overrides shading."""
        if len(symbol) != 1:
            raise ValueError("symbol must be one character")
        cell = self._cell(lat, lon)
        if cell is not None:
            row, col = cell
            self._marks[row][col] = symbol

    def render(self) -> str:
        """The finished map as a multi-line string."""
        peak = max(
            (v for row in self._density for v in row), default=0
        )
        lines = []
        for r in range(self.height):
            chars = []
            for c in range(self.width):
                mark = self._marks[r][c]
                if mark is not None:
                    chars.append(mark)
                    continue
                value = self._density[r][c]
                if value == 0 or peak == 0:
                    chars.append(" ")
                else:
                    index = min(
                        len(SHADES) - 1,
                        1 + int((len(SHADES) - 2) * value / peak),
                    )
                    chars.append(SHADES[index])
            lines.append("".join(chars).rstrip())
        return "\n".join(lines)


def render_fiber_map(
    fiber_map: FiberMap,
    width: int = 100,
    height: int = 32,
    weight_by_tenants: bool = True,
    hub_symbols: int = 8,
) -> str:
    """Figure 1: the conduit map, shaded by tenancy, hubs marked ``O``."""
    canvas = AsciiMap(width=width, height=height)
    for conduit in fiber_map.conduits.values():
        weight = conduit.num_tenants if weight_by_tenants else 1
        canvas.draw_polyline(conduit.geometry, weight=max(1, weight))
    if hub_symbols > 0:
        graph = fiber_map.simple_conduit_graph()
        hubs = sorted(graph.degree(), key=lambda kv: -kv[1])[:hub_symbols]
        from repro.data.cities import city_by_name

        for city_key, _ in hubs:
            city = city_by_name(city_key)
            canvas.mark(city.lat, city.lon, "O")
    return canvas.render()


def render_transport(
    network: TransportationNetwork,
    kind: str,
    width: int = 100,
    height: int = 32,
) -> str:
    """Figures 2-3: one infrastructure layer."""
    canvas = AsciiMap(width=width, height=height)
    for record in network.edges():
        geometry = record.geometry_for_kind(kind)
        if geometry is not None:
            canvas.draw_polyline(geometry)
    return canvas.render()
