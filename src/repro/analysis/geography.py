"""Geography of fiber deployments (§3, Figures 4 and 5).

Quantifies the correspondence between conduits and transportation
infrastructure with the buffer-overlap measurement: for every conduit,
the fraction of its route co-located with roadways, railways, and the
union of the two (Figure 4), and the identification of conduits that
follow neither — which other rights-of-way, i.e. pipelines, explain
(Figure 5: the Level 3 route outside Laurel, MS; Anaheim-Las Vegas along
a refined-products pipeline; Houston-Atlanta along NGL pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fibermap.elements import Conduit, FiberMap
from repro.geo.overlap import (
    DEFAULT_BUFFER_KM,
    CorridorIndex,
    histogram,
    overlap_profile,
)
from repro.transport.network import TransportationNetwork


@dataclass(frozen=True)
class ConduitColocation:
    """Per-conduit co-location fractions."""

    conduit_id: str
    road: float
    rail: float
    pipeline: float
    road_or_rail: float


@dataclass(frozen=True)
class GeographyReport:
    """The Figure 4 dataset plus summary statistics."""

    colocations: Tuple[ConduitColocation, ...]
    buffer_km: float

    def histogram(self, kind: str, bins: int = 10) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
        """Figure 4 histogram for ``road``, ``rail`` or ``road_or_rail``."""
        values = [getattr(c, kind) for c in self.colocations]
        return histogram(values, bins=bins)

    def mean_fraction(self, kind: str) -> float:
        values = [getattr(c, kind) for c in self.colocations]
        return sum(values) / len(values) if values else 0.0

    @property
    def road_beats_rail_fraction(self) -> float:
        """Fraction of conduits more co-located with roads than rails —
        the paper's "physical link paths more often follow roadway
        infrastructure compared with rail"."""
        if not self.colocations:
            return 0.0
        wins = sum(1 for c in self.colocations if c.road > c.rail)
        return wins / len(self.colocations)


def geography_report(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    buffer_km: float = DEFAULT_BUFFER_KM,
    spacing_km: float = 10.0,
    index: Optional[CorridorIndex] = None,
) -> GeographyReport:
    """Compute co-location of every conduit with road/rail/pipeline layers."""
    if index is None:
        index = network.corridor_index()
    rows: List[ConduitColocation] = []
    for conduit_id, conduit in sorted(fiber_map.conduits.items()):
        profile = overlap_profile(
            conduit.geometry, index, buffer_km=buffer_km, spacing_km=spacing_km
        )
        road = profile.fraction("road")
        rail = profile.fraction("rail")
        union = profile.union("road", "rail")
        rows.append(
            ConduitColocation(
                conduit_id=conduit_id,
                road=road,
                rail=rail,
                pipeline=profile.fraction("pipeline"),
                road_or_rail=union,
            )
        )
    return GeographyReport(colocations=tuple(rows), buffer_km=buffer_km)


def non_transport_conduits(
    report: GeographyReport,
    fiber_map: FiberMap,
    threshold: float = 0.5,
) -> List[Tuple[Conduit, ConduitColocation]]:
    """Figure 5: conduits mostly *not* co-located with road or rail.

    Returns them with their co-location rows; the interesting ones have
    high pipeline fractions (the "other types of rights-of-way, such as
    natural gas and/or petroleum pipelines" of §3).
    """
    result = []
    for row in report.colocations:
        if row.road_or_rail < threshold:
            result.append((fiber_map.conduit(row.conduit_id), row))
    result.sort(key=lambda pair: pair[1].road_or_rail)
    return result
