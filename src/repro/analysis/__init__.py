"""Map analyses: geography (§3), connectivity (Figure 1), reporting."""

from repro.analysis.connectivity import ConnectivityReport, connectivity_report
from repro.analysis.geography import (
    GeographyReport,
    geography_report,
    non_transport_conduits,
)
from repro.analysis.report import (
    format_cdf,
    format_histogram,
    format_table,
)

__all__ = [
    "GeographyReport",
    "geography_report",
    "non_transport_conduits",
    "ConnectivityReport",
    "connectivity_report",
    "format_table",
    "format_histogram",
    "format_cdf",
]
