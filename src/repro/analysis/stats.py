"""Small statistics helpers: bootstrap confidence intervals, CDF utilities.

Figure 7 reports per-provider averages with standard errors; bootstrap
confidence intervals are the distribution-free upgrade, and CDF helpers
back the Figure 9/12-style comparisons.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 17,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of the mean.

    Deterministic given *seed*; degenerates to (v, v) for single-value
    input and raises for empty input.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence out of (0,1): {confidence}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 1:
        return (float(data[0]), float(data[0]))
    rng = np.random.default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        sample = rng.choice(data, size=data.size, replace=True)
        means[i] = sample.mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(means, [100 * alpha, 100 * (1 - alpha)])
    return (float(low), float(high))


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Sorted (value, cumulative fraction) points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Kolmogorov-Smirnov distance between two samples.

    Used to quantify how far the traffic-overlaid sharing distribution
    moved from the physical one (Figure 9's visual gap, as a number).
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    points = sorted(set(a) | set(b))
    return max(abs(cdf_at(a, x) - cdf_at(b, x)) for x in points)
