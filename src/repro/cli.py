"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list every registered table/figure
``run <id> [...]``         run experiments and print their artifacts
``map [--geojson PATH]``   render the constructed map (ASCII), optionally
                           exporting GeoJSON
``layers``                 render the road and rail layers (ASCII)
``audit <ISP>``            shared-risk audit for one provider
``cut <cityA> <cityB>``    assess a right-of-way cut between two cities
``cache {info,clear}``     inspect or empty the persistent artifact cache

Global options: ``--seed N`` (default 2015), ``--traces N`` campaign size,
``--workers N`` campaign worker processes (0 = one per core),
``--cache-dir PATH`` / ``--no-cache`` to control the artifact cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.scenario import Scenario, us2015


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InterTubes (SIGCOMM 2015) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--traces", type=int, default=5000,
        help="traceroute campaign size (traffic analyses)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="campaign worker processes (0 = one per CPU core)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent artifact cache directory (enables the cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache even if REPRO_CACHE is set",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list registered experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")

    map_cmd = sub.add_parser("map", help="render the constructed map")
    map_cmd.add_argument("--geojson", metavar="PATH", default=None)
    map_cmd.add_argument("--width", type=int, default=100)

    sub.add_parser("layers", help="render road and rail layers")

    audit = sub.add_parser("audit", help="shared-risk audit for one ISP")
    audit.add_argument("isp")

    cut = sub.add_parser("cut", help="assess a right-of-way cut")
    cut.add_argument("city_a")
    cut.add_argument("city_b")

    annotate = sub.add_parser(
        "annotate", help="export the traffic/delay-annotated map"
    )
    annotate.add_argument("--geojson", metavar="PATH", default=None)

    pareto = sub.add_parser(
        "pareto", help="risk-latency Pareto frontier between two cities"
    )
    pareto.add_argument("city_a")
    pareto.add_argument("city_b")
    pareto.add_argument("--isp", default=None)

    backup = sub.add_parser(
        "backup", help="SRLG-diverse backup plan for an ISP and city pair"
    )
    backup.add_argument("isp")
    backup.add_argument("city_a")
    backup.add_argument("city_b")

    sub.add_parser(
        "partition", help="minimum west-east cuts (and the undersea bypass)"
    )

    exchange = sub.add_parser(
        "exchange", help="plan jointly funded conduits (the §6.3 model)"
    )
    exchange.add_argument("--conduits", type=int, default=5)

    cache = sub.add_parser(
        "cache", help="inspect or empty the persistent artifact cache"
    )
    cache.add_argument("action", choices=("info", "clear"))
    return parser


def _cmd_experiments() -> int:
    from repro.experiments import EXPERIMENTS

    for experiment_id in sorted(EXPERIMENTS):
        print(f"{experiment_id:10s} {EXPERIMENTS[experiment_id].title}")
    return 0


def _cmd_run(scenario: Scenario, ids: List[str]) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    chosen = sorted(EXPERIMENTS) if ids == ["all"] else ids
    for experiment_id in chosen:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment: {experiment_id}", file=sys.stderr)
            return 2
        _, text = run_experiment(experiment_id, scenario)
        print(text)
        print()
    return 0


def _cmd_map(scenario: Scenario, geojson: Optional[str], width: int) -> int:
    from repro.analysis.render import render_fiber_map
    from repro.fibermap.serialization import fiber_map_to_geojson

    fiber_map = scenario.constructed_map
    print(render_fiber_map(fiber_map, width=width))
    print(f"\n{fiber_map.stats()}")
    if geojson:
        with open(geojson, "w", encoding="utf-8") as handle:
            json.dump(fiber_map_to_geojson(fiber_map), handle)
        print(f"GeoJSON written to {geojson}")
    return 0


def _cmd_layers(scenario: Scenario) -> int:
    from repro.analysis.render import render_transport

    for kind, title in (("road", "Roadway layer"), ("rail", "Railway layer")):
        print(f"--- {title} ---")
        print(render_transport(scenario.network, kind))
        print()
    return 0


def _cmd_audit(scenario: Scenario, isp: str) -> int:
    from repro.mitigation.robustness import optimize_isp_around_conduits
    from repro.risk.metrics import isp_ranking

    matrix = scenario.risk_matrix
    if isp not in matrix.isps:
        print(
            f"unknown ISP {isp!r}; known: {', '.join(matrix.isps)}",
            file=sys.stderr,
        )
        return 2
    ranking = isp_ranking(matrix)
    position = next(i for i, r in enumerate(ranking) if r.isp == isp)
    row = ranking[position]
    print(
        f"{isp}: average sharing {row.average:.2f} "
        f"(rank {position + 1}/{len(ranking)}), "
        f"{row.num_conduits} conduits"
    )
    suggestion = optimize_isp_around_conduits(
        scenario.constructed_map, matrix, isp
    )
    print(
        f"robustness suggestion: {len(suggestion.outcomes)} reroutes, "
        f"avg PI {suggestion.avg_pi:.1f}, avg SRR {suggestion.avg_srr:.1f}"
    )
    return 0


def _cmd_cut(scenario: Scenario, city_a: str, city_b: str) -> int:
    from repro.resilience import assess_cut, edge_cut

    fiber_map = scenario.constructed_map
    try:
        event = edge_cut(fiber_map, city_a, city_b)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    impact = assess_cut(fiber_map, event, scenario.overlay)
    print(f"{event.description}: {event.size} conduit(s) severed")
    print(
        f"providers affected: {impact.isps_affected}; links hit: "
        f"{impact.total_links_hit}; POP pairs disconnected: "
        f"{impact.total_pairs_disconnected}; probes crossing: "
        f"{impact.probes_affected}"
    )
    for item in impact.per_isp:
        if item.links_hit == 0:
            continue
        print(
            f"  {item.isp}: {item.links_hit} links, "
            f"{item.pairs_disconnected} disconnected, reroute "
            f"+{item.mean_reroute_delay_ms:.2f} ms avg"
        )
    from repro.resilience import traffic_shift

    shift = traffic_shift(
        scenario.topology, event, scenario.campaign, max_traces=800
    )
    print(
        f"traffic shift: {shift.affected_fraction:.1%} of traces affected, "
        f"mean +{shift.mean_inflation_ms:.2f} ms, "
        f"{shift.traces_blackholed} black-holed"
    )
    return 0


def _cmd_annotate(scenario: Scenario, geojson: Optional[str]) -> int:
    from repro.analysis.report import format_table
    from repro.fibermap.annotate import annotate_map, annotated_geojson

    annotated = annotate_map(scenario.constructed_map, scenario.overlay)
    print(
        format_table(
            ("conduit", "tenants", "class", "probes", "delay ms"),
            [
                (
                    f"{a.endpoints[0]} - {a.endpoints[1]}",
                    a.tenants,
                    a.risk_class,
                    a.probes_total,
                    f"{a.delay_ms:.2f}",
                )
                for a in annotated.busiest(top=12)
            ],
            title="busiest conduits (annotated map)",
        )
    )
    critical = annotated.critical()
    print(f"critical-risk conduits: {len(critical)} of {len(annotated)}")
    if geojson:
        with open(geojson, "w", encoding="utf-8") as handle:
            json.dump(
                annotated_geojson(scenario.constructed_map, annotated), handle
            )
        print(f"annotated GeoJSON written to {geojson}")
    return 0


def _cmd_pareto(
    scenario: Scenario, city_a: str, city_b: str, isp: Optional[str]
) -> int:
    from repro.analysis.report import format_table
    from repro.routing.pareto import pareto_paths

    options = pareto_paths(scenario.constructed_map, city_a, city_b, isp=isp)
    if not options:
        print(f"no path between {city_a} and {city_b}", file=sys.stderr)
        return 2
    print(
        format_table(
            ("delay ms", "max tenants", "total tenants", "hops"),
            [
                (f"{o.delay_ms:.2f}", o.max_risk, o.total_risk, o.num_hops)
                for o in options
            ],
            title=f"risk-latency frontier: {city_a} <-> {city_b}"
            + (f" ({isp})" if isp else ""),
        )
    )
    return 0


def _cmd_backup(scenario: Scenario, isp: str, city_a: str, city_b: str) -> int:
    from repro.routing import plan_backup

    plan = plan_backup(scenario.constructed_map, isp, city_a, city_b)
    if plan is None:
        print(f"{isp} cannot connect {city_a} and {city_b}", file=sys.stderr)
        return 2
    print(
        f"primary: {len(plan.primary_conduits)} conduits, "
        f"{plan.primary_delay_ms:.2f} ms"
    )
    if not plan.protected:
        print("backup: none available (unprotected pair)")
        return 0
    print(
        f"backup:  {len(plan.backup_conduits)} conduits, "
        f"{plan.backup_delay_ms:.2f} ms"
    )
    if plan.fully_diverse:
        print("fully risk-diverse: no shared trenches")
    else:
        shared = "; ".join(f"{a} - {b}" for a, b in sorted(plan.shared_groups))
        print(f"WARNING shared trenches: {shared}")
    return 0


def _cmd_partition(scenario: Scenario) -> int:
    from repro.resilience import partition_report

    report = partition_report(scenario.constructed_map)
    print(f"minimum west-east right-of-way cuts: {report.min_cuts}")
    for a, b in report.cut_edges:
        print(f"  {a} - {b}")
    if report.partitionable_with_undersea:
        print(f"with undersea bypass: {report.min_cuts_with_undersea}")
    else:
        print("with undersea bypass: partitioning impossible")
    return 0


def _cmd_exchange(scenario: Scenario, num_conduits: int) -> int:
    from repro.analysis.report import format_table
    from repro.mitigation.exchange import plan_exchange

    conduits = plan_exchange(
        scenario.constructed_map,
        scenario.network,
        list(scenario.isps),
        num_conduits=num_conduits,
    )
    print(
        format_table(
            ("conduit", "km", "members", "best savings"),
            [
                (
                    f"{c.edge[0]} - {c.edge[1]}",
                    f"{c.length_km:.0f}",
                    c.num_members,
                    f"x{max(m.savings_factor for m in c.members):.0f}",
                )
                for c in conduits
            ],
            title="conduit exchange plan",
        )
    )
    return 0


def _cmd_cache(action: str, cache_dir: Optional[str]) -> int:
    from repro.perf.cache import ArtifactCache

    cache = ArtifactCache(cache_dir) if cache_dir else ArtifactCache()
    if action == "info":
        print(cache.info_text())
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached artifact(s) from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "cache":
        return _cmd_cache(args.action, args.cache_dir)
    cache = False if args.no_cache else (args.cache_dir or None)
    scenario = us2015(
        seed=args.seed,
        campaign_traces=args.traces,
        workers=args.workers,
        cache=cache,
    )
    if args.command == "run":
        return _cmd_run(scenario, args.ids)
    if args.command == "map":
        return _cmd_map(scenario, args.geojson, args.width)
    if args.command == "layers":
        return _cmd_layers(scenario)
    if args.command == "audit":
        return _cmd_audit(scenario, args.isp)
    if args.command == "cut":
        return _cmd_cut(scenario, args.city_a, args.city_b)
    if args.command == "annotate":
        return _cmd_annotate(scenario, args.geojson)
    if args.command == "pareto":
        return _cmd_pareto(scenario, args.city_a, args.city_b, args.isp)
    if args.command == "backup":
        return _cmd_backup(scenario, args.isp, args.city_a, args.city_b)
    if args.command == "partition":
        return _cmd_partition(scenario)
    if args.command == "exchange":
        return _cmd_exchange(scenario, args.conduits)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
