"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list every registered table/figure
``run <id> [...]``         run experiments and print their artifacts
``map [--geojson PATH]``   render the constructed map (ASCII), optionally
                           exporting GeoJSON
``layers``                 render the road and rail layers (ASCII)
``audit <ISP>``            shared-risk audit for one provider
``campaign``               build the traceroute campaign and report its
                           columnar footprint and throughput
``cut <cityA> <cityB>``    assess a right-of-way cut between two cities
``cache {info,clear,prune}``  inspect, empty, or size-bound the
                           persistent artifact cache (``prune --max-mb``
                           evicts LRU entries and sweeps orphans)
``trace summarize PATH``   render a run manifest written by ``--trace``
``graph {show,explain <stage>,invalidate <stage>,validate}``
                           inspect the scenario stage graph: the stage
                           table, one stage's dependencies/seed/cache
                           state, targeted cache eviction (stage plus
                           dependents), or structural validation of the
                           graph and every experiment's ``requires``
``latency <cityA> <cityB>`` shortest-path propagation delay between two
                           cities (a service-layer distance query)
``serve``                  the always-on what-if service: warm scenarios
                           resident in memory behind an HTTP/JSON API

The what-if verbs (``cut``, ``audit``, ``latency``, ``exchange``) build
a typed :mod:`repro.service.schema` request and dispatch through the
same handlers as the HTTP service, so ``--json`` prints exactly the
body ``POST /v1/query`` would return.

``families``               list registered map families

Global options: ``--family NAME`` map family (default ``us2015``; e.g.
``--family global2023`` for the submarine-cable universe), ``--seed N``
(default: the family's canonical seed), ``--traces N`` campaign size
(default 20000, the library's ``DEFAULT_CAMPAIGN_TRACES``), ``--workers N``
campaign worker processes (0 = one per core), ``--cache-dir PATH`` /
``--no-cache`` to control the artifact cache, ``--trace PATH`` to record a
JSON run manifest of every traced stage, and ``--json`` for
machine-readable output (``run``, ``audit``, ``cut``, ``latency``,
``exchange``, ``cache info``, ``cache prune``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.families import DEFAULT_FAMILY, family_names, get_family
from repro.scenario import (
    DEFAULT_CAMPAIGN_TRACES,
    Scenario,
    ScenarioConfig,
    load_scenario,
)
from repro.traceroute.rngv2 import (
    DEFAULT_BATCH_SIZE,
    SUPPORTED_RNG_CONTRACTS,
    default_rng_contract,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InterTubes (SIGCOMM 2015) reproduction toolkit",
    )
    parser.add_argument(
        "--family", default=DEFAULT_FAMILY, choices=family_names(),
        help=f"map family to build (default {DEFAULT_FAMILY})",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="scenario seed (default: the family's canonical seed, "
             "2015 for us2015)",
    )
    parser.add_argument(
        "--traces", type=int, default=DEFAULT_CAMPAIGN_TRACES,
        help="traceroute campaign size (traffic analyses; "
             f"default {DEFAULT_CAMPAIGN_TRACES}). The columnar store "
             "costs ~90 bytes per trace, so 200k traces fit in ~20 MB "
             "and the paper-scale 4.9M-trace campaign in ~450 MB; "
             "combine with --workers for sharded generation",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="campaign worker processes (0 = one per CPU core)",
    )
    parser.add_argument(
        "--rng-contract", type=int, default=None, metavar="V",
        choices=SUPPORTED_RNG_CONTRACTS,
        help="campaign RNG contract version: 2 (counter-based "
             "vectorized streams, the default) or 1 (the legacy "
             "per-trace Mersenne streams, reproducing pre-v2 goldens); "
             "default honors REPRO_RNG_CONTRACT",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent artifact cache directory (enables the cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache even if REPRO_CACHE is set",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a JSON run manifest of every traced stage to PATH",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON output (run, audit, cut, latency, "
             "exchange, cache info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list registered experiments")

    sub.add_parser("families", help="list registered map families")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")

    map_cmd = sub.add_parser("map", help="render the constructed map")
    map_cmd.add_argument("--geojson", metavar="PATH", default=None)
    map_cmd.add_argument("--width", type=int, default=100)

    sub.add_parser("layers", help="render road and rail layers")

    audit = sub.add_parser("audit", help="shared-risk audit for one ISP")
    audit.add_argument("isp")

    sub.add_parser(
        "campaign",
        help="build the traceroute campaign; report size and throughput",
    )

    cut = sub.add_parser("cut", help="assess a right-of-way cut")
    cut.add_argument("city_a")
    cut.add_argument("city_b")

    latency = sub.add_parser(
        "latency",
        help="shortest-path propagation delay between two cities",
    )
    latency.add_argument("city_a")
    latency.add_argument("city_b")

    serve = sub.add_parser(
        "serve",
        help="run the always-on what-if service (HTTP/JSON query API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8310,
        help="listen port (0 binds an ephemeral port; default 8310)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batching window: how long the first concurrent "
             "latency query waits for stragglers before one batched "
             "Dijkstra solve (default 2 ms)",
    )
    serve.add_argument(
        "--scenario", action="append",
        metavar="NAME=[FAMILY:]SEED[:TRACES]",
        default=None,
        help="serve an extra named scenario variant alongside "
             "'default' (repeatable); FAMILY falls back to --family "
             "and TRACES to --traces (e.g. east=2016, "
             "global=global2023:2023:2000)",
    )
    serve.add_argument(
        "--no-warm", action="store_true",
        help="skip the background stage warm-up (queries then build "
             "stages on first touch)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario × optimizer-driver sweep grid",
    )
    sweep.add_argument(
        "--grid", action="append", metavar="KEY=SPEC", default=None,
        help="sweep axis (repeatable): seed=2015..2024, seed=1,5,9, "
             "driver=greedy,anneal, family=us2015,global2023, "
             "traces=2000, max_k=4, driver_seed=0..2; the seed and "
             "family axes default to --seed / --family",
    )
    sweep.add_argument(
        "--driver", default=None, metavar="NAMES",
        help="comma list of augmentation drivers (greedy, anneal, "
             "evolutionary, random) — sugar for --grid driver=...",
    )
    sweep.add_argument(
        "--max-k", type=int, default=4, metavar="K",
        help="conduits added per augmentation search when no max_k "
             "axis is given (default 4)",
    )
    sweep.add_argument(
        "--isps", default=None, metavar="NAMES",
        help="comma list of providers to score (default: all)",
    )
    sweep.add_argument(
        "--sweep-workers", type=int, default=1, metavar="N",
        help="cell worker processes (1 = serial, 0 = one per core); "
             "share --cache-dir across workers for cross-cell dedup",
    )
    sweep.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the per-sweep RunManifest (cell spans, embedded "
             "cell manifests, cache-dedup accounting) to PATH",
    )

    annotate = sub.add_parser(
        "annotate", help="export the traffic/delay-annotated map"
    )
    annotate.add_argument("--geojson", metavar="PATH", default=None)

    pareto = sub.add_parser(
        "pareto", help="risk-latency Pareto frontier between two cities"
    )
    pareto.add_argument("city_a")
    pareto.add_argument("city_b")
    pareto.add_argument("--isp", default=None)

    backup = sub.add_parser(
        "backup", help="SRLG-diverse backup plan for an ISP and city pair"
    )
    backup.add_argument("isp")
    backup.add_argument("city_a")
    backup.add_argument("city_b")

    sub.add_parser(
        "partition", help="minimum west-east cuts (and the undersea bypass)"
    )

    exchange = sub.add_parser(
        "exchange", help="plan jointly funded conduits (the §6.3 model)"
    )
    exchange.add_argument("--conduits", type=int, default=5)

    cache = sub.add_parser(
        "cache",
        help="inspect, empty, or size-bound the persistent artifact cache",
    )
    cache.add_argument("action", choices=("info", "clear", "prune"))
    cache.add_argument(
        "--max-mb", type=float, default=None, metavar="MB",
        help="prune: evict least-recently-used artifacts until the "
             "cache fits this many megabytes (omit to only sweep "
             "orphaned temp files and quarantined entries)",
    )

    trace = sub.add_parser(
        "trace", help="inspect run manifests written by --trace"
    )
    trace.add_argument("action", choices=("summarize",))
    trace.add_argument("path", help="manifest path")

    graph = sub.add_parser(
        "graph", help="inspect the scenario stage graph"
    )
    graph.add_argument(
        "action", choices=("show", "explain", "invalidate", "validate"),
        help="show the stage table, explain one stage, evict a "
             "stage's cached artifacts (plus dependents), or validate "
             "the graph and every experiment's declared requires",
    )
    graph.add_argument(
        "stage", nargs="?", default=None,
        help="stage name (explain/invalidate)",
    )
    return parser


def _emit_json(payload: Any) -> None:
    """The single ``--json`` emitter.

    Every subcommand's payload — plain dicts, typed responses,
    dataclasses — passes through one ``to_jsonable``-based canonical
    rendering (:func:`repro.service.schema.encode_json`), the same one
    the HTTP server uses, so CLI and service bytes are comparable.
    """
    from repro.service.schema import encode_json

    print(encode_json(payload))


def _cmd_experiments() -> int:
    from repro.experiments import EXPERIMENTS

    for experiment_id in sorted(EXPERIMENTS):
        print(f"{experiment_id:10s} {EXPERIMENTS[experiment_id].title}")
    return 0


def _cmd_families(as_json: bool) -> int:
    from repro.experiments import EXPERIMENTS

    if as_json:
        _emit_json([get_family(name).describe() for name in family_names()])
        return 0
    for name in family_names():
        family = get_family(name)
        experiments = (
            "all experiments"
            if family.experiments is None
            else f"{len(family.supported_experiments(EXPERIMENTS))} of "
                 f"{len(EXPERIMENTS)} experiments"
        )
        print(f"{name:12s} {family.title}")
        print(
            f"{'':12s} geography: {family.geographic_model}; "
            f"risk: {family.risk_semantics}; "
            f"default seed {family.default_seed}; {experiments}"
        )
    return 0


def _cmd_run(scenario: Scenario, ids: List[str], as_json: bool) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment
    from repro.experiments.runner import UnsupportedExperimentError

    family = scenario.family
    chosen = (
        family.supported_experiments(EXPERIMENTS) if ids == ["all"] else ids
    )
    unknown = [i for i in chosen if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment: {', '.join(unknown)}", file=sys.stderr
        )
        return 2
    results = []
    for experiment_id in chosen:
        try:
            result = run_experiment(experiment_id, scenario)
        except UnsupportedExperimentError as error:
            print(str(error), file=sys.stderr)
            return 2
        if as_json:
            results.append(result.to_json())
        else:
            print(result.text)
            print()
    if as_json:
        _emit_json(results)
    return 0


def _cmd_map(scenario: Scenario, geojson: Optional[str], width: int) -> int:
    from repro.analysis.render import render_fiber_map
    from repro.fibermap.serialization import fiber_map_to_geojson

    fiber_map = scenario.constructed_map
    print(render_fiber_map(fiber_map, width=width))
    print(f"\n{fiber_map.stats()}")
    if geojson:
        with open(geojson, "w", encoding="utf-8") as handle:
            json.dump(fiber_map_to_geojson(fiber_map), handle)
        print(f"GeoJSON written to {geojson}")
    return 0


_LAYER_TITLES = {
    "road": "Roadway layer",
    "rail": "Railway layer",
    "pipeline": "Pipeline layer",
    "sea": "Submarine cable layer",
}


def _cmd_layers(scenario: Scenario) -> int:
    from repro.analysis.render import render_transport

    for kind in scenario.family.row_kinds[0]:
        title = _LAYER_TITLES.get(kind, f"{kind} layer")
        print(f"--- {title} ---")
        print(render_transport(scenario.network, kind))
        print()
    return 0


def _cmd_audit(scenario: Scenario, isp: str, as_json: bool) -> int:
    from repro.service.schema import AuditRequest

    return _run_query(scenario, AuditRequest(isp=isp), as_json)


def _run_query(scenario: Scenario, request: Any, as_json: bool) -> int:
    """Dispatch a typed request through the shared service handlers.

    ``--json`` prints exactly the body the HTTP endpoint returns for
    the same request; otherwise the shared human-readable rendering.
    """
    from repro.service.render import render_response
    from repro.service.schema import QueryError

    try:
        response = scenario.query(request)
    except QueryError as error:
        print(error.message, file=sys.stderr)
        return 2
    if as_json:
        _emit_json(response.to_json())
        return 0
    print(render_response(response))
    return 0


def _cmd_campaign(scenario: Scenario, as_json: bool) -> int:
    import time

    started = time.perf_counter()
    columns = scenario.campaign
    elapsed = time.perf_counter() - started
    num = len(columns)
    reached = int(columns.traces["reached"].sum())
    rate = num / elapsed if elapsed > 0 else 0.0
    payload = {
        "traces": num,
        "reached": reached,
        "reached_fraction": reached / num if num else 0.0,
        "hops": columns.num_hops,
        "mean_hops": columns.num_hops / num if num else 0.0,
        "columnar_bytes": columns.nbytes,
        "schema_digest": columns.schema.digest(
            rng_contract=columns.rng_contract
        ),
        "workers": scenario.workers,
        "rng_contract": columns.rng_contract,
        "batch_size": DEFAULT_BATCH_SIZE,
        "build_seconds": elapsed,
        "records_per_second": rate,
    }
    if as_json:
        _emit_json(payload)
        return 0
    print(
        f"campaign: {num} traces ({reached} reached, "
        f"{payload['reached_fraction']:.1%}), {columns.num_hops} hops "
        f"({payload['mean_hops']:.2f}/trace)"
    )
    print(
        f"columnar store: {columns.nbytes / 1e6:.2f} MB "
        f"({columns.nbytes / num:.0f} B/trace), schema "
        f"{payload['schema_digest']}"
    )
    print(
        f"built in {elapsed:.2f} s with workers={scenario.workers} "
        f"under rng contract v{columns.rng_contract} "
        f"(batch {payload['batch_size']}; {rate:,.0f} records/s, "
        f"including upstream stages on a cold scenario)"
    )
    return 0


def _cmd_cut(
    scenario: Scenario, city_a: str, city_b: str, as_json: bool
) -> int:
    from repro.service.schema import CutRequest

    return _run_query(
        scenario, CutRequest(city_a=city_a, city_b=city_b), as_json
    )


def _cmd_latency(
    scenario: Scenario, city_a: str, city_b: str, as_json: bool
) -> int:
    from repro.service.schema import LatencyRequest

    return _run_query(
        scenario, LatencyRequest(city_a=city_a, city_b=city_b), as_json
    )


def _cmd_annotate(scenario: Scenario, geojson: Optional[str]) -> int:
    from repro.analysis.report import format_table
    from repro.fibermap.annotate import annotate_map, annotated_geojson

    annotated = annotate_map(scenario.constructed_map, scenario.overlay)
    print(
        format_table(
            ("conduit", "tenants", "class", "probes", "delay ms"),
            [
                (
                    f"{a.endpoints[0]} - {a.endpoints[1]}",
                    a.tenants,
                    a.risk_class,
                    a.probes_total,
                    f"{a.delay_ms:.2f}",
                )
                for a in annotated.busiest(top=12)
            ],
            title="busiest conduits (annotated map)",
        )
    )
    critical = annotated.critical()
    print(f"critical-risk conduits: {len(critical)} of {len(annotated)}")
    if geojson:
        with open(geojson, "w", encoding="utf-8") as handle:
            json.dump(
                annotated_geojson(scenario.constructed_map, annotated), handle
            )
        print(f"annotated GeoJSON written to {geojson}")
    return 0


def _cmd_pareto(
    scenario: Scenario, city_a: str, city_b: str, isp: Optional[str]
) -> int:
    from repro.analysis.report import format_table
    from repro.routing.pareto import pareto_paths

    options = pareto_paths(scenario.constructed_map, city_a, city_b, isp=isp)
    if not options:
        print(f"no path between {city_a} and {city_b}", file=sys.stderr)
        return 2
    print(
        format_table(
            ("delay ms", "max tenants", "total tenants", "hops"),
            [
                (f"{o.delay_ms:.2f}", o.max_risk, o.total_risk, o.num_hops)
                for o in options
            ],
            title=f"risk-latency frontier: {city_a} <-> {city_b}"
            + (f" ({isp})" if isp else ""),
        )
    )
    return 0


def _cmd_backup(scenario: Scenario, isp: str, city_a: str, city_b: str) -> int:
    from repro.routing import plan_backup

    plan = plan_backup(scenario.constructed_map, isp, city_a, city_b)
    if plan is None:
        print(f"{isp} cannot connect {city_a} and {city_b}", file=sys.stderr)
        return 2
    print(
        f"primary: {len(plan.primary_conduits)} conduits, "
        f"{plan.primary_delay_ms:.2f} ms"
    )
    if not plan.protected:
        print("backup: none available (unprotected pair)")
        return 0
    print(
        f"backup:  {len(plan.backup_conduits)} conduits, "
        f"{plan.backup_delay_ms:.2f} ms"
    )
    if plan.fully_diverse:
        print("fully risk-diverse: no shared trenches")
    else:
        shared = "; ".join(f"{a} - {b}" for a, b in sorted(plan.shared_groups))
        print(f"WARNING shared trenches: {shared}")
    return 0


def _cmd_partition(scenario: Scenario) -> int:
    from repro.resilience import partition_report

    report = partition_report(scenario.constructed_map)
    print(f"minimum west-east right-of-way cuts: {report.min_cuts}")
    for a, b in report.cut_edges:
        print(f"  {a} - {b}")
    if report.partitionable_with_undersea:
        print(f"with undersea bypass: {report.min_cuts_with_undersea}")
    else:
        print("with undersea bypass: partitioning impossible")
    return 0


def _cmd_exchange(
    scenario: Scenario, num_conduits: int, as_json: bool
) -> int:
    from repro.service.schema import ExchangeRequest

    return _run_query(
        scenario, ExchangeRequest(num_conduits=num_conduits), as_json
    )


def _cmd_serve(scenario: Scenario, args: argparse.Namespace, tracer) -> int:
    from repro.service.registry import ScenarioRegistry
    from repro.service.server import ServiceApp, make_server

    registry = ScenarioRegistry(
        batch_window_s=max(0.0, args.batch_window_ms) / 1000.0
    )
    registry.add("default", scenario=scenario)
    base = scenario.config
    for spec in args.scenario or []:
        name, _, params = spec.partition("=")
        try:
            if not name or not params:
                raise ValueError(spec)
            parts = params.split(":")
            # Legacy NAME=SEED[:TRACES] (seed first) vs the family-
            # qualified NAME=FAMILY:SEED[:TRACES]: an integer first
            # token is always a seed.
            try:
                int(parts[0])
                family = base.family
            except ValueError:
                family = parts[0]
                parts = parts[1:]
            if not parts or len(parts) > 2 or not parts[0]:
                raise ValueError(spec)
            seed = int(parts[0])
            traces = (
                int(parts[1]) if len(parts) > 1 and parts[1]
                else base.campaign_traces
            )
            variant = ScenarioConfig(
                seed=seed,
                campaign_traces=traces,
                workers=base.workers,
                cache=base.cache,
                family=family,
                rng_contract=base.rng_contract,
            )
            registry.add(name, scenario=load_scenario(config=variant))
        except ValueError as error:
            print(
                f"bad --scenario spec {spec!r} "
                f"(want NAME=[FAMILY:]SEED[:TRACES]): {error}",
                file=sys.stderr,
            )
            return 2
    app = ServiceApp(registry, tracer=tracer)
    server = make_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    if not args.no_warm:
        registry.warm_all_async()
    print(
        f"repro what-if service on http://{host}:{port} "
        f"(scenarios: {', '.join(registry.names())})"
    )
    print(
        "endpoints: GET /healthz, GET /v1/manifest, "
        "POST /v1/query, POST /v1/batch",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _cmd_sweep(
    args: argparse.Namespace, cache: Any, as_json: bool
) -> int:
    from repro.sweep import expand_grid, parse_grid, run_sweep

    try:
        axes = parse_grid(args.grid or [])
        if args.driver is not None:
            axes.setdefault("driver", parse_grid([f"driver={args.driver}"])["driver"])
        axes.setdefault("seed", [args.seed])
        axes.setdefault("max_k", [args.max_k])
        axes.setdefault("family", [args.family])
        axes.setdefault(
            "rng_contract",
            [args.rng_contract if args.rng_contract is not None
             else default_rng_contract()],
        )
        if "traces" not in axes:
            from repro.sweep.grid import DEFAULT_CELL_TRACES

            explicit = args.traces != DEFAULT_CAMPAIGN_TRACES
            axes["traces"] = [args.traces if explicit else DEFAULT_CELL_TRACES]
        cells = expand_grid(axes)
    except ValueError as error:
        print(f"bad sweep grid: {error}", file=sys.stderr)
        return 2
    isps = (
        [name.strip() for name in args.isps.split(",") if name.strip()]
        if args.isps
        else None
    )
    if cache is False or (cache is None and not os.environ.get("REPRO_CACHE_DIR")
                          and not os.environ.get("REPRO_CACHE")):
        print(
            "note: no shared cache root (--cache-dir) — cells cannot "
            "deduplicate stage builds",
            file=sys.stderr,
        )

    def progress(cell: Dict[str, Any]) -> None:
        spec = cell["cell"]
        status = "ok" if cell["ok"] else "FAILED"
        family = spec.get("family", DEFAULT_FAMILY)
        prefix = "" if family == DEFAULT_FAMILY else f"{family} "
        print(
            f"  cell {prefix}seed={spec['seed']} driver={spec['driver']}"
            f"/{spec['driver_seed']} k={spec['max_k']}: {status} "
            f"({cell['duration_s']:.2f}s, cache {cell['cache']['hits']}h/"
            f"{cell['cache']['misses']}m)",
            file=sys.stderr,
        )

    result = run_sweep(
        cells,
        isps=isps,
        cache=cache,
        workers=args.sweep_workers,
        stream=None if as_json else progress,
    )
    if args.out:
        path = result.write_manifest(args.out)
        print(f"sweep manifest written to {path}", file=sys.stderr)
    if as_json:
        _emit_json(result.to_jsonable())
        return 0 if result.ok else 1
    from repro.analysis.report import format_table

    rows = []
    for cell in result.cells:
        spec = cell["cell"]
        metrics = cell.get("metrics") or {}
        rows.append([
            spec.get("family", DEFAULT_FAMILY),
            str(spec["seed"]),
            spec["driver"],
            str(spec["driver_seed"]),
            str(spec["max_k"]),
            "ok" if cell["ok"] else "FAILED",
            f"{metrics.get('mean_gain', 0.0) or 0.0:.4f}",
            f"{metrics.get('srr_avg', 0.0) or 0.0:.3f}",
            f"{cell['cache']['hits']}/{cell['cache']['misses']}",
            f"{cell['duration_s']:.2f}",
        ])
    print(format_table(
        ["family", "seed", "driver", "dseed", "k", "status", "mean gain",
         "avg SRR", "cache h/m", "secs"],
        rows,
        title=f"Sweep: {len(result.cells)} cells, "
              f"workers={result.workers}",
    ))
    dedup = result.cache_dedup()
    print(
        f"cache dedup: {dedup['cross_cell_hits']} cross-cell hit(s), "
        f"{dedup['coalesced']} coalesced build(s), "
        f"{dedup['misses']} miss(es)"
    )
    aggregates = result.aggregates
    for driver, dist in (aggregates.get("gain_per_driver") or {}).items():
        if dist:
            print(
                f"gain[{driver}]: mean {dist['mean']:.4f}  "
                f"median {dist['median']:.4f}  max {dist['max']:.4f}  "
                f"(n={dist['n']})"
            )
    if not result.ok:
        failed = len(result.cells) - sum(1 for c in result.cells if c["ok"])
        print(f"{failed} cell(s) FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(
    action: str,
    cache_dir: Optional[str],
    as_json: bool,
    max_mb: Optional[float] = None,
) -> int:
    from repro.perf.cache import ArtifactCache

    cache = ArtifactCache(cache_dir) if cache_dir else ArtifactCache()
    if action == "info":
        if as_json:
            entries = cache.entries()
            by_stage: Dict[str, Dict[str, int]] = {}
            for entry in entries:
                bucket = by_stage.setdefault(
                    entry.stage, {"artifacts": 0, "size_bytes": 0}
                )
                bucket["artifacts"] += 1
                bucket["size_bytes"] += entry.size_bytes
            orphans = cache.orphan_tmp_files()
            quarantined = cache.quarantined_files()
            locks = cache.lock_files()
            _emit_json({
                "root": str(cache.root),
                "artifacts": len(entries),
                "size_bytes": sum(e.size_bytes for e in entries),
                "stages": by_stage,
                "orphaned_tmp_files": len(orphans),
                "quarantined_entries": len(quarantined),
                "lock_files": len(locks),
            })
            return 0
        print(cache.info_text())
        return 0
    if action == "prune":
        max_bytes = None if max_mb is None else int(max_mb * 1e6)
        result = cache.prune(max_bytes=max_bytes)
        if as_json:
            _emit_json({
                "root": str(cache.root),
                "evicted": result.evicted,
                "orphans_swept": result.orphans_swept,
                "quarantine_removed": result.quarantine_removed,
                "locks_swept": result.locks_swept,
                "bytes_freed": result.bytes_freed,
                "bytes_remaining": result.bytes_remaining,
            })
            return 0
        print(
            f"pruned {cache.root}: evicted {result.evicted} artifact(s), "
            f"swept {result.orphans_swept} orphan(s), removed "
            f"{result.quarantine_removed} quarantined file(s), swept "
            f"{result.locks_swept} stale lock(s), freed "
            f"{result.bytes_freed / 1e6:.2f} MB "
            f"({result.bytes_remaining / 1e6:.2f} MB remain)"
        )
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached artifact(s) from {cache.root}")
    return 0


def _cmd_graph(
    scenario: Scenario, action: str, stage: Optional[str], as_json: bool
) -> int:
    from repro.engine import UnknownStageError

    graph = scenario.graph
    if action in ("explain", "invalidate") and stage is None:
        print(f"graph {action} requires a stage name", file=sys.stderr)
        return 2
    if action == "show":
        rows = graph.describe()
        if as_json:
            _emit_json(rows)
            return 0
        print(f"{len(rows)} stages (topological order):")
        for row in rows:
            deps = ", ".join(row["deps"]) or "-"
            seed = (
                "-" if row["derived_seed"] is None
                else str(row["derived_seed"])
            )
            cached = ""
            if row["policy"] == "persisted":
                cached = (
                    " [cached]" if row["cache_entry"]
                    else " [not cached]" if row["cache_entry"] is not None
                    else ""
                )
            print(
                f"  {row['stage']:16s} {row['policy']:9s} "
                f"seed={seed:6s} deps: {deps}{cached}"
            )
        return 0
    if action == "validate":
        from repro.experiments import EXPERIMENTS

        problems = graph.validate()
        for experiment_id in sorted(EXPERIMENTS):
            for name in EXPERIMENTS[experiment_id].requires:
                if name not in graph:
                    problems.append(
                        f"experiment {experiment_id!r} requires "
                        f"unknown stage {name!r}"
                    )
            if not EXPERIMENTS[experiment_id].requires:
                problems.append(
                    f"experiment {experiment_id!r} declares no "
                    f"required stages"
                )
        if as_json:
            _emit_json({"ok": not problems, "problems": problems})
        elif problems:
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(
                f"stage graph OK: {len(graph.names())} stages, "
                f"{len(EXPERIMENTS)} experiments with declared requires"
            )
        return 1 if problems else 0
    try:
        if action == "explain":
            info = graph.explain(stage)
            if as_json:
                _emit_json(info)
                return 0
            print(f"stage: {info['stage']}")
            print(f"  {info['doc']}")
            print(f"  policy:      {info['policy']}")
            print(f"  deps:        {', '.join(info['deps']) or '-'}")
            print(f"  closure:     {', '.join(info['closure']) or '-'}")
            print(f"  dependents:  {', '.join(info['dependents']) or '-'}")
            if info["derived_seed"] is not None:
                print(
                    f"  seed:        {info['derived_seed']} "
                    f"(base {scenario.seed} + offset {info['seed_offset']})"
                )
            if info["policy"] == "persisted":
                print(f"  cache key:   {info['cache_key']}")
                state = (
                    "no cache configured" if info["cache_entry"] is None
                    else "warm" if info["cache_entry"] else "cold"
                )
                print(f"  cache entry: {state}")
            return 0
        # invalidate
        if scenario.cache is None:
            print(
                "no artifact cache configured (set --cache-dir or "
                "REPRO_CACHE)", file=sys.stderr,
            )
            return 2
        removed = graph.invalidate(stage)
        affected = [stage, *graph.dependents(stage)]
        if as_json:
            _emit_json({
                "stage": stage,
                "affected": affected,
                "artifacts_removed": removed,
            })
            return 0
        print(
            f"invalidated {', '.join(affected)}: removed {removed} "
            f"cached artifact(s)"
        )
        return 0
    except UnknownStageError:
        print(
            f"unknown stage {stage!r}; known: "
            f"{', '.join(scenario.graph.names())}",
            file=sys.stderr,
        )
        return 2


def _cmd_trace(action: str, path: str) -> int:
    from repro.obs import RunManifest

    try:
        manifest = RunManifest.load(path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"cannot read manifest {path}: {error}", file=sys.stderr)
        return 2
    if action == "summarize":
        print(manifest.summary_text())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.  Point
        # stdout at /dev/null so the interpreter's exit flush is quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.seed is None:
        args.seed = get_family(args.family).default_seed
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "families":
        return _cmd_families(args.json)
    if args.command == "cache":
        return _cmd_cache(
            args.action, args.cache_dir, args.json, args.max_mb
        )
    if args.command == "trace":
        return _cmd_trace(args.action, args.path)

    from repro.obs import RunManifest, Tracer, set_tracer

    cache = False if args.no_cache else (args.cache_dir or None)
    if args.rng_contract is None:
        args.rng_contract = default_rng_contract()
    config = ScenarioConfig(
        seed=args.seed,
        campaign_traces=args.traces,
        workers=args.workers,
        cache=cache,
        family=args.family,
        rng_contract=args.rng_contract,
    )
    tracer = Tracer() if args.trace else None
    previous = set_tracer(tracer) if tracer is not None else None
    try:
        scenario = load_scenario(config=config)
        if args.command == "run":
            return _cmd_run(scenario, args.ids, args.json)
        if args.command == "map":
            return _cmd_map(scenario, args.geojson, args.width)
        if args.command == "layers":
            return _cmd_layers(scenario)
        if args.command == "audit":
            return _cmd_audit(scenario, args.isp, args.json)
        if args.command == "campaign":
            return _cmd_campaign(scenario, args.json)
        if args.command == "cut":
            return _cmd_cut(scenario, args.city_a, args.city_b, args.json)
        if args.command == "latency":
            return _cmd_latency(
                scenario, args.city_a, args.city_b, args.json
            )
        if args.command == "serve":
            return _cmd_serve(scenario, args, tracer)
        if args.command == "sweep":
            return _cmd_sweep(args, cache, args.json)
        if args.command == "annotate":
            return _cmd_annotate(scenario, args.geojson)
        if args.command == "pareto":
            return _cmd_pareto(scenario, args.city_a, args.city_b, args.isp)
        if args.command == "backup":
            return _cmd_backup(scenario, args.isp, args.city_a, args.city_b)
        if args.command == "partition":
            return _cmd_partition(scenario)
        if args.command == "exchange":
            return _cmd_exchange(scenario, args.conduits, args.json)
        if args.command == "graph":
            return _cmd_graph(scenario, args.action, args.stage, args.json)
        raise AssertionError("unreachable")  # pragma: no cover
    finally:
        if tracer is not None:
            set_tracer(previous)
            manifest = RunManifest.from_tracer(
                tracer,
                config=config.to_dict(),
                meta={"command": args.command},
            )
            manifest.write(args.trace)
            print(f"run manifest written to {args.trace}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
