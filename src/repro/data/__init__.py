"""Base datasets: US cities, transportation corridors, ISP profiles.

These replace the paper's external data sources — the NationalAtlas
roadway/railway layers (Figures 2 and 3), the census population centers
used in the long-haul-link definition, and the 20 provider identities.
"""

from repro.data.cities import (
    CITIES,
    City,
    cities_in_states,
    cities_over,
    city_by_code,
    city_by_name,
    nearest_city,
)
from repro.data.corridors import (
    CORRIDORS,
    Corridor,
    corridors_of_kind,
)
from repro.data.isps import (
    ISPS,
    STEP1_ISPS,
    STEP3_ISPS,
    ISPProfile,
    isp_by_name,
)

__all__ = [
    "CITIES",
    "City",
    "city_by_name",
    "city_by_code",
    "cities_over",
    "cities_in_states",
    "nearest_city",
    "CORRIDORS",
    "Corridor",
    "corridors_of_kind",
    "ISPS",
    "STEP1_ISPS",
    "STEP3_ISPS",
    "ISPProfile",
    "isp_by_name",
]
