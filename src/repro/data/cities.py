"""US cities: the node universe of the long-haul map.

The paper's long-haul-link definition (§2) refers to population centers of
at least 100,000 people; its final map has 273 nodes/cities, and its
tables name both major metros and small waypoint cities (Casper WY,
Battle Creek MI, Camp Verde AZ, ...).  This dataset therefore mixes every
city named anywhere in the paper with the major metros and the corridor
waypoint towns needed to trace the real interstate/rail geography.

Coordinates are approximate (good to a few tenths of a degree), which is
all the corridor-scale geometry requires.  Populations are rounded
city-proper figures circa the early 2010s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geo.coords import GeoPoint, haversine_km


@dataclass(frozen=True)
class City:
    """One city: map node candidate and corridor waypoint."""

    name: str
    state: str
    lat: float
    lon: float
    population: int

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)

    @property
    def key(self) -> str:
        """Canonical ``"Name, ST"`` key used throughout the library."""
        return f"{self.name}, {self.state}"

    @property
    def code(self) -> str:
        """Short lowercase code used in synthetic router DNS names."""
        return _CODES[self.key]

    def distance_km(self, other: "City") -> float:
        return haversine_km(self.location, other.location)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key


# ---------------------------------------------------------------------------
# The dataset.  (name, state, lat, lon, population)
# ---------------------------------------------------------------------------
_RAW: List[Tuple[str, str, float, float, int]] = [
    # --- Northeast -----------------------------------------------------
    ("New York", "NY", 40.71, -74.01, 8400000),
    ("Newark", "NJ", 40.74, -74.17, 281000),
    ("Edison", "NJ", 40.52, -74.41, 100000),
    ("Trenton", "NJ", 40.22, -74.76, 84000),
    ("Philadelphia", "PA", 39.95, -75.17, 1560000),
    ("Allentown", "PA", 40.60, -75.47, 120000),
    ("Scranton", "PA", 41.41, -75.66, 77000),
    ("Harrisburg", "PA", 40.27, -76.88, 49000),
    ("Pittsburgh", "PA", 40.44, -80.00, 305000),
    ("Erie", "PA", 42.13, -80.09, 101000),
    ("Baltimore", "MD", 39.29, -76.61, 620000),
    ("Towson", "MD", 39.40, -76.61, 55000),
    ("Frederick", "MD", 39.41, -77.41, 66000),
    ("Washington", "DC", 38.90, -77.04, 650000),
    ("Wilmington", "DE", 39.75, -75.55, 71000),
    ("Boston", "MA", 42.36, -71.06, 650000),
    ("Worcester", "MA", 42.26, -71.80, 182000),
    ("Springfield", "MA", 42.10, -72.59, 154000),
    ("Providence", "RI", 41.82, -71.41, 178000),
    ("Hartford", "CT", 41.76, -72.69, 125000),
    ("New Haven", "CT", 41.31, -72.92, 130000),
    ("Stamford", "CT", 41.05, -73.54, 126000),
    ("Bridgeport", "CT", 41.19, -73.20, 146000),
    ("White Plains", "NY", 41.03, -73.77, 57000),
    ("Albany", "NY", 42.65, -73.75, 98000),
    ("Syracuse", "NY", 43.05, -76.15, 144000),
    ("Utica", "NY", 43.10, -75.23, 61000),
    ("Rochester", "NY", 43.16, -77.61, 210000),
    ("Buffalo", "NY", 42.89, -78.88, 258000),
    ("Binghamton", "NY", 42.10, -75.91, 46000),
    ("Portland", "ME", 43.66, -70.26, 66000),
    ("Manchester", "NH", 42.99, -71.46, 110000),
    ("Burlington", "VT", 44.48, -73.21, 42000),
    # --- Mid-Atlantic / Southeast --------------------------------------
    ("Richmond", "VA", 37.54, -77.44, 214000),
    ("Charlottesville", "VA", 38.03, -78.48, 45000),
    ("Lynchburg", "VA", 37.41, -79.14, 77000),
    ("Roanoke", "VA", 37.27, -79.94, 98000),
    ("Norfolk", "VA", 36.85, -76.29, 245000),
    ("Ashburn", "VA", 39.04, -77.49, 44000),
    ("Raleigh", "NC", 35.78, -78.64, 432000),
    ("Durham", "NC", 35.99, -78.90, 245000),
    ("Greensboro", "NC", 36.07, -79.79, 280000),
    ("Winston-Salem", "NC", 36.10, -80.24, 236000),
    ("Charlotte", "NC", 35.23, -80.84, 793000),
    ("Asheville", "NC", 35.60, -82.55, 88000),
    ("Wilmington", "NC", 34.23, -77.94, 112000),
    ("Columbia", "SC", 34.00, -81.03, 132000),
    ("Greenville", "SC", 34.85, -82.40, 62000),
    ("Charleston", "SC", 32.78, -79.93, 128000),
    ("Savannah", "GA", 32.08, -81.09, 142000),
    ("Atlanta", "GA", 33.75, -84.39, 447000),
    ("Macon", "GA", 32.84, -83.63, 91000),
    ("Augusta", "GA", 33.47, -81.97, 196000),
    ("Columbus", "GA", 32.46, -84.99, 195000),
    ("Valdosta", "GA", 30.83, -83.28, 56000),
    ("Chattanooga", "TN", 35.05, -85.31, 173000),
    ("Knoxville", "TN", 35.96, -83.92, 183000),
    ("Nashville", "TN", 36.16, -86.78, 644000),
    ("Memphis", "TN", 35.15, -90.05, 655000),
    ("Jackson", "TN", 35.61, -88.81, 67000),
    ("Louisville", "KY", 38.25, -85.76, 610000),
    ("Lexington", "KY", 38.04, -84.50, 308000),
    ("Bowling Green", "KY", 36.99, -86.44, 61000),
    ("Charleston", "WV", 38.35, -81.63, 51000),
    ("Bristol", "VA", 36.60, -82.19, 17000),
    # --- Florida --------------------------------------------------------
    ("Jacksonville", "FL", 30.33, -81.66, 842000),
    ("Gainesville", "FL", 29.65, -82.32, 127000),
    ("Ocala", "FL", 29.19, -82.14, 57000),
    ("Orlando", "FL", 28.54, -81.38, 255000),
    ("Daytona Beach", "FL", 29.21, -81.02, 62000),
    ("Tampa", "FL", 27.95, -82.46, 352000),
    ("Sarasota", "FL", 27.34, -82.53, 53000),
    ("Fort Myers", "FL", 26.64, -81.87, 68000),
    ("West Palm Beach", "FL", 26.71, -80.05, 100000),
    ("Boca Raton", "FL", 26.37, -80.10, 89000),
    ("Fort Lauderdale", "FL", 26.12, -80.14, 172000),
    ("Miami", "FL", 25.76, -80.19, 417000),
    ("Tallahassee", "FL", 30.44, -84.28, 186000),
    ("Pensacola", "FL", 30.42, -87.22, 52000),
    # --- Gulf / Deep South ----------------------------------------------
    ("Mobile", "AL", 30.69, -88.04, 195000),
    ("Montgomery", "AL", 32.37, -86.30, 205000),
    ("Birmingham", "AL", 33.52, -86.80, 212000),
    ("Huntsville", "AL", 34.73, -86.59, 186000),
    ("Jackson", "MS", 32.30, -90.18, 173000),
    ("Meridian", "MS", 32.36, -88.70, 41000),
    ("Laurel", "MS", 31.69, -89.13, 18600),
    ("Hattiesburg", "MS", 31.33, -89.29, 46000),
    ("Gulfport", "MS", 30.37, -89.09, 71000),
    ("New Orleans", "LA", 29.95, -90.07, 378000),
    ("Baton Rouge", "LA", 30.45, -91.15, 229000),
    ("Lafayette", "LA", 30.22, -92.02, 124000),
    ("Lake Charles", "LA", 30.23, -93.22, 74000),
    ("Shreveport", "LA", 32.53, -93.75, 200000),
    ("Monroe", "LA", 32.51, -92.12, 49000),
    ("Little Rock", "AR", 34.75, -92.29, 197000),
    ("Fort Smith", "AR", 35.39, -94.40, 88000),
    ("Texarkana", "TX", 33.43, -94.05, 37000),
    # --- Texas ----------------------------------------------------------
    ("Houston", "TX", 29.76, -95.37, 2200000),
    ("Beaumont", "TX", 30.08, -94.13, 118000),
    ("Galveston", "TX", 29.30, -94.80, 48000),
    ("Bryan", "TX", 30.67, -96.37, 78000),
    ("Austin", "TX", 30.27, -97.74, 885000),
    ("San Antonio", "TX", 29.42, -98.49, 1400000),
    ("Waco", "TX", 31.55, -97.15, 129000),
    ("Dallas", "TX", 32.78, -96.80, 1258000),
    ("Fort Worth", "TX", 32.76, -97.33, 792000),
    ("Wichita Falls", "TX", 33.91, -98.49, 104000),
    ("Abilene", "TX", 32.45, -99.73, 120000),
    ("Midland", "TX", 32.00, -102.08, 123000),
    ("El Paso", "TX", 31.76, -106.49, 674000),
    ("Lubbock", "TX", 33.58, -101.86, 239000),
    ("Amarillo", "TX", 35.22, -101.83, 196000),
    ("Laredo", "TX", 27.51, -99.51, 248000),
    ("Corpus Christi", "TX", 27.80, -97.40, 316000),
    ("McAllen", "TX", 26.20, -98.23, 136000),
    ("Tyler", "TX", 32.35, -95.30, 100000),
    ("San Angelo", "TX", 31.46, -100.44, 97000),
    # --- Midwest ---------------------------------------------------------
    ("Chicago", "IL", 41.88, -87.63, 2700000),
    ("Urbana", "IL", 40.11, -88.21, 41000),
    ("Champaign", "IL", 40.12, -88.24, 83000),
    ("Springfield", "IL", 39.80, -89.64, 117000),
    ("Peoria", "IL", 40.69, -89.59, 115000),
    ("Rockford", "IL", 42.27, -89.09, 150000),
    ("Bloomington", "IL", 40.48, -88.99, 78000),
    ("Effingham", "IL", 39.12, -88.54, 12000),
    ("Indianapolis", "IN", 39.77, -86.16, 843000),
    ("Fort Wayne", "IN", 41.08, -85.14, 256000),
    ("South Bend", "IN", 41.68, -86.25, 101000),
    ("Gary", "IN", 41.59, -87.35, 78000),
    ("Evansville", "IN", 37.97, -87.56, 120000),
    ("Terre Haute", "IN", 39.47, -87.41, 61000),
    ("Columbus", "OH", 39.96, -82.99, 823000),
    ("Cleveland", "OH", 41.50, -81.69, 390000),
    ("Cincinnati", "OH", 39.10, -84.51, 297000),
    ("Dayton", "OH", 39.76, -84.19, 141000),
    ("Toledo", "OH", 41.65, -83.54, 282000),
    ("Akron", "OH", 41.08, -81.52, 198000),
    ("Youngstown", "OH", 41.10, -80.65, 65000),
    ("Detroit", "MI", 42.33, -83.05, 689000),
    ("Livonia", "MI", 42.37, -83.37, 96000),
    ("Southfield", "MI", 42.47, -83.22, 72000),
    ("Ann Arbor", "MI", 42.28, -83.75, 117000),
    ("Lansing", "MI", 42.73, -84.56, 114000),
    ("Battle Creek", "MI", 42.32, -85.18, 52000),
    ("Kalamazoo", "MI", 42.29, -85.59, 75000),
    ("Grand Rapids", "MI", 42.96, -85.66, 192000),
    ("Flint", "MI", 43.01, -83.69, 99000),
    ("Saginaw", "MI", 43.42, -83.95, 50000),
    ("Milwaukee", "WI", 43.04, -87.91, 599000),
    ("Madison", "WI", 43.07, -89.40, 243000),
    ("Eau Claire", "WI", 44.81, -91.50, 67000),
    ("Green Bay", "WI", 44.51, -88.01, 105000),
    ("La Crosse", "WI", 43.81, -91.25, 52000),
    ("Wausau", "WI", 44.96, -89.63, 39000),
    ("Minneapolis", "MN", 44.98, -93.27, 400000),
    ("St. Paul", "MN", 44.95, -93.09, 295000),
    ("Duluth", "MN", 46.79, -92.10, 86000),
    ("Rochester", "MN", 44.02, -92.47, 111000),
    ("St. Cloud", "MN", 45.56, -94.16, 66000),
    ("Fargo", "ND", 46.88, -96.79, 113000),
    ("Bismarck", "ND", 46.81, -100.78, 67000),
    ("Grand Forks", "ND", 47.93, -97.03, 55000),
    ("Sioux Falls", "SD", 43.54, -96.73, 164000),
    ("Rapid City", "SD", 44.08, -103.23, 71000),
    ("Pierre", "SD", 44.37, -100.35, 14000),
    ("St. Louis", "MO", 38.63, -90.20, 318000),
    ("Kansas City", "MO", 39.10, -94.58, 467000),
    ("Springfield", "MO", 37.21, -93.29, 164000),
    ("Columbia", "MO", 38.95, -92.33, 115000),
    ("Joplin", "MO", 37.08, -94.51, 51000),
    ("Des Moines", "IA", 41.59, -93.62, 207000),
    ("Cedar Rapids", "IA", 41.98, -91.67, 128000),
    ("Davenport", "IA", 41.52, -90.58, 102000),
    ("Iowa City", "IA", 41.66, -91.53, 71000),
    ("Council Bluffs", "IA", 41.26, -95.86, 62000),
    ("Omaha", "NE", 41.26, -95.93, 434000),
    ("Lincoln", "NE", 40.81, -96.68, 268000),
    ("Grand Island", "NE", 40.93, -98.34, 51000),
    ("North Platte", "NE", 41.12, -100.77, 24000),
    ("Wichita", "KS", 37.69, -97.34, 386000),
    ("Topeka", "KS", 39.05, -95.68, 128000),
    ("Salina", "KS", 38.84, -97.61, 48000),
    ("Hays", "KS", 38.88, -99.33, 21000),
    ("Dodge City", "KS", 37.75, -100.02, 28000),
    # --- Plains / Mountain ----------------------------------------------
    ("Oklahoma City", "OK", 35.47, -97.52, 610000),
    ("Tulsa", "OK", 36.15, -95.99, 398000),
    ("Lawton", "OK", 34.61, -98.39, 97000),
    ("Denver", "CO", 39.74, -104.99, 649000),
    ("Colorado Springs", "CO", 38.83, -104.82, 440000),
    ("Pueblo", "CO", 38.25, -104.61, 108000),
    ("Fort Collins", "CO", 40.59, -105.08, 152000),
    ("Grand Junction", "CO", 39.06, -108.55, 60000),
    ("Boulder", "CO", 40.01, -105.27, 103000),
    ("Glenwood Springs", "CO", 39.55, -107.32, 10000),
    ("Limon", "CO", 39.26, -103.69, 1900),
    ("Cheyenne", "WY", 41.14, -104.82, 62000),
    ("Laramie", "WY", 41.31, -105.59, 31000),
    ("Casper", "WY", 42.87, -106.31, 59000),
    ("Rock Springs", "WY", 41.59, -109.22, 24000),
    ("Rawlins", "WY", 41.79, -107.24, 9000),
    ("Evanston", "WY", 41.27, -110.96, 12000),
    ("Sheridan", "WY", 44.80, -106.96, 18000),
    ("Billings", "MT", 45.78, -108.50, 109000),
    ("Bozeman", "MT", 45.68, -111.04, 42000),
    ("Butte", "MT", 46.00, -112.53, 34000),
    ("Helena", "MT", 46.59, -112.04, 30000),
    ("Missoula", "MT", 46.87, -113.99, 70000),
    ("Great Falls", "MT", 47.50, -111.29, 59000),
    ("Miles City", "MT", 46.41, -105.84, 8500),
    ("Boise", "ID", 43.62, -116.20, 215000),
    ("Twin Falls", "ID", 42.56, -114.46, 46000),
    ("Pocatello", "ID", 42.87, -112.45, 55000),
    ("Idaho Falls", "ID", 43.49, -112.03, 59000),
    ("Coeur d'Alene", "ID", 47.68, -116.78, 46000),
    ("Salt Lake City", "UT", 40.76, -111.89, 191000),
    ("Provo", "UT", 40.23, -111.66, 116000),
    ("Ogden", "UT", 41.22, -111.97, 84000),
    ("St. George", "UT", 37.10, -113.58, 77000),
    ("Green River", "UT", 38.99, -110.16, 950),
    ("Wendover", "UT", 40.74, -114.03, 1400),
    ("Wells", "NV", 41.11, -114.96, 1300),
    ("Elko", "NV", 40.83, -115.76, 20000),
    ("Winnemucca", "NV", 40.97, -117.74, 7900),
    ("Reno", "NV", 39.53, -119.81, 233000),
    ("Las Vegas", "NV", 36.17, -115.14, 603000),
    ("Tonopah", "NV", 38.07, -117.23, 2500),
    ("Albuquerque", "NM", 35.08, -106.65, 557000),
    ("Santa Fe", "NM", 35.69, -105.94, 70000),
    ("Las Cruces", "NM", 32.32, -106.76, 101000),
    ("Gallup", "NM", 35.53, -108.74, 22000),
    ("Roswell", "NM", 33.39, -104.52, 48000),
    ("Tucumcari", "NM", 35.17, -103.72, 5300),
    # --- Southwest / Pacific ----------------------------------------------
    ("Phoenix", "AZ", 33.45, -112.07, 1513000),
    ("Tucson", "AZ", 32.22, -110.97, 527000),
    ("Flagstaff", "AZ", 35.20, -111.65, 68000),
    ("Yuma", "AZ", 32.69, -114.62, 91000),
    ("Sedona", "AZ", 34.87, -111.76, 10000),
    ("Camp Verde", "AZ", 34.56, -111.85, 11000),
    ("Kingman", "AZ", 35.19, -114.05, 28000),
    ("Los Angeles", "CA", 34.05, -118.24, 3900000),
    ("Anaheim", "CA", 33.84, -117.91, 345000),
    ("Riverside", "CA", 33.95, -117.40, 316000),
    ("San Bernardino", "CA", 34.11, -117.29, 213000),
    ("San Diego", "CA", 32.72, -117.16, 1356000),
    ("Barstow", "CA", 34.90, -117.02, 23000),
    ("Bakersfield", "CA", 35.37, -119.02, 364000),
    ("Fresno", "CA", 36.74, -119.79, 509000),
    ("Modesto", "CA", 37.64, -120.99, 203000),
    ("Stockton", "CA", 37.96, -121.29, 298000),
    ("Sacramento", "CA", 38.58, -121.49, 479000),
    ("San Francisco", "CA", 37.77, -122.42, 837000),
    ("Oakland", "CA", 37.80, -122.27, 406000),
    ("Palo Alto", "CA", 37.44, -122.14, 66000),
    ("San Jose", "CA", 37.34, -121.89, 998000),
    ("Santa Clara", "CA", 37.35, -121.96, 120000),
    ("Santa Barbara", "CA", 34.42, -119.70, 90000),
    ("Santa Maria", "CA", 34.95, -120.44, 102000),
    ("Lompoc", "CA", 34.64, -120.46, 43000),
    ("San Luis Obispo", "CA", 35.28, -120.66, 46000),
    ("Salinas", "CA", 36.68, -121.66, 155000),
    ("Santa Cruz", "CA", 36.97, -122.03, 63000),
    ("Chico", "CA", 39.73, -121.84, 88000),
    ("Redding", "CA", 40.59, -122.39, 91000),
    ("Eureka", "CA", 40.80, -124.16, 27000),
    ("Truckee", "CA", 39.33, -120.18, 16000),
    ("Needles", "CA", 34.85, -114.61, 5000),
    ("Palm Springs", "CA", 33.83, -116.55, 46000),
    ("Blythe", "CA", 33.61, -114.60, 20000),
    # --- Pacific Northwest -------------------------------------------------
    ("Portland", "OR", 45.52, -122.68, 609000),
    ("Hillsboro", "OR", 45.52, -122.99, 97000),
    ("Salem", "OR", 44.94, -123.04, 160000),
    ("Eugene", "OR", 44.05, -123.09, 159000),
    ("Medford", "OR", 42.33, -122.88, 77000),
    ("Bend", "OR", 44.06, -121.32, 81000),
    ("Pendleton", "OR", 45.67, -118.79, 17000),
    ("Ontario", "OR", 44.03, -116.96, 11000),
    ("Seattle", "WA", 47.61, -122.33, 652000),
    ("Tacoma", "WA", 47.25, -122.44, 203000),
    ("Olympia", "WA", 47.04, -122.90, 48000),
    ("Spokane", "WA", 47.66, -117.43, 210000),
    ("Yakima", "WA", 46.60, -120.51, 93000),
    ("Vancouver", "WA", 45.64, -122.66, 167000),
    ("Bellingham", "WA", 48.75, -122.48, 82000),
    ("Kennewick", "WA", 46.21, -119.14, 78000),
    ("Ellensburg", "WA", 46.99, -120.55, 18000),
    ("Ritzville", "WA", 47.13, -118.38, 1700),
]


def _derive_code(name: str, state: str, taken: Dict[str, str]) -> str:
    """Deterministic 3-letter lowercase city code with collision handling."""
    letters = [c for c in name.lower() if c.isalpha()]
    base = "".join(letters[:3]) if len(letters) >= 3 else ("".join(letters) + "xx")[:3]
    candidates = [base]
    # Consonant skeleton fallback, then state-flavored fallbacks.
    consonants = [c for c in letters if c not in "aeiou"]
    if len(consonants) >= 3:
        candidates.append("".join(consonants[:3]))
    candidates.append((base[:2] + state[0]).lower())
    candidates.append((base[0] + state).lower())
    for cand in candidates:
        if cand not in taken:
            return cand
    # Last resort: append a digit.
    for i in range(10):
        cand = base[:2] + str(i)
        if cand not in taken:
            return cand
    raise RuntimeError(f"could not derive a unique code for {name}, {state}")


# Hand overrides for major metros so synthetic router names read naturally
# (mirrors the paper's naming-hint decoding, ref. [78, 92]).
_CODE_OVERRIDES: Dict[str, str] = {
    "New York, NY": "nyc",
    "Los Angeles, CA": "lax",
    "Chicago, IL": "chi",
    "Dallas, TX": "dfw",
    "Houston, TX": "hou",
    "Washington, DC": "iad",
    "Philadelphia, PA": "phl",
    "Atlanta, GA": "atl",
    "Miami, FL": "mia",
    "Boston, MA": "bos",
    "San Francisco, CA": "sfo",
    "San Jose, CA": "sjc",
    "Seattle, WA": "sea",
    "Denver, CO": "den",
    "Salt Lake City, UT": "slc",
    "Phoenix, AZ": "phx",
    "Las Vegas, NV": "las",
    "Minneapolis, MN": "msp",
    "Detroit, MI": "dtw",
    "St. Louis, MO": "stl",
    "Kansas City, MO": "mci",
    "New Orleans, LA": "msy",
    "Portland, OR": "pdx",
    "San Diego, CA": "san",
    "Austin, TX": "aus",
    "San Antonio, TX": "sat",
}

#: All cities, in dataset order.
CITIES: Tuple[City, ...] = tuple(City(*row) for row in _RAW)

_BY_KEY: Dict[str, City] = {c.key: c for c in CITIES}
if len(_BY_KEY) != len(CITIES):
    raise RuntimeError("duplicate city keys in dataset")

_CODES: Dict[str, str] = {}
_TAKEN: Dict[str, str] = {}
# Reserve the hand-picked codes first so derived codes can never shadow them.
for _key, _code in _CODE_OVERRIDES.items():
    if _key not in _BY_KEY:
        raise RuntimeError(f"code override for unknown city: {_key}")
    if _code in _TAKEN:
        raise RuntimeError(f"city code collision in overrides: {_code}")
    _TAKEN[_code] = _key
    _CODES[_key] = _code
for _city in CITIES:
    if _city.key in _CODES:
        continue
    _code = _derive_code(_city.name, _city.state, _TAKEN)
    if _code in _TAKEN:
        raise RuntimeError(f"city code collision: {_code}")
    _TAKEN[_code] = _city.key
    _CODES[_city.key] = _code

_BY_CODE: Dict[str, City] = {code: _BY_KEY[key] for code, key in _TAKEN.items()}


def register_cities(cities: Iterable[City]) -> List[City]:
    """Register extension cities (e.g. submarine-cable landing stations).

    Added cities join the lookup tables — ``city_by_name`` (by full
    ``"Name, CC"`` key), ``city_by_code``, and therefore router
    naming-hint decoding — but **not** the base :data:`CITIES` tuple, so
    the US map-construction pools, ``cities_over`` thresholds, and the
    geolocation candidate sets are byte-identical with or without any
    extension registered.  Codes are derived with the same deterministic
    collision-handling scheme as the base dataset.

    Idempotent: re-registering an identical city is a no-op; registering
    a different city under an existing key raises ``ValueError``.
    """
    added: List[City] = []
    for city in cities:
        existing = _BY_KEY.get(city.key)
        if existing is not None:
            if existing != city:
                raise ValueError(
                    f"city {city.key!r} already registered with "
                    f"different data"
                )
            added.append(existing)
            continue
        code = _derive_code(city.name, city.state, _TAKEN)
        _BY_KEY[city.key] = city
        _TAKEN[code] = city.key
        _CODES[city.key] = code
        _BY_CODE[code] = city
        added.append(city)
    return added


def city_by_name(name: str, state: Optional[str] = None) -> City:
    """Look up a city by ``"Name, ST"`` key or by name + state.

    Raises ``KeyError`` (with the ambiguous candidates listed) when a bare
    name matches several states.
    """
    if state is not None:
        return _BY_KEY[f"{name}, {state}"]
    if "," in name:
        return _BY_KEY[name.replace(", ", ",").replace(",", ", ")]
    matches = [c for c in CITIES if c.name == name]
    if not matches:
        raise KeyError(name)
    if len(matches) > 1:
        keys = ", ".join(c.key for c in matches)
        raise KeyError(f"ambiguous city name {name!r}: {keys}")
    return matches[0]


def city_by_code(code: str) -> City:
    """Look up a city by its short code."""
    return _BY_CODE[code]


def cities_over(population: int) -> List[City]:
    """Cities with population >= *population*, largest first."""
    return sorted(
        (c for c in CITIES if c.population >= population),
        key=lambda c: -c.population,
    )


def cities_in_states(states: Iterable[str]) -> List[City]:
    wanted = set(states)
    return [c for c in CITIES if c.state in wanted]


def nearest_city(point: GeoPoint, candidates: Iterable[City] = None) -> City:
    """The city closest to *point* among *candidates* (default: all)."""
    pool = list(candidates) if candidates is not None else list(CITIES)
    if not pool:
        raise ValueError("no candidate cities")
    return min(pool, key=lambda c: haversine_km(point, c.location))
