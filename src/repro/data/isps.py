"""The 20 service providers of the paper's study.

§2 builds the initial map from 9 providers with explicitly geocoded maps
(step 1, Table 1) and augments it with 11 providers whose published maps
only give POP-level connectivity (step 3).  Footprint sizes below are
taken from Table 1 where the paper states them and set to plausible
values (calibrated so step-3 links total 1153, as the paper reports)
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Footprint styles: where an ISP concentrates its POPs.
STYLE_NATIONAL = "national"
STYLE_SOUTH = "south"
STYLE_SOUTH_CENTRAL = "south_central"
STYLE_NORTHWEST = "northwest"
STYLE_EAST = "east"
STYLE_WEST = "west"
STYLES = (STYLE_NATIONAL, STYLE_SOUTH, STYLE_SOUTH_CENTRAL, STYLE_NORTHWEST,
          STYLE_EAST, STYLE_WEST)

#: States grouped per style (used by footprint synthesis to bias sampling).
STYLE_STATES: Dict[str, Tuple[str, ...]] = {
    STYLE_SOUTH: ("TX", "LA", "AR", "OK", "MS", "AL", "GA", "FL", "TN", "NM", "AZ", "WV", "NC", "SC", "MO", "KS"),
    STYLE_SOUTH_CENTRAL: ("TX", "LA", "AR", "OK", "MO", "KS", "MS"),
    STYLE_NORTHWEST: ("WA", "OR", "ID", "MT", "UT", "CO", "MN", "ND", "CA", "NV", "WY"),
    STYLE_EAST: ("NY", "NJ", "PA", "MA", "CT", "RI", "MD", "DC", "VA", "DE", "NH", "ME", "VT", "OH", "MI", "IL", "IN", "WI", "NC", "GA", "FL"),
    STYLE_WEST: ("CA", "NV", "AZ", "OR", "WA", "UT", "CO", "TX", "NM", "ID"),
}


@dataclass(frozen=True)
class ISPProfile:
    """Identity and calibration targets for one provider.

    ``target_nodes`` / ``target_links`` reproduce the paper's Table 1 for
    step-1 ISPs; step-3 values are calibrated so the step-3 ISPs together
    contribute 1153 links (§2.3, "196 nodes, 1153 links, and 347 conduits
    without considering the 9 ISPs above").
    """

    name: str
    tier: str  # "tier1" | "cable" | "regional"
    step: int  # 1 = geocoded published map; 3 = POP-only published map
    target_nodes: int
    target_links: int
    style: str = STYLE_NATIONAL
    #: How strongly POP selection favors large metros.  Non-US providers
    #: that "use policies like dig once ... to expand their presence in
    #: the US" (§4.2) sit almost exclusively in major hubs (high bias);
    #: broad domestic networks like EarthLink and Level 3 reach many small
    #: markets (low bias).
    hub_bias: float = 1.0
    #: Facilities-based builders trench their own conduits where that is
    #: cheapest for them (cable MSOs, Level 3, EarthLink); lessees expand
    #: by pulling fiber through existing conduits via IRUs and dark-fiber
    #: leases (§4.2: Deutsche Telekom, NTT, XO "use policies like dig
    #: once and open trench, and/or lease dark fibers").
    builder: bool = False

    def __post_init__(self) -> None:
        if self.step not in (1, 3):
            raise ValueError(f"step must be 1 or 3: {self.step}")
        if self.tier not in ("tier1", "cable", "regional"):
            raise ValueError(f"unknown tier: {self.tier}")
        if self.style not in STYLES:
            raise ValueError(f"unknown style: {self.style}")

    @property
    def geocoded(self) -> bool:
        """True when the provider publishes explicit link geography (step 1)."""
        return self.step == 1


def _isp(name: str, tier: str, step: int, nodes: int, links: int,
         style: str = STYLE_NATIONAL, hub_bias: float = 1.0,
         builder: bool = False) -> ISPProfile:
    return ISPProfile(name=name, tier=tier, step=step, target_nodes=nodes,
                      target_links=links, style=style, hub_bias=hub_bias,
                      builder=builder)


#: Step-1 providers, node/link targets straight from Table 1.
STEP1_ISPS: Tuple[ISPProfile, ...] = (
    _isp("AT&T", "tier1", 1, 25, 57, hub_bias=2.0),
    _isp("Comcast", "cable", 1, 26, 71, hub_bias=1.0, builder=True),
    _isp("Cogent", "tier1", 1, 69, 84, hub_bias=1.6),
    _isp("EarthLink", "regional", 1, 248, 370, hub_bias=0.5, builder=True),
    _isp("Integra", "regional", 1, 27, 36, STYLE_NORTHWEST, hub_bias=1.2, builder=True),
    _isp("Level 3", "tier1", 1, 240, 336, hub_bias=0.5, builder=True),
    _isp("Suddenlink", "cable", 1, 39, 42, STYLE_SOUTH_CENTRAL, hub_bias=0.4, builder=True),
    _isp("Verizon", "tier1", 1, 116, 151, hub_bias=1.2, builder=True),
    _isp("Zayo", "regional", 1, 98, 111, hub_bias=1.6),
)

#: Step-3 providers (POP-only published maps).
STEP3_ISPS: Tuple[ISPProfile, ...] = (
    _isp("CenturyLink", "tier1", 3, 96, 134, hub_bias=1.0, builder=True),
    _isp("Sprint", "tier1", 3, 73, 102, hub_bias=1.2, builder=True),
    _isp("Cox", "cable", 3, 80, 110, STYLE_SOUTH, hub_bias=0.8, builder=True),
    _isp("Deutsche Telekom", "tier1", 3, 58, 79, hub_bias=3.0),
    _isp("HE", "tier1", 3, 66, 90, STYLE_WEST, hub_bias=1.8),
    _isp("Inteliquent", "tier1", 3, 64, 90, hub_bias=2.0),
    _isp("NTT", "tier1", 3, 70, 95, hub_bias=3.0),
    _isp("Tata", "tier1", 3, 50, 65, hub_bias=2.6),
    _isp("TeliaSonera", "tier1", 3, 60, 80, STYLE_EAST, hub_bias=2.4),
    _isp("TWC", "cable", 3, 112, 158, STYLE_EAST, hub_bias=0.8, builder=True),
    _isp("XO", "tier1", 3, 105, 150, hub_bias=3.0),
)

#: All 20 providers, step-1 first.
ISPS: Tuple[ISPProfile, ...] = STEP1_ISPS + STEP3_ISPS

_BY_NAME: Dict[str, ISPProfile] = {p.name: p for p in ISPS}
if len(_BY_NAME) != len(ISPS):
    raise RuntimeError("duplicate ISP names")

_total_step3_links = sum(p.target_links for p in STEP3_ISPS)
if _total_step3_links != 1153:
    raise RuntimeError(
        f"step-3 link calibration drifted: {_total_step3_links} != 1153"
    )


def isp_by_name(name: str) -> ISPProfile:
    """Look up a provider profile by exact name."""
    return _BY_NAME[name]


def isp_names() -> List[str]:
    """All provider names, step-1 providers first."""
    return [p.name for p in ISPS]
