"""Landing stations and submarine-cable systems: the global node universe.

The intercontinental extension (ROADMAP; Nautilus and "A hop away from
everywhere" in PAPERS.md) needs what :mod:`repro.data.cities` and
:mod:`repro.data.corridors` give the US family: a city universe and the
rights-of-way between them.  Here the "cities" are cable landing
stations plus the metro hubs they backhaul into, and the corridors are
submarine cable systems (``kind="sea"``) plus terrestrial backhaul
(``kind="road"``).

Two deliberate structural properties feed the risk analyses:

* **Chokepoints.**  Several independent cable systems traverse the same
  narrow passages — Port Said–Suez (the canal), the Bab el-Mandeb
  approach into Djibouti, Penang–Singapore (the Malacca Strait), and
  the Gibraltar entrance to the Mediterranean.  Those shared edges are
  the submarine analogue of the paper's most-tenanted US conduits: a
  single trench/passage whose cut touches many providers at once.
* **Detours exist but are expensive.**  The Red Sea festoon via Jeddah
  and the terrestrial Egypt crossing give the what-if analyses a
  non-trivial answer to "what if Suez is cut" instead of a partition.

Stations register through :func:`repro.data.cities.register_cities`, so
they join the lookup tables without perturbing the US dataset.
Coordinates are approximate; populations are metro-scale figures used
only as POP-selection weights.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.data.cities import City, register_cities
from repro.data.corridors import (
    GRADE_PRIMARY,
    KIND_ROAD,
    KIND_SEA,
    Corridor,
)

# ---------------------------------------------------------------------------
# Landing stations and international hubs.  (name, country, lat, lon, pop)
# ---------------------------------------------------------------------------
_STATION_RAW: List[Tuple[str, str, float, float, int]] = [
    # --- Europe --------------------------------------------------------
    ("Bude", "UK", 50.83, -4.55, 9000),
    ("London", "UK", 51.51, -0.13, 8800000),
    ("Amsterdam", "NL", 52.37, 4.90, 870000),
    ("Frankfurt", "DE", 50.11, 8.68, 750000),
    ("Paris", "FR", 48.86, 2.35, 2140000),
    ("Marseille", "FR", 43.30, 5.37, 870000),
    ("Madrid", "ES", 40.42, -3.70, 3200000),
    ("Lisbon", "PT", 38.72, -9.14, 505000),
    ("Gibraltar", "GI", 36.14, -5.35, 34000),
    # --- Mediterranean / Middle East / Indian Ocean --------------------
    ("Alexandria", "EG", 31.20, 29.92, 5200000),
    ("Port Said", "EG", 31.27, 32.30, 750000),
    ("Suez", "EG", 29.97, 32.55, 570000),
    ("Jeddah", "SA", 21.49, 39.19, 4000000),
    ("Djibouti City", "DJ", 11.59, 43.15, 600000),
    ("Fujairah", "AE", 25.13, 56.33, 100000),
    ("Mumbai", "IN", 19.08, 72.88, 12400000),
    ("Chennai", "IN", 13.08, 80.27, 7100000),
    # --- Asia-Pacific ---------------------------------------------------
    ("Penang", "MY", 5.41, 100.33, 710000),
    ("Singapore", "SG", 1.35, 103.82, 5600000),
    ("Hong Kong", "HK", 22.32, 114.17, 7400000),
    ("Tokyo", "JP", 35.68, 139.69, 13900000),
    ("Guam", "GU", 13.44, 144.79, 170000),
    ("Sydney", "AU", -33.87, 151.21, 5300000),
    ("Auckland", "NZ", -36.85, 174.76, 1650000),
    ("Honolulu", "HI", 21.31, -157.86, 350000),
]

#: Existing US cities that double as trans-oceanic landing/backhaul hubs.
US_HUB_KEYS: Tuple[str, ...] = (
    "New York, NY",
    "Washington, DC",
    "Ashburn, VA",
    "Miami, FL",
    "Los Angeles, CA",
    "San Francisco, CA",
    "Seattle, WA",
)

#: The station City objects (not yet registered; see ensure_registered).
STATIONS: Tuple[City, ...] = tuple(City(*row) for row in _STATION_RAW)


def _sea(name: str, *waypoints: str) -> Corridor:
    return Corridor(
        name=name, kind=KIND_SEA, waypoints=tuple(waypoints),
        grade=GRADE_PRIMARY,
    )


def _backhaul(name: str, *waypoints: str) -> Corridor:
    return Corridor(
        name=name, kind=KIND_ROAD, waypoints=tuple(waypoints),
        grade=GRADE_PRIMARY,
    )


#: Submarine cable systems.  Waypoint pairs sharing an edge share the
#: physical passage — that is the chokepoint structure (Suez appears in
#: four systems, Malacca in three, Gibraltar in two).
CABLE_SYSTEMS: Tuple[Corridor, ...] = (
    # Transatlantic
    _sea("Atlantic Crossing", "New York, NY", "Bude, UK"),
    _sea("Apollo South", "Washington, DC", "Lisbon, PT"),
    _sea("Columbus-III", "Miami, FL", "Lisbon, PT"),
    # European festoon / Mediterranean entrance
    _sea("Circe North", "London, UK", "Amsterdam, NL"),
    _sea("Atlantis-2", "Lisbon, PT", "Gibraltar, GI", "Marseille, FR"),
    # Europe -> Egypt -> India -> Southeast Asia (the Suez corridor)
    _sea("SEA-ME-WE-5",
         "Marseille, FR", "Alexandria, EG", "Port Said, EG", "Suez, EG",
         "Djibouti City, DJ", "Mumbai, IN", "Chennai, IN", "Penang, MY",
         "Singapore, SG"),
    _sea("AAE-1",
         "Marseille, FR", "Port Said, EG", "Suez, EG",
         "Djibouti City, DJ", "Fujairah, AE", "Mumbai, IN", "Penang, MY",
         "Singapore, SG"),
    _sea("EIG",
         "Gibraltar, GI", "Alexandria, EG", "Port Said, EG", "Suez, EG",
         "Djibouti City, DJ", "Mumbai, IN"),
    _sea("FALCON",
         "Suez, EG", "Djibouti City, DJ", "Fujairah, AE", "Mumbai, IN"),
    # The Red Sea festoon: the expensive detour around Bab el-Mandeb.
    _sea("Red Sea Festoon", "Suez, EG", "Jeddah, SA", "Djibouti City, DJ"),
    # Malacca Strait and East Asia
    _sea("Malacca Express", "Chennai, IN", "Penang, MY", "Singapore, SG"),
    _sea("APG", "Singapore, SG", "Hong Kong, HK", "Tokyo, JP"),
    _sea("Asia Submarine Express",
         "Singapore, SG", "Hong Kong, HK", "Tokyo, JP"),
    # Transpacific
    _sea("Pacific Crossing", "Tokyo, JP", "Seattle, WA"),
    _sea("Unity", "Tokyo, JP", "San Francisco, CA"),
    _sea("Australia-Japan Cable", "Sydney, AU", "Guam, GU", "Tokyo, JP"),
    _sea("Southern Cross",
         "Sydney, AU", "Auckland, NZ", "Honolulu, HI",
         "San Francisco, CA"),
    _sea("Hawaiki",
         "Sydney, AU", "Auckland, NZ", "Honolulu, HI",
         "Los Angeles, CA"),
)

#: Terrestrial backhaul tying landing stations into the metro hubs.
BACKHAUL_CORRIDORS: Tuple[Corridor, ...] = (
    _backhaul("UK Backhaul", "Bude, UK", "London, UK"),
    _backhaul("Channel Route", "London, UK", "Paris, FR"),
    _backhaul("Rhine Route", "Paris, FR", "Frankfurt, DE",
              "Amsterdam, NL"),
    _backhaul("Rhone Route", "Paris, FR", "Marseille, FR"),
    _backhaul("Iberia Route", "Lisbon, PT", "Madrid, ES",
              "Marseille, FR"),
    _backhaul("Nile Delta Route", "Alexandria, EG", "Port Said, EG"),
    _backhaul("Egypt Crossing", "Alexandria, EG", "Suez, EG"),
    _backhaul("Suez Canal Zone", "Port Said, EG", "Suez, EG"),
    _backhaul("India Land Route", "Mumbai, IN", "Chennai, IN"),
    _backhaul("US Atlantic Backhaul",
              "Miami, FL", "Ashburn, VA", "Washington, DC",
              "New York, NY"),
    _backhaul("US Transcontinental", "Washington, DC", "Los Angeles, CA"),
    _backhaul("US Pacific Backhaul",
              "Los Angeles, CA", "San Francisco, CA", "Seattle, WA"),
)

#: Every corridor of the global map, cables first.
GLOBAL_CORRIDORS: Tuple[Corridor, ...] = CABLE_SYSTEMS + BACKHAUL_CORRIDORS


def station_keys() -> List[str]:
    """All node keys of the global map: stations plus US hubs."""
    return [c.key for c in STATIONS] + list(US_HUB_KEYS)


def ensure_registered() -> None:
    """Register the station cities (idempotent; safe to call per stage)."""
    register_cities(STATIONS)
