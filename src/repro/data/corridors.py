"""Transportation corridors: the rights-of-way of the physical Internet.

The paper compares conduit geography against the NationalAtlas roadway and
railway layers (Figures 2 and 3) and notes that the remaining conduits
follow other rights-of-way such as refined-product and NGL pipelines
(Figure 5, §3).  This module encodes the macro-structure of those layers:
each corridor is an ordered list of city waypoints along a real interstate
highway, principal rail main line, or long-haul pipeline.

The encoding is coarse (city-to-city great-circle legs) but preserves what
matters for the paper's analyses: which city pairs are reachable along
which kind of right-of-way, and roughly how long each route is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.data.cities import city_by_name

#: Infrastructure kinds (Figure 2 = road, Figure 3 = rail, Figure 5 = pipeline).
#: ``sea`` is the submarine-cable extension: a corridor between two
#: landing-station cities whose "right-of-way" is the cable route itself
#: (map families beyond the US long-haul plant use it; no US corridor does).
KIND_ROAD = "road"
KIND_RAIL = "rail"
KIND_PIPELINE = "pipeline"
KIND_SEA = "sea"
KINDS = (KIND_ROAD, KIND_RAIL, KIND_PIPELINE, KIND_SEA)


#: Corridor grades: primary corridors are interstates / class-1 rail /
#: trunk pipelines; secondary corridors are the dense US-route and state
#: highway grid that regional spurs follow.
GRADE_PRIMARY = "primary"
GRADE_SECONDARY = "secondary"


@dataclass(frozen=True)
class Corridor:
    """One named right-of-way through an ordered list of city waypoints."""

    name: str
    kind: str
    waypoints: Tuple[str, ...]
    grade: str = GRADE_PRIMARY

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown corridor kind: {self.kind}")
        if self.grade not in (GRADE_PRIMARY, GRADE_SECONDARY):
            raise ValueError(f"unknown corridor grade: {self.grade}")
        if len(self.waypoints) < 2:
            raise ValueError(f"corridor {self.name} needs >= 2 waypoints")

    def edges(self) -> List[Tuple[str, str]]:
        """Consecutive waypoint pairs (the ROW graph edges)."""
        return list(zip(self.waypoints, self.waypoints[1:]))


def _c(name: str, kind: str, *waypoints: str) -> Corridor:
    return Corridor(name=name, kind=kind, waypoints=tuple(waypoints))


# ---------------------------------------------------------------------------
# Interstate highways (roadway layer, Figure 2)
# ---------------------------------------------------------------------------
_ROADS: List[Corridor] = [
    _c("I-5", KIND_ROAD,
       "Seattle, WA", "Tacoma, WA", "Olympia, WA", "Vancouver, WA",
       "Portland, OR", "Salem, OR", "Eugene, OR", "Medford, OR",
       "Redding, CA", "Sacramento, CA", "Stockton, CA", "Bakersfield, CA",
       "Los Angeles, CA", "Anaheim, CA", "San Diego, CA"),
    _c("CA-99", KIND_ROAD,
       "Sacramento, CA", "Stockton, CA", "Modesto, CA", "Fresno, CA",
       "Bakersfield, CA"),
    _c("US-101", KIND_ROAD,
       "San Francisco, CA", "Palo Alto, CA", "San Jose, CA", "Salinas, CA",
       "San Luis Obispo, CA", "Santa Maria, CA", "Lompoc, CA",
       "Santa Barbara, CA", "Los Angeles, CA"),
    _c("I-80", KIND_ROAD,
       "San Francisco, CA", "Oakland, CA", "Sacramento, CA", "Truckee, CA",
       "Reno, NV", "Winnemucca, NV", "Elko, NV", "Wells, NV", "Wendover, UT",
       "Salt Lake City, UT", "Evanston, WY", "Rock Springs, WY",
       "Rawlins, WY", "Laramie, WY", "Cheyenne, WY", "North Platte, NE",
       "Grand Island, NE", "Lincoln, NE", "Omaha, NE", "Des Moines, IA",
       "Iowa City, IA", "Davenport, IA", "Chicago, IL", "South Bend, IN",
       "Toledo, OH", "Cleveland, OH", "Youngstown, OH", "Scranton, PA",
       "Newark, NJ", "New York, NY"),
    _c("I-90", KIND_ROAD,
       "Seattle, WA", "Ellensburg, WA", "Ritzville, WA", "Spokane, WA",
       "Coeur d'Alene, ID", "Missoula, MT", "Butte, MT", "Bozeman, MT",
       "Billings, MT", "Sheridan, WY", "Rapid City, SD", "Sioux Falls, SD",
       "Rochester, MN", "La Crosse, WI", "Madison, WI", "Rockford, IL",
       "Chicago, IL"),
    _c("I-90-East", KIND_ROAD,
       "Chicago, IL", "South Bend, IN", "Toledo, OH", "Cleveland, OH",
       "Erie, PA", "Buffalo, NY", "Rochester, NY", "Syracuse, NY",
       "Utica, NY", "Albany, NY", "Springfield, MA", "Worcester, MA",
       "Boston, MA"),
    _c("I-10", KIND_ROAD,
       "Los Angeles, CA", "San Bernardino, CA", "Palm Springs, CA",
       "Blythe, CA", "Phoenix, AZ", "Tucson, AZ", "Las Cruces, NM",
       "El Paso, TX", "San Angelo, TX", "San Antonio, TX", "Houston, TX",
       "Beaumont, TX", "Lake Charles, LA", "Lafayette, LA",
       "Baton Rouge, LA", "New Orleans, LA", "Gulfport, MS", "Mobile, AL",
       "Pensacola, FL", "Tallahassee, FL", "Jacksonville, FL"),
    _c("I-40", KIND_ROAD,
       "Barstow, CA", "Needles, CA", "Kingman, AZ", "Flagstaff, AZ",
       "Gallup, NM", "Albuquerque, NM", "Tucumcari, NM", "Amarillo, TX",
       "Oklahoma City, OK", "Fort Smith, AR", "Little Rock, AR",
       "Memphis, TN", "Jackson, TN", "Nashville, TN", "Knoxville, TN",
       "Asheville, NC", "Winston-Salem, NC", "Greensboro, NC",
       "Durham, NC", "Raleigh, NC", "Wilmington, NC"),
    _c("I-70", KIND_ROAD,
       "Provo, UT", "Green River, UT", "Grand Junction, CO",
       "Glenwood Springs, CO", "Denver, CO", "Limon, CO", "Hays, KS",
       "Salina, KS", "Topeka, KS", "Kansas City, MO", "Columbia, MO",
       "St. Louis, MO", "Effingham, IL", "Terre Haute, IN",
       "Indianapolis, IN", "Dayton, OH", "Columbus, OH", "Pittsburgh, PA",
       "Frederick, MD", "Baltimore, MD"),
    _c("I-15", KIND_ROAD,
       "San Diego, CA", "Riverside, CA", "San Bernardino, CA",
       "Barstow, CA", "Las Vegas, NV", "St. George, UT", "Provo, UT",
       "Salt Lake City, UT", "Ogden, UT", "Pocatello, ID",
       "Idaho Falls, ID", "Butte, MT", "Helena, MT", "Great Falls, MT"),
    _c("I-25", KIND_ROAD,
       "Las Cruces, NM", "Albuquerque, NM", "Santa Fe, NM", "Pueblo, CO",
       "Colorado Springs, CO", "Denver, CO", "Fort Collins, CO",
       "Cheyenne, WY", "Casper, WY", "Sheridan, WY", "Billings, MT"),
    _c("I-35", KIND_ROAD,
       "Laredo, TX", "San Antonio, TX", "Austin, TX", "Waco, TX",
       "Fort Worth, TX", "Dallas, TX", "Oklahoma City, OK", "Wichita, KS",
       "Topeka, KS", "Kansas City, MO", "Des Moines, IA",
       "Minneapolis, MN", "Duluth, MN"),
    _c("I-95", KIND_ROAD,
       "Miami, FL", "Fort Lauderdale, FL", "Boca Raton, FL",
       "West Palm Beach, FL", "Daytona Beach, FL", "Jacksonville, FL",
       "Savannah, GA", "Raleigh, NC", "Richmond, VA", "Washington, DC",
       "Baltimore, MD", "Towson, MD", "Wilmington, DE",
       "Philadelphia, PA", "Trenton, NJ", "Edison, NJ", "Newark, NJ",
       "New York, NY", "Stamford, CT", "Bridgeport, CT", "New Haven, CT",
       "Providence, RI", "Boston, MA", "Portland, ME"),
    _c("I-20", KIND_ROAD,
       "Midland, TX", "Abilene, TX", "Fort Worth, TX", "Dallas, TX",
       "Tyler, TX", "Shreveport, LA", "Monroe, LA", "Jackson, MS",
       "Meridian, MS", "Birmingham, AL", "Atlanta, GA", "Augusta, GA",
       "Columbia, SC"),
    _c("I-75", KIND_ROAD,
       "Fort Myers, FL", "Sarasota, FL", "Tampa, FL", "Ocala, FL",
       "Gainesville, FL", "Valdosta, GA", "Macon, GA", "Atlanta, GA",
       "Chattanooga, TN", "Knoxville, TN", "Lexington, KY",
       "Cincinnati, OH", "Dayton, OH", "Toledo, OH", "Detroit, MI",
       "Flint, MI", "Saginaw, MI"),
    _c("I-4", KIND_ROAD,
       "Tampa, FL", "Orlando, FL", "Daytona Beach, FL"),
    _c("FL-Turnpike", KIND_ROAD,
       "Ocala, FL", "Orlando, FL", "West Palm Beach, FL", "Miami, FL"),
    _c("I-85", KIND_ROAD,
       "Montgomery, AL", "Columbus, GA", "Atlanta, GA", "Greenville, SC",
       "Charlotte, NC", "Greensboro, NC", "Durham, NC", "Richmond, VA"),
    _c("I-77", KIND_ROAD,
       "Columbia, SC", "Charlotte, NC", "Charleston, WV", "Akron, OH",
       "Cleveland, OH"),
    _c("I-26", KIND_ROAD,
       "Charleston, SC", "Columbia, SC", "Greenville, SC", "Asheville, NC"),
    _c("I-81", KIND_ROAD,
       "Knoxville, TN", "Bristol, VA", "Roanoke, VA", "Harrisburg, PA",
       "Scranton, PA", "Binghamton, NY", "Syracuse, NY"),
    _c("I-84-West", KIND_ROAD,
       "Portland, OR", "Pendleton, OR", "Ontario, OR", "Boise, ID",
       "Twin Falls, ID", "Pocatello, ID", "Ogden, UT",
       "Salt Lake City, UT"),
    _c("I-84-East", KIND_ROAD,
       "Scranton, PA", "White Plains, NY", "Hartford, CT"),
    _c("I-91", KIND_ROAD,
       "New Haven, CT", "Hartford, CT", "Springfield, MA",
       "Burlington, VT"),
    _c("I-93", KIND_ROAD,
       "Boston, MA", "Manchester, NH"),
    _c("I-94", KIND_ROAD,
       "Billings, MT", "Miles City, MT", "Bismarck, ND", "Fargo, ND",
       "St. Cloud, MN", "Minneapolis, MN", "Eau Claire, WI",
       "Madison, WI", "Milwaukee, WI", "Chicago, IL", "Gary, IN",
       "Kalamazoo, MI", "Battle Creek, MI", "Ann Arbor, MI",
       "Detroit, MI"),
    _c("I-69", KIND_ROAD,
       "Indianapolis, IN", "Fort Wayne, IN", "Lansing, MI", "Flint, MI"),
    _c("I-96", KIND_ROAD,
       "Detroit, MI", "Livonia, MI", "Lansing, MI", "Grand Rapids, MI"),
    _c("I-196", KIND_ROAD,
       "Battle Creek, MI", "Lansing, MI"),
    _c("M-10", KIND_ROAD,
       "Detroit, MI", "Southfield, MI", "Livonia, MI"),
    _c("I-44", KIND_ROAD,
       "Wichita Falls, TX", "Lawton, OK", "Oklahoma City, OK",
       "Tulsa, OK", "Joplin, MO", "Springfield, MO", "St. Louis, MO"),
    _c("I-45", KIND_ROAD,
       "Galveston, TX", "Houston, TX", "Dallas, TX"),
    _c("TX-6", KIND_ROAD,
       "Houston, TX", "Bryan, TX", "Waco, TX"),
    _c("US-287", KIND_ROAD,
       "Fort Worth, TX", "Wichita Falls, TX", "Amarillo, TX"),
    _c("I-27", KIND_ROAD,
       "Lubbock, TX", "Amarillo, TX"),
    _c("US-87", KIND_ROAD,
       "San Angelo, TX", "Lubbock, TX"),
    _c("I-37", KIND_ROAD,
       "San Antonio, TX", "Corpus Christi, TX"),
    _c("US-77", KIND_ROAD,
       "Corpus Christi, TX", "McAllen, TX"),
    _c("I-55", KIND_ROAD,
       "New Orleans, LA", "Jackson, MS", "Memphis, TN", "St. Louis, MO",
       "Springfield, IL", "Bloomington, IL", "Chicago, IL"),
    _c("I-57", KIND_ROAD,
       "Chicago, IL", "Champaign, IL", "Effingham, IL"),
    _c("I-74", KIND_ROAD,
       "Davenport, IA", "Peoria, IL", "Bloomington, IL", "Champaign, IL",
       "Urbana, IL", "Indianapolis, IN", "Cincinnati, OH"),
    _c("I-65", KIND_ROAD,
       "Mobile, AL", "Montgomery, AL", "Birmingham, AL", "Huntsville, AL",
       "Nashville, TN", "Bowling Green, KY", "Louisville, KY",
       "Indianapolis, IN", "Gary, IN", "Chicago, IL"),
    _c("I-71", KIND_ROAD,
       "Louisville, KY", "Cincinnati, OH", "Columbus, OH",
       "Cleveland, OH"),
    _c("I-64", KIND_ROAD,
       "St. Louis, MO", "Evansville, IN", "Louisville, KY",
       "Lexington, KY", "Charleston, WV", "Richmond, VA", "Norfolk, VA"),
    _c("I-76-West", KIND_ROAD,
       "Denver, CO", "North Platte, NE"),
    _c("I-76-East", KIND_ROAD,
       "Philadelphia, PA", "Allentown, PA", "Harrisburg, PA",
       "Pittsburgh, PA", "Youngstown, OH", "Akron, OH"),
    _c("I-78", KIND_ROAD,
       "New York, NY", "Newark, NJ", "Allentown, PA", "Harrisburg, PA"),
    _c("I-17", KIND_ROAD,
       "Phoenix, AZ", "Camp Verde, AZ", "Flagstaff, AZ"),
    _c("AZ-89A", KIND_ROAD,
       "Camp Verde, AZ", "Sedona, AZ", "Flagstaff, AZ"),
    _c("I-8", KIND_ROAD,
       "San Diego, CA", "Yuma, AZ", "Phoenix, AZ"),
    _c("I-29", KIND_ROAD,
       "Kansas City, MO", "Council Bluffs, IA", "Omaha, NE",
       "Sioux Falls, SD", "Fargo, ND", "Grand Forks, ND"),
    _c("US-95", KIND_ROAD,
       "Las Vegas, NV", "Tonopah, NV", "Reno, NV"),
    _c("US-93", KIND_ROAD,
       "Las Vegas, NV", "Kingman, AZ", "Phoenix, AZ"),
    _c("US-6", KIND_ROAD,
       "Las Vegas, NV", "St. George, UT", "Green River, UT"),
    _c("US-285", KIND_ROAD,
       "El Paso, TX", "Roswell, NM", "Santa Fe, NM"),
    _c("US-87-North", KIND_ROAD,
       "Lubbock, TX", "Roswell, NM"),
    _c("US-83", KIND_ROAD,
       "Laredo, TX", "McAllen, TX"),
    _c("I-59", KIND_ROAD,
       "New Orleans, LA", "Gulfport, MS", "Hattiesburg, MS", "Laurel, MS",
       "Meridian, MS", "Birmingham, AL", "Chattanooga, TN"),
    _c("US-90", KIND_ROAD,
       "Jacksonville, FL", "Tallahassee, FL", "Pensacola, FL"),
    _c("I-16", KIND_ROAD,
       "Macon, GA", "Savannah, GA"),
    _c("I-24", KIND_ROAD,
       "Nashville, TN", "Chattanooga, TN"),
    _c("I-30", KIND_ROAD,
       "Dallas, TX", "Texarkana, TX", "Little Rock, AR"),
    _c("US-59", KIND_ROAD,
       "Houston, TX", "Tyler, TX", "Texarkana, TX"),
    _c("I-39", KIND_ROAD,
       "Rockford, IL", "Madison, WI", "Wausau, WI"),
    _c("US-51", KIND_ROAD,
       "Wausau, WI", "Eau Claire, WI", "Duluth, MN"),
    _c("US-2", KIND_ROAD,
       "Duluth, MN", "Grand Forks, ND"),
    _c("I-43", KIND_ROAD,
       "Milwaukee, WI", "Green Bay, WI"),
    _c("US-41", KIND_ROAD,
       "Green Bay, WI", "Wausau, WI"),
    _c("I-94-West", KIND_ROAD,
       "Minneapolis, MN", "St. Paul, MN", "Eau Claire, WI"),
    _c("US-52", KIND_ROAD,
       "Minneapolis, MN", "Rochester, MN", "La Crosse, WI"),
    _c("I-35W", KIND_ROAD,
       "Minneapolis, MN", "St. Paul, MN"),
    _c("US-12", KIND_ROAD,
       "Miles City, MT", "Rapid City, SD", "Pierre, SD",
       "Sioux Falls, SD"),
    _c("US-20", KIND_ROAD,
       "Boise, ID", "Idaho Falls, ID"),
    _c("US-26", KIND_ROAD,
       "Idaho Falls, ID", "Casper, WY"),
    _c("US-30", KIND_ROAD,
       "Pocatello, ID", "Twin Falls, ID"),
    _c("US-191", KIND_ROAD,
       "Bozeman, MT", "Idaho Falls, ID"),
    _c("I-86", KIND_ROAD,
       "Binghamton, NY", "Erie, PA"),
    _c("US-219", KIND_ROAD,
       "Buffalo, NY", "Pittsburgh, PA"),
    _c("US-15", KIND_ROAD,
       "Harrisburg, PA", "Frederick, MD", "Washington, DC"),
    _c("US-29", KIND_ROAD,
       "Washington, DC", "Ashburn, VA", "Charlottesville, VA",
       "Lynchburg, VA", "Greensboro, NC"),
    _c("I-66", KIND_ROAD,
       "Washington, DC", "Ashburn, VA"),
    _c("I-64-VA", KIND_ROAD,
       "Richmond, VA", "Charlottesville, VA"),
    _c("US-460", KIND_ROAD,
       "Lynchburg, VA", "Roanoke, VA"),
    _c("US-58", KIND_ROAD,
       "Norfolk, VA", "Raleigh, NC"),
    _c("I-40-OKC-AMA", KIND_ROAD,
       "Oklahoma City, OK", "Amarillo, TX"),
    _c("US-54", KIND_ROAD,
       "Wichita, KS", "Dodge City, KS", "Tucumcari, NM"),
    _c("US-50", KIND_ROAD,
       "Salina, KS", "Hays, KS", "Pueblo, CO"),
    _c("US-400", KIND_ROAD,
       "Wichita, KS", "Salina, KS"),
    _c("US-412", KIND_ROAD,
       "Tulsa, OK", "Fort Smith, AR"),
    _c("I-49", KIND_ROAD,
       "Texarkana, TX", "Shreveport, LA", "Lafayette, LA"),
    _c("US-61", KIND_ROAD,
       "New Orleans, LA", "Baton Rouge, LA", "Jackson, MS"),
    _c("US-165", KIND_ROAD,
       "Monroe, LA", "Baton Rouge, LA"),
    _c("US-49", KIND_ROAD,
       "Jackson, MS", "Hattiesburg, MS", "Gulfport, MS"),
    _c("I-22", KIND_ROAD,
       "Memphis, TN", "Birmingham, AL"),
    _c("I-20-W-Texas", KIND_ROAD,
       "El Paso, TX", "Midland, TX"),
    _c("US-82", KIND_ROAD,
       "Lubbock, TX", "Wichita Falls, TX"),
    _c("I-35-Duluth", KIND_ROAD,
       "St. Paul, MN", "Duluth, MN"),
    _c("US-101-North", KIND_ROAD,
       "San Francisco, CA", "Eureka, CA"),
    _c("I-580", KIND_ROAD,
       "Oakland, CA", "Stockton, CA"),
    _c("I-680", KIND_ROAD,
       "San Jose, CA", "Oakland, CA"),
    _c("US-50-NV", KIND_ROAD,
       "Sacramento, CA", "Reno, NV"),
    _c("CA-152", KIND_ROAD,
       "San Jose, CA", "Fresno, CA"),
    _c("CA-58", KIND_ROAD,
       "Bakersfield, CA", "Barstow, CA"),
    _c("CA-14", KIND_ROAD,
       "Los Angeles, CA", "Bakersfield, CA"),
    _c("CA-1", KIND_ROAD,
       "Santa Cruz, CA", "Salinas, CA"),
    _c("CA-17", KIND_ROAD,
       "San Jose, CA", "Santa Cruz, CA"),
    _c("US-97", KIND_ROAD,
       "Bend, OR", "Yakima, WA", "Ellensburg, WA"),
    _c("US-97-South", KIND_ROAD,
       "Medford, OR", "Bend, OR"),
    _c("OR-22", KIND_ROAD,
       "Salem, OR", "Bend, OR"),
    _c("I-82", KIND_ROAD,
       "Ellensburg, WA", "Yakima, WA", "Kennewick, WA", "Pendleton, OR"),
    _c("US-395", KIND_ROAD,
       "Kennewick, WA", "Ritzville, WA", "Spokane, WA"),
    _c("I-5-North", KIND_ROAD,
       "Seattle, WA", "Bellingham, WA"),
    _c("US-2-West", KIND_ROAD,
       "Spokane, WA", "Great Falls, MT"),
    _c("MT-200", KIND_ROAD,
       "Great Falls, MT", "Billings, MT"),
    _c("I-90-ID", KIND_ROAD,
       "Coeur d'Alene, ID", "Missoula, MT"),
    _c("US-93-MT", KIND_ROAD,
       "Missoula, MT", "Helena, MT"),
    _c("I-15-MT", KIND_ROAD,
       "Helena, MT", "Great Falls, MT"),
    _c("US-287-MT", KIND_ROAD,
       "Bozeman, MT", "Helena, MT"),
]

# ---------------------------------------------------------------------------
# Principal rail main lines (railway layer, Figure 3)
# ---------------------------------------------------------------------------
_RAILS: List[Corridor] = [
    _c("BNSF-Transcon", KIND_RAIL,
       "Los Angeles, CA", "Barstow, CA", "Needles, CA", "Kingman, AZ",
       "Flagstaff, AZ", "Gallup, NM", "Albuquerque, NM", "Amarillo, TX",
       "Wichita, KS", "Kansas City, MO", "Chicago, IL"),
    _c("UP-Overland", KIND_RAIL,
       "Oakland, CA", "Sacramento, CA", "Truckee, CA", "Reno, NV",
       "Winnemucca, NV", "Elko, NV", "Wells, NV", "Ogden, UT",
       "Evanston, WY", "Rock Springs, WY", "Rawlins, WY", "Laramie, WY",
       "Cheyenne, WY", "North Platte, NE", "Grand Island, NE",
       "Omaha, NE", "Cedar Rapids, IA", "Davenport, IA", "Chicago, IL"),
    _c("UP-Sunset", KIND_RAIL,
       "Los Angeles, CA", "Palm Springs, CA", "Yuma, AZ", "Tucson, AZ",
       "Las Cruces, NM", "El Paso, TX", "San Antonio, TX", "Houston, TX",
       "Beaumont, TX", "Lafayette, LA", "New Orleans, LA"),
    _c("BNSF-Northern", KIND_RAIL,
       "Seattle, WA", "Yakima, WA", "Kennewick, WA", "Spokane, WA",
       "Missoula, MT", "Helena, MT", "Bozeman, MT", "Billings, MT",
       "Miles City, MT", "Bismarck, ND", "Fargo, ND", "St. Cloud, MN",
       "Minneapolis, MN"),
    _c("CSX-Atlantic", KIND_RAIL,
       "New York, NY", "Philadelphia, PA", "Baltimore, MD",
       "Washington, DC", "Richmond, VA", "Savannah, GA",
       "Jacksonville, FL", "Orlando, FL", "West Palm Beach, FL",
       "Miami, FL"),
    _c("NS-Crescent", KIND_RAIL,
       "Washington, DC", "Charlottesville, VA", "Lynchburg, VA",
       "Greensboro, NC", "Charlotte, NC", "Atlanta, GA",
       "Birmingham, AL", "Meridian, MS", "Laurel, MS",
       "Hattiesburg, MS", "New Orleans, LA"),
    _c("NYC-WaterLevel", KIND_RAIL,
       "New York, NY", "Albany, NY", "Utica, NY", "Syracuse, NY",
       "Rochester, NY", "Buffalo, NY", "Erie, PA", "Cleveland, OH",
       "Toledo, OH", "Chicago, IL"),
    _c("PRR-Mainline", KIND_RAIL,
       "Philadelphia, PA", "Harrisburg, PA", "Pittsburgh, PA",
       "Fort Wayne, IN", "Chicago, IL"),
    _c("DRGW-Central", KIND_RAIL,
       "Denver, CO", "Glenwood Springs, CO", "Grand Junction, CO",
       "Green River, UT", "Provo, UT", "Salt Lake City, UT"),
    _c("WP-Feather", KIND_RAIL,
       "Oakland, CA", "Sacramento, CA", "Chico, CA", "Winnemucca, NV",
       "Elko, NV", "Wendover, UT", "Salt Lake City, UT"),
    _c("KCS-Mainline", KIND_RAIL,
       "Kansas City, MO", "Joplin, MO", "Texarkana, TX",
       "Shreveport, LA", "Baton Rouge, LA", "New Orleans, LA"),
    _c("UP-Cascade", KIND_RAIL,
       "Seattle, WA", "Tacoma, WA", "Portland, OR", "Salem, OR",
       "Eugene, OR", "Chico, CA", "Sacramento, CA"),
    _c("CN-IllinoisCentral", KIND_RAIL,
       "Chicago, IL", "Champaign, IL", "Memphis, TN", "Jackson, MS",
       "New Orleans, LA"),
    _c("UP-GoldenState", KIND_RAIL,
       "St. Louis, MO", "Little Rock, AR", "Texarkana, TX", "Dallas, TX",
       "El Paso, TX"),
    _c("BNSF-Midcon", KIND_RAIL,
       "Fort Worth, TX", "Wichita Falls, TX", "Amarillo, TX",
       "Tucumcari, NM", "Albuquerque, NM"),
    _c("UP-KP", KIND_RAIL,
       "Kansas City, MO", "Topeka, KS", "Salina, KS", "Hays, KS",
       "Limon, CO", "Denver, CO"),
    _c("BNSF-Brush", KIND_RAIL,
       "Denver, CO", "North Platte, NE", "Lincoln, NE", "Omaha, NE"),
    _c("UP-LA-SLC", KIND_RAIL,
       "Los Angeles, CA", "San Bernardino, CA", "Barstow, CA",
       "Las Vegas, NV", "St. George, UT", "Provo, UT",
       "Salt Lake City, UT"),
    _c("MRL-Montana", KIND_RAIL,
       "Spokane, WA", "Missoula, MT", "Butte, MT", "Bozeman, MT",
       "Billings, MT"),
    _c("UP-OR-Line", KIND_RAIL,
       "Portland, OR", "Pendleton, OR", "Ontario, OR", "Boise, ID",
       "Pocatello, ID", "Ogden, UT"),
    _c("NS-Southern", KIND_RAIL,
       "Atlanta, GA", "Chattanooga, TN", "Nashville, TN",
       "Louisville, KY", "Cincinnati, OH", "Dayton, OH", "Toledo, OH",
       "Detroit, MI"),
    _c("CSX-Southeastern", KIND_RAIL,
       "Nashville, TN", "Memphis, TN", "Jackson, TN"),
    _c("FEC-Florida", KIND_RAIL,
       "Jacksonville, FL", "Daytona Beach, FL", "West Palm Beach, FL",
       "Boca Raton, FL", "Fort Lauderdale, FL", "Miami, FL"),
    _c("CSX-Florida", KIND_RAIL,
       "Jacksonville, FL", "Gainesville, FL", "Ocala, FL", "Tampa, FL"),
    _c("NS-Midwest", KIND_RAIL,
       "Chicago, IL", "Gary, IN", "South Bend, IN", "Fort Wayne, IN",
       "Columbus, OH", "Pittsburgh, PA", "Harrisburg, PA",
       "Allentown, PA", "New York, NY"),
    _c("Amtrak-Michigan", KIND_RAIL,
       "Chicago, IL", "Kalamazoo, MI", "Battle Creek, MI",
       "Lansing, MI", "Flint, MI"),
    _c("CN-Michigan", KIND_RAIL,
       "Battle Creek, MI", "Lansing, MI", "Flint, MI"),
    _c("UP-StL-Chi", KIND_RAIL,
       "St. Louis, MO", "Springfield, IL", "Bloomington, IL",
       "Chicago, IL"),
    _c("BNSF-TwinCities", KIND_RAIL,
       "Chicago, IL", "Milwaukee, WI", "La Crosse, WI",
       "Minneapolis, MN"),
    _c("UP-Spine", KIND_RAIL,
       "Minneapolis, MN", "Des Moines, IA", "Kansas City, MO",
       "Tulsa, OK", "Dallas, TX"),
    _c("UP-Austin", KIND_RAIL,
       "Dallas, TX", "Waco, TX", "Austin, TX", "San Antonio, TX",
       "Laredo, TX"),
    _c("UP-Houston", KIND_RAIL,
       "Dallas, TX", "Houston, TX", "Galveston, TX"),
]

# ---------------------------------------------------------------------------
# Long-haul pipelines (the paper's Figure 5 / "other rights-of-way" [56])
# ---------------------------------------------------------------------------
_PIPELINES: List[Corridor] = [
    # CalNev refined-products pipeline: explains the Anaheim–Las Vegas link.
    _c("CalNev-Products", KIND_PIPELINE,
       "Anaheim, CA", "San Bernardino, CA", "Barstow, CA",
       "Las Vegas, NV"),
    # Dixie NGL pipeline: explains the Houston–Atlanta link and the
    # Laurel, MS right-of-way of Figure 5.
    _c("Dixie-NGL", KIND_PIPELINE,
       "Houston, TX", "Baton Rouge, LA", "Hattiesburg, MS", "Laurel, MS",
       "Meridian, MS", "Birmingham, AL", "Atlanta, GA"),
    # Rockies Express (REX) natural-gas pipeline.
    _c("REX-Gas", KIND_PIPELINE,
       "Cheyenne, WY", "North Platte, NE", "Lincoln, NE",
       "St. Louis, MO", "Indianapolis, IN", "Dayton, OH"),
    # Colonial products pipeline along the southeast seaboard.
    _c("Colonial-Products", KIND_PIPELINE,
       "Houston, TX", "Lake Charles, LA", "Baton Rouge, LA",
       "Birmingham, AL", "Atlanta, GA", "Charlotte, NC",
       "Greensboro, NC", "Richmond, VA", "Washington, DC"),
    # Transcontinental gas pipeline spur into west Texas.
    _c("Permian-Gas", KIND_PIPELINE,
       "El Paso, TX", "Midland, TX", "San Angelo, TX", "Houston, TX"),
]

#: All corridors in one tuple.
CORRIDORS: Tuple[Corridor, ...] = tuple(_ROADS + _RAILS + _PIPELINES)

# Validate every waypoint against the city dataset at import time.
for _corridor in CORRIDORS:
    for _key in _corridor.waypoints:
        city_by_name(_key)

_names = [c.name for c in CORRIDORS]
if len(set(_names)) != len(_names):
    raise RuntimeError("duplicate corridor names")


def corridors_of_kind(kind: str) -> List[Corridor]:
    """All primary corridors of one infrastructure *kind*."""
    if kind not in KINDS:
        raise ValueError(f"unknown corridor kind: {kind}")
    return [c for c in CORRIDORS if c.kind == kind]


def secondary_road_corridors(
    max_km: float = 230.0,
    probability: float = 0.5,
) -> List[Corridor]:
    """The dense US-route / state-highway grid, generated deterministically.

    The NationalAtlas roadway layer (Figure 2) is far denser than the
    interstate system; regional fiber spurs routinely follow US routes
    and state highways.  For every city pair closer than *max_km* with no
    primary corridor between them, a secondary road corridor exists with
    the given *probability*, decided by a stable hash of the pair (so the
    grid is identical across runs and independent of call order).
    """
    import hashlib

    from repro.data.cities import CITIES

    primary_edges = set()
    for corridor in CORRIDORS:
        for a, b in corridor.edges():
            primary_edges.add(frozenset((a, b)))

    def pair_unit(a_key: str, b_key: str) -> float:
        token = f"secondary|{min(a_key, b_key)}|{max(a_key, b_key)}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    result: List[Corridor] = []
    cities = sorted(CITIES, key=lambda c: c.key)
    for i, a in enumerate(cities):
        for b in cities[i + 1:]:
            if frozenset((a.key, b.key)) in primary_edges:
                continue
            if a.distance_km(b) > max_km:
                continue
            if pair_unit(a.key, b.key) >= probability:
                continue
            name = f"SR:{a.code}-{b.code}"
            result.append(
                Corridor(
                    name=name,
                    kind=KIND_ROAD,
                    waypoints=(a.key, b.key),
                    grade=GRADE_SECONDARY,
                )
            )
    return result
