"""The NSFNET T3 backbone, circa 1995 (§6.1's historical comparison).

"The links reflected in our map can also be considered an Internet
invariant, and it is instructive to compare the basic structure of our
map to the NSFNET backbone circa 1995."  This is that backbone: the
core nodes (mapped to their nearest cities in our dataset) and the T3
links between them, so the invariance claim — yesterday's backbone
routes are today's most-shared corridors — can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.data.cities import city_by_name

#: NSFNET T3 core nodes (1992-1995 architecture), as dataset city keys.
NSFNET_NODES: Tuple[str, ...] = (
    "Seattle, WA",
    "Palo Alto, CA",       # NSS at Stanford / FIX-West
    "San Diego, CA",       # SDSC
    "Salt Lake City, UT",
    "Boulder, CO",         # NCAR
    "Lincoln, NE",         # MIDnet
    "Houston, TX",         # SESQUINET
    "Urbana, IL",          # NCSA
    "Chicago, IL",
    "Ann Arbor, MI",       # MERIT
    "St. Louis, MO",
    "Pittsburgh, PA",      # PSC
    "New York, NY",        # Cornell NSS, mapped to the NYC metro
    "Washington, DC",      # College Park / SURAnet
    "Atlanta, GA",
)

#: T3 backbone links (city-key pairs).
NSFNET_LINKS: Tuple[Tuple[str, str], ...] = (
    ("Seattle, WA", "Palo Alto, CA"),
    ("Seattle, WA", "Salt Lake City, UT"),
    ("Palo Alto, CA", "San Diego, CA"),
    ("Palo Alto, CA", "Salt Lake City, UT"),
    ("San Diego, CA", "Houston, TX"),
    ("Salt Lake City, UT", "Boulder, CO"),
    ("Boulder, CO", "Lincoln, NE"),
    ("Lincoln, NE", "Urbana, IL"),
    ("Urbana, IL", "Chicago, IL"),
    ("Chicago, IL", "Ann Arbor, MI"),
    ("Ann Arbor, MI", "New York, NY"),
    ("Houston, TX", "St. Louis, MO"),
    ("Houston, TX", "Atlanta, GA"),
    ("St. Louis, MO", "Urbana, IL"),
    ("Atlanta, GA", "Washington, DC"),
    ("Washington, DC", "New York, NY"),
    ("New York, NY", "Chicago, IL"),
    ("Pittsburgh, PA", "Chicago, IL"),
    ("Pittsburgh, PA", "New York, NY"),
    ("Pittsburgh, PA", "Washington, DC"),
)


@dataclass(frozen=True)
class NsfnetBackbone:
    """The historical backbone as a simple structure."""

    nodes: Tuple[str, ...]
    links: Tuple[Tuple[str, str], ...]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def total_los_km(self) -> float:
        total = 0.0
        for a, b in self.links:
            total += city_by_name(a).distance_km(city_by_name(b))
        return total


def nsfnet_backbone() -> NsfnetBackbone:
    """The validated NSFNET 1995 backbone."""
    for key in NSFNET_NODES:
        city_by_name(key)
    for a, b in NSFNET_LINKS:
        city_by_name(a)
        city_by_name(b)
    return NsfnetBackbone(nodes=NSFNET_NODES, links=NSFNET_LINKS)
