"""The stage-graph execution engine.

A :class:`StageGraph` owns a table of :class:`~repro.engine.StageDef`
declarations and applies every cross-cutting execution policy in one
place:

* **Resolution** — dependencies materialize on demand, in dependency
  order, each stage at most once per graph (memoized).
* **Artifact cache** — persisted stages fetch before building and store
  after, keyed by the declared graph parameters plus the package's code
  version.  A cache *write* failure (disk full, permissions, injected
  fault) never fails the run: the built value is returned anyway and
  the stage is marked degraded in the trace.
* **Tracing** — every stage build runs inside one
  ``<prefix>.<stage>`` span with cache hit/miss attribution, exactly
  the shape run manifests expect.
* **Laziness under a warm cache** — a persisted stage that hits the
  cache never materializes its dependencies, so e.g. a warm overlay is
  served without rebuilding the campaign beneath it.
* **Concurrency** — :meth:`materialize_many` can fan independent
  stages out over a thread pool where the dependency structure allows.

Fault injection reaches the engine through the same seams production
failures do: the artifact cache's store path consults the process
fault injector (:mod:`repro.obs.faults`), and the degraded-store
recovery above is what turns an injected write failure into a traced
non-event.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.engine.stage import (
    StageContext,
    StageDef,
    StageGraphError,
    validate_stages,
)
from repro.obs.tracer import get_tracer


class UnknownStageError(KeyError, StageGraphError):
    """Lookup of a stage name the graph does not declare."""


class StageGraph:
    """Declarative dataflow: declared stages in, materialized values out."""

    def __init__(
        self,
        stages: Iterable[StageDef],
        *,
        base_seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
        cache: Any = None,
        span_prefix: str = "stage",
    ):
        self._stages: Dict[str, StageDef] = {}
        for stage in stages:
            self._stages[stage.name] = stage
        problems = validate_stages(tuple(self._stages.values()))
        if problems:
            raise StageGraphError("; ".join(problems))
        self.base_seed = base_seed
        self.params: Dict[str, Any] = dict(params or {})
        self.cache = cache
        self.span_prefix = span_prefix
        self._values: Dict[str, Any] = {}
        self._locks: Dict[str, threading.Lock] = {
            name: threading.Lock() for name in self._stages
        }

    # -- structure -----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def stage(self, name: str) -> StageDef:
        try:
            return self._stages[name]
        except KeyError:
            raise UnknownStageError(name) from None

    def names(self) -> Tuple[str, ...]:
        """Every declared stage, in declaration order."""
        return tuple(self._stages)

    def order(
        self, names: Optional[Iterable[str]] = None
    ) -> Tuple[str, ...]:
        """Topological order over *names* (default: the whole graph)."""
        targets = self.closure(self.names() if names is None else names)
        placed: List[str] = []
        placed_set: set = set()
        remaining = list(targets)
        while remaining:
            progressed = False
            for name in list(remaining):
                deps = self.stage(name).deps
                if all(d in placed_set or d not in targets for d in deps):
                    placed.append(name)
                    placed_set.add(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:  # pragma: no cover - init validates acyclicity
                raise StageGraphError(f"cycle among {remaining}")
        return tuple(placed)

    def closure(self, names: Iterable[str]) -> Tuple[str, ...]:
        """*names* plus every transitive dependency, declaration-ordered."""
        wanted: set = set()
        pending = list(names)
        while pending:
            name = pending.pop()
            if name in wanted:
                continue
            wanted.add(name)
            pending.extend(self.stage(name).deps)
        return tuple(n for n in self._stages if n in wanted)

    def dependents(self, name: str) -> Tuple[str, ...]:
        """Every stage downstream of *name* (transitively)."""
        self.stage(name)
        downstream: set = {name}
        changed = True
        while changed:
            changed = False
            for stage in self._stages.values():
                if stage.name in downstream:
                    continue
                if any(dep in downstream for dep in stage.deps):
                    downstream.add(stage.name)
                    changed = True
        downstream.discard(name)
        return tuple(n for n in self._stages if n in downstream)

    def derived_seed(self, name: str) -> Optional[int]:
        """``base_seed + seed_offset``, or ``None`` for seedless stages."""
        offset = self.stage(name).seed_offset
        return None if offset is None else self.base_seed + offset

    def cache_key(self, name: str) -> Optional[Dict[str, Any]]:
        """The cache-key parameters of a persisted stage, else ``None``."""
        stage = self.stage(name)
        if not stage.persist:
            return None
        return {p: self.params[p] for p in stage.cache_params}

    # -- execution -----------------------------------------------------
    def materialize(self, name: str) -> Any:
        """The stage's value, building (or cache-fetching) on first use."""
        try:
            return self._values[name]
        except KeyError:
            pass
        stage = self.stage(name)
        with self._locks[name]:
            if name not in self._values:
                self._values[name] = self._execute(stage)
        return self._values[name]

    def materialize_many(
        self, names: Iterable[str], max_workers: int = 0
    ) -> None:
        """Materialize several stages, optionally fanning out over threads.

        With ``max_workers <= 1`` stages materialize serially and
        lazily — a warm persisted stage never touches its dependencies.
        With more workers, the full dependency closure is scheduled
        over a thread pool, running independent stages concurrently
        (per-stage locks keep each build single-flight).  Under an
        enabled tracer the fan-out degrades to serial: the tracer's
        span stack is per-process, and an interleaved tree would be
        worse than a slower exact one.
        """
        names = list(names)
        if max_workers <= 1 or get_tracer().enabled:
            for name in names:
                self.materialize(name)
            return
        from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

        targets = [
            n for n in self.order(names) if n not in self._values
        ]
        target_set = set(targets)
        waiting = {
            n: {d for d in self.stage(n).deps if d in target_set}
            for n in targets
        }
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            while waiting or futures:
                ready = [n for n, deps in waiting.items() if not deps]
                for name in ready:
                    del waiting[name]
                    futures[pool.submit(self.materialize, name)] = name
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    finished = futures.pop(future)
                    future.result()  # propagate build errors
                    for deps in waiting.values():
                        deps.discard(finished)

    def peek(self, name: str) -> Any:
        """The stage's value if already materialized, else ``None``."""
        self.stage(name)
        return self._values.get(name)

    def materialized(self) -> Tuple[str, ...]:
        """Names of the stages materialized so far."""
        return tuple(n for n in self._stages if n in self._values)

    def _execute(self, stage: StageDef) -> Any:
        tracer = get_tracer()
        build: Callable[[], Any] = lambda: stage.build(
            StageContext(graph=self, stage=stage)
        )
        with tracer.span(f"{self.span_prefix}.{stage.name}"):
            if not stage.persist:
                return build()
            if self.cache is None:
                value = build()
                tracer.annotate(cache="off")
                return value
            key = self.cache_key(stage.name)
            hit, value = self.cache.fetch(stage.name, key)
            if hit:
                tracer.annotate(cache="hit")
                return value
            single_flight = getattr(self.cache, "single_flight", None)
            if single_flight is None:
                return self._build_and_store(stage, key, build, tracer)
            # Single-flight on the stage key: concurrent processes
            # sharing this cache root (sweep cells, parallel CLI runs)
            # build identical artifacts once — the first holder builds
            # and stores, waiters re-fetch the stored entry.
            with single_flight(stage.name, key) as contended:
                if contended:
                    hit, value = self.cache.fetch(stage.name, key)
                    if hit:
                        tracer.annotate(cache="hit", coalesced=True)
                        return value
                return self._build_and_store(stage, key, build, tracer)

    def _build_and_store(
        self,
        stage: StageDef,
        key: Optional[Dict[str, Any]],
        build: Callable[[], Any],
        tracer: Any,
    ) -> Any:
        value = build()
        try:
            self.cache.store(stage.name, key, value)
        except OSError as error:
            tracer.event(
                "cache.degraded", stage=stage.name,
                error=type(error).__name__,
            )
            tracer.annotate(cache="miss", store="failed")
        else:
            tracer.annotate(cache="miss")
        return value

    # -- cache management ----------------------------------------------
    def invalidate(self, name: str, dependents: bool = True) -> int:
        """Targeted cache eviction: drop *name*'s persisted artifacts.

        Downstream persisted stages are evicted too by default — their
        cached values embed the invalidated stage's output, so keeping
        them would serve stale artifacts.  In-memory memoized values
        for the affected stages are dropped as well.  Returns how many
        cache files were removed.
        """
        affected = [name]
        if dependents:
            affected.extend(self.dependents(name))
        removed = 0
        for stage_name in affected:
            self._values.pop(stage_name, None)
            if self.cache is not None and self.stage(stage_name).persist:
                removed += self.cache.evict_stage(stage_name)
        return removed

    # -- introspection -------------------------------------------------
    def explain(self, name: str) -> Dict[str, Any]:
        """Everything ``graph explain <stage>`` shows, as plain data."""
        stage = self.stage(name)
        cached = None
        if stage.persist and self.cache is not None:
            cached = self.cache.contains(name, self.cache_key(name))
        return {
            "stage": name,
            "doc": stage.doc,
            "deps": list(stage.deps),
            "closure": [n for n in self.closure([name]) if n != name],
            "dependents": list(self.dependents(name)),
            "seed_offset": stage.seed_offset,
            "derived_seed": self.derived_seed(name),
            "policy": "persisted" if stage.persist else "transient",
            "cache_key": self.cache_key(name),
            "cache_entry": cached,
            "materialized": name in self._values,
        }

    def describe(self) -> List[Dict[str, Any]]:
        """One :meth:`explain`-style row per stage, in topological order."""
        return [self.explain(name) for name in self.order()]

    def validate(self) -> List[str]:
        """Structural problems (always empty for a constructed graph)."""
        return validate_stages(tuple(self._stages.values()))
