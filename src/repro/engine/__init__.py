"""Declarative stage-graph execution engine.

The paper's artifacts form a fixed dataflow — §2 construction, §4.3
campaign and overlay, §4 risk matrix — and every layer above it
(scenario facade, experiment runner, CLI) used to re-implement the same
execution conventions by hand.  This package makes the dataflow a
first-class object: stages are declared as :class:`StageDef` nodes and
a :class:`StageGraph` owns resolution order, memoization, artifact
caching with degraded-store recovery, tracer spans, derived-seed rules,
and thread-pool fan-out — once, for every stage.

    >>> from repro.engine import StageDef, StageGraph
    >>> table = (
    ...     StageDef("a", lambda ctx: 1, seed_offset=0),
    ...     StageDef("b", lambda ctx: ctx.dep("a") + 1, deps=("a",)),
    ... )
    >>> StageGraph(table, base_seed=7).materialize("b")
    2
"""

from repro.engine.graph import StageGraph, UnknownStageError
from repro.engine.stage import (
    StageContext,
    StageDef,
    StageGraphError,
    UndeclaredDependencyError,
    validate_stages,
)

__all__ = [
    "StageContext",
    "StageDef",
    "StageGraph",
    "StageGraphError",
    "UndeclaredDependencyError",
    "UnknownStageError",
    "validate_stages",
]
