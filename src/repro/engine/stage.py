"""Stage declarations: the nodes of a :class:`~repro.engine.StageGraph`.

A :class:`StageDef` is a *declaration*, not an execution: it names one
artifact, the stages it consumes, how its RNG seed derives from the
graph's base seed, and whether the built value persists in the artifact
cache.  All the cross-cutting machinery — dependency resolution,
memoization, cache fetch/store with degraded-store handling, tracer
spans, fault hooks — lives in the graph, applied uniformly to every
stage.  A stage's build function only ever sees a
:class:`StageContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple


class StageGraphError(Exception):
    """A structural problem with a stage graph (cycle, unknown dep, ...)."""


class UndeclaredDependencyError(StageGraphError):
    """A build function asked for a stage it never declared in ``deps``."""


@dataclass(frozen=True)
class StageDef:
    """One declared stage of a dataflow graph.

    ``build`` receives a :class:`StageContext` and returns the stage's
    value.  ``deps`` names the stages the build may consume (enforced:
    ``ctx.dep`` rejects anything undeclared).  ``seed_offset`` declares
    the stage's derived-seed rule — ``base_seed + seed_offset`` — or
    ``None`` for stages with no randomness of their own.  ``persist``
    marks the stage for the artifact cache, keyed by the graph
    parameters named in ``cache_params``.
    """

    name: str
    build: Callable[["StageContext"], Any]
    deps: Tuple[str, ...] = ()
    seed_offset: Optional[int] = None
    persist: bool = False
    cache_params: Tuple[str, ...] = ()
    #: Optional human-readable one-liner (surfaced by ``graph show``).
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise StageGraphError("a stage needs a non-empty name")
        if self.name in self.deps:
            raise StageGraphError(f"stage {self.name!r} depends on itself")
        if self.cache_params and not self.persist:
            raise StageGraphError(
                f"stage {self.name!r} declares cache_params but is not "
                f"persisted"
            )


@dataclass(frozen=True)
class StageContext:
    """What a build function is allowed to see.

    ``dep(name)`` returns a declared dependency's value (materializing
    it on demand); ``seed`` is the stage's derived seed; ``params`` are
    the graph-wide parameters (campaign size, worker count, ...).
    """

    graph: Any = field(repr=False)
    stage: StageDef

    def dep(self, name: str) -> Any:
        if name not in self.stage.deps:
            raise UndeclaredDependencyError(
                f"stage {self.stage.name!r} asked for {name!r} but declares "
                f"deps={self.stage.deps!r}"
            )
        return self.graph.materialize(name)

    @property
    def seed(self) -> int:
        if self.stage.seed_offset is None:
            raise StageGraphError(
                f"stage {self.stage.name!r} declares no seed_offset"
            )
        return self.graph.base_seed + self.stage.seed_offset

    @property
    def params(self) -> Dict[str, Any]:
        return self.graph.params


def validate_stages(stages: Tuple[StageDef, ...]) -> list:
    """Structural problems with a stage table, as human-readable strings.

    Checks: unique names, every declared dependency resolvable, and
    acyclicity.  An empty list means the table forms a well-defined DAG.
    ``StageGraph.__init__`` raises on any of these; the CLI's
    ``graph validate`` surfaces them as a report instead.
    """
    problems = []
    names = [s.name for s in stages]
    seen = set()
    for name in names:
        if name in seen:
            problems.append(f"duplicate stage name {name!r}")
        seen.add(name)
    by_name = {s.name: s for s in stages}
    for stage in stages:
        for dep in stage.deps:
            if dep not in by_name:
                problems.append(
                    f"stage {stage.name!r} depends on unknown stage {dep!r}"
                )
    # Kahn's algorithm over the resolvable subset: leftovers are cyclic.
    indegree = {
        s.name: sum(1 for d in s.deps if d in by_name) for s in stages
    }
    ready = sorted(n for n, k in indegree.items() if k == 0)
    done = 0
    while ready:
        current = ready.pop()
        done += 1
        for stage in stages:
            if current in stage.deps:
                indegree[stage.name] -= 1
                if indegree[stage.name] == 0:
                    ready.append(stage.name)
    if done != len(set(names)):
        cyclic = sorted(n for n, k in indegree.items() if k > 0)
        problems.append(f"dependency cycle involving {', '.join(cyclic)}")
    return problems
