"""Array-based shortest-path core for router-level topologies.

The §4.3 campaign spends essentially all of its time answering
shortest-path queries.  The original engine runs one pure-Python
NetworkX Dijkstra per destination over a dict-of-dicts graph; this
module compiles the graph **once** into int-indexed CSR arrays and
answers the same queries with :func:`scipy.sparse.csgraph.dijkstra` —
batched over every destination a campaign touches — after which each
path is just a predecessor-array walk.

The NetworkX implementation stays available as the reference
(`ProbeEngine(use_array_core=False)`) and the test suite cross-checks
the two on random (src, dst) pairs.  When scipy is absent,
:func:`build_routing_core` returns ``None`` and callers silently fall
back to the reference path.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

try:  # scipy is an optional accelerator, never a hard dependency.
    import numpy as np
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    np = None
    HAVE_SCIPY = False

#: scipy's sentinel for "no predecessor" in predecessor matrices.
_NO_PREDECESSOR = -9999


class RoutingCore:
    """Shortest paths over a compiled, int-indexed copy of a graph.

    Nodes are sorted once into a dense index; edges become a symmetric
    CSR matrix of edge weights.  Per-destination predecessor rows are
    computed on demand (or batched via :meth:`prepare`) and cached, so
    a campaign pays one C Dijkstra per distinct destination and an
    array walk per trace.
    """

    def __init__(self, graph, weight: str = "ms"):
        if not HAVE_SCIPY:  # pragma: no cover - guarded by build_routing_core
            raise RuntimeError("scipy is required for the array routing core")
        nodes = sorted(graph.nodes)
        index = {node: i for i, node in enumerate(nodes)}
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for u, v, w in graph.edges(data=weight, default=0.0):
            ui, vi = index[u], index[v]
            rows.append(ui)
            cols.append(vi)
            data.append(float(w))
            rows.append(vi)
            cols.append(ui)
            data.append(float(w))
        self._nodes = nodes
        self._index = index
        self._matrix = csr_matrix(
            (data, (rows, cols)), shape=(len(nodes), len(nodes))
        )
        self._pred: Dict[int, "np.ndarray"] = {}
        self._dist: Dict[int, "np.ndarray"] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_prepared(self) -> int:
        """Destinations whose predecessor rows are already computed."""
        return len(self._pred)

    def __getstate__(self):
        # Predecessor/distance rows are cheap to recompute and can be
        # tens of MB; drop them so pickled topologies stay small.
        state = self.__dict__.copy()
        state["_pred"] = {}
        state["_dist"] = {}
        return state

    # ------------------------------------------------------------------
    def prepare(self, destinations: Iterable[Hashable]) -> int:
        """Batch-compute predecessor rows for every new destination.

        Returns the number of destinations actually computed.  Unknown
        nodes are ignored (queries against them return ``None``).
        """
        wanted = sorted(
            {
                i
                for i in (self._index.get(node) for node in destinations)
                if i is not None and i not in self._pred
            }
        )
        if not wanted:
            return 0
        dist, pred = _csgraph_dijkstra(
            self._matrix,
            directed=False,
            indices=wanted,
            return_predecessors=True,
        )
        for row, i in enumerate(wanted):
            self._pred[i] = pred[row]
            self._dist[i] = dist[row]
        return len(wanted)

    def _rows_for(self, dst_index: int) -> "np.ndarray":
        pred = self._pred.get(dst_index)
        if pred is None:
            dist, pred = _csgraph_dijkstra(
                self._matrix,
                directed=False,
                indices=dst_index,
                return_predecessors=True,
            )
            self._pred[dst_index] = pred
            self._dist[dst_index] = dist
        return self._pred[dst_index]

    # ------------------------------------------------------------------
    def path(self, src: Hashable, dst: Hashable) -> Optional[List[Hashable]]:
        """Shortest path from *src* to *dst*, or ``None`` if unreachable.

        Mirrors the NetworkX predecessor walk in the probe engine: the
        Dijkstra tree is rooted at the destination, so the walk follows
        predecessor pointers from the source until it reaches the root.
        """
        s = self._index.get(src)
        d = self._index.get(dst)
        if s is None or d is None:
            return None
        if s == d:
            return [src]
        pred = self._rows_for(d)
        if pred[s] == _NO_PREDECESSOR:
            return None
        nodes = self._nodes
        out = [nodes[s]]
        node = s
        for _ in range(len(nodes)):
            node = int(pred[node])
            out.append(nodes[node])
            if node == d:
                return out
        return None  # pragma: no cover - cycle guard, unreachable

    def distance(self, src: Hashable, dst: Hashable) -> float:
        """Shortest-path cost, ``inf`` when unreachable or unknown."""
        s = self._index.get(src)
        d = self._index.get(dst)
        if s is None or d is None:
            return float("inf")
        self._rows_for(d)
        return float(self._dist[d][s])


def build_routing_core(graph, weight: str = "ms") -> Optional[RoutingCore]:
    """A :class:`RoutingCore` over *graph*, or ``None`` without scipy."""
    if not HAVE_SCIPY:
        return None
    return RoutingCore(graph, weight=weight)
