"""Performance subsystem: array routing core + persistent artifact cache.

Two pieces back the production-scale goals:

* :mod:`repro.perf.routing` compiles a router-level graph once into
  int-indexed CSR arrays and answers every shortest-path query with
  scipy's C Dijkstra, batched across destinations;
* :mod:`repro.perf.cache` memoizes expensive scenario stages on disk,
  keyed by seed, configuration, and a hash of the package's own source,
  so repeated experiment and benchmark runs skip the full rebuild.
"""

from repro.perf.cache import (
    ArtifactCache,
    CacheEntry,
    code_version,
    default_cache_root,
    resolve_cache,
)
from repro.perf.routing import HAVE_SCIPY, RoutingCore, build_routing_core

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "HAVE_SCIPY",
    "RoutingCore",
    "build_routing_core",
    "code_version",
    "default_cache_root",
    "resolve_cache",
]
