"""The shared conduit-graph routing substrate for the §5 / resilience studies.

PR 1's :mod:`repro.perf.routing` arrayified the router-level topology for
the §4.3 campaign.  This module does the same for the *conduit* layer:
every §5 mitigation analysis (robustness suggestions, ROW augmentation,
propagation delay) and the resilience cut studies answer shortest-path
and connectivity questions over graphs derived from one
:class:`~repro.fibermap.elements.FiberMap` — and the original code
rebuilt a ``dict``-of-``dict`` NetworkX graph from scratch inside every
per-ISP / per-conduit / per-candidate loop.

The substrate compiles the fiber map **once** into int-indexed parallel
arrays (conduit endpoints, tenant counts, lengths, per-ISP tenancy
masks) and derives cheap *views* from them:

* a collapsed simple-graph view (parallel conduits reduced to one
  representative per city pair) with **named weight arrays** — risk
  (tenant count), ``length_km``, or any caller-supplied weight;
* **edge masking / overrides**: "exclude this conduit" or "add this
  private conduit" is an O(1) array edit on a view, not a graph rebuild;
* **batched multi-source Dijkstra**: one
  :func:`scipy.sparse.csgraph.dijkstra` call answers every source of a
  greedy step at once;
* an array-walk **K-shortest simple paths** (Yen over the CSR core)
  replacing ``networkx.shortest_simple_paths`` in the §5.3 study;
* **union-find connectivity** for cumulative cut sequences, so a
  targeted-attack step costs one reverse union sweep instead of a full
  per-step graph rebuild.

As with the routing core, scipy is an optional accelerator: without it
:func:`build_substrate` returns ``None`` and every consumer falls back
to its NetworkX reference implementation, which the parity suite
cross-checks against the substrate on randomized fiber maps.
"""

from __future__ import annotations

import weakref
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # scipy/numpy are optional accelerators, never hard dependencies.
    import numpy as np
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    np = None
    HAVE_SCIPY = False

#: scipy's sentinel for "no predecessor" in predecessor matrices.
_NO_PREDECESSOR = -9999


# ----------------------------------------------------------------------
# Union-find: incremental connectivity for cut sequences
# ----------------------------------------------------------------------
class UnionFind:
    """Classic disjoint-set forest with path halving and union by size.

    Edges can only be *added*; cumulative cut sequences (which only
    remove conduits) are therefore processed in reverse, adding each
    step's severed conduits back while answering that step's
    connectivity queries (offline decremental connectivity).

    Pure python on ints — no scipy required — so the montecarlo fast
    path can use it even when the CSR machinery is unavailable.
    """

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, node: int) -> int:
        parent = self._parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


# ----------------------------------------------------------------------
# Graph views: one collapsed simple graph as parallel arrays
# ----------------------------------------------------------------------
class GraphView:
    """A compiled simple undirected graph over a shared node index.

    Nodes are the substrate's global city index (so views never re-hash
    node keys); edges are parallel arrays ``eu``/``ev`` (int node
    indices) with named float weight arrays and optional integer payload
    arrays (e.g. the representative conduit row per edge).  "Node in
    graph" semantics follow NetworkX: a node is *present* when at least
    one edge touches it (:meth:`present`).
    """

    def __init__(
        self,
        nodes: List[str],
        index: Dict[str, int],
        eu,
        ev,
        weights: Dict[str, "np.ndarray"],
        payload: Optional[Dict[str, "np.ndarray"]] = None,
    ):
        if not HAVE_SCIPY:  # pragma: no cover - guarded by build_substrate
            raise RuntimeError("scipy is required for substrate graph views")
        self.nodes = nodes
        self.index = index
        self.eu = np.asarray(eu, dtype=np.int32)
        self.ev = np.asarray(ev, dtype=np.int32)
        self.weights = {k: np.asarray(v, dtype=float) for k, v in weights.items()}
        self.payload = {
            k: np.asarray(v) for k, v in (payload or {}).items()
        }
        self._edge_of: Dict[Tuple[int, int], int] = {
            (int(u), int(v)): i
            for i, (u, v) in enumerate(zip(self.eu, self.ev))
        }
        self._incident: Optional["np.ndarray"] = None
        self._matrices: Dict[str, "csr_matrix"] = {}
        self._structs: Dict[str, tuple] = {}

    # -- structure -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return int(self.eu.shape[0])

    def clone(self) -> "GraphView":
        """A mutable copy sharing the node index (arrays are copied)."""
        return GraphView(
            self.nodes,
            self.index,
            self.eu.copy(),
            self.ev.copy(),
            {k: v.copy() for k, v in self.weights.items()},
            {k: v.copy() for k, v in self.payload.items()},
        )

    def _incidence(self) -> "np.ndarray":
        if self._incident is None:
            incident = np.zeros(self.num_nodes, dtype=bool)
            incident[self.eu] = True
            incident[self.ev] = True
            self._incident = incident
        return self._incident

    def present(self, key: str) -> bool:
        """NetworkX node-membership: the key has at least one edge."""
        i = self.index.get(key)
        return i is not None and bool(self._incidence()[i])

    def edge_index(self, a_key: str, b_key: str) -> Optional[int]:
        ai, bi = self.index.get(a_key), self.index.get(b_key)
        if ai is None or bi is None:
            return None
        return self._edge_of.get((min(ai, bi), max(ai, bi)))

    def upsert_edge(
        self,
        a_key: str,
        b_key: str,
        order_weight: str,
        weights: Dict[str, float],
        payload: Optional[Dict[str, int]] = None,
    ) -> bool:
        """Add an edge, or replace an existing one if strictly better.

        Mirrors the "keep the smaller *order_weight*" collapse rule used
        everywhere in §5: a new parallel edge only displaces the current
        representative when its weight is strictly smaller.  Returns
        ``True`` when the view changed.  This is the "add this private
        conduit" array edit.
        """
        ai, bi = self.index[a_key], self.index[b_key]
        pair = (min(ai, bi), max(ai, bi))
        existing = self._edge_of.get(pair)
        if existing is not None:
            if not weights[order_weight] < float(
                self.weights[order_weight][existing]
            ):
                return False
            for name, value in weights.items():
                self.weights[name][existing] = value
            for name, value in (payload or {}).items():
                self.payload[name][existing] = value
        else:
            self.eu = np.append(self.eu, np.int32(pair[0]))
            self.ev = np.append(self.ev, np.int32(pair[1]))
            for name, value in weights.items():
                self.weights[name] = np.append(self.weights[name], float(value))
            for name, value in (payload or {}).items():
                self.payload[name] = np.append(self.payload[name], value)
            self._edge_of[pair] = self.num_edges - 1
            self._incident = None
        self._matrices.clear()
        self._structs.clear()
        return True

    # -- shortest paths ------------------------------------------------
    def matrix(
        self, weight: str, edge_mask: Optional["np.ndarray"] = None
    ) -> "csr_matrix":
        """The symmetric CSR adjacency for one weight view.

        Unmasked matrices are cached; masked ones (Yen spur calls) are
        rebuilt from the filtered arrays, which at conduit-graph scale
        is tens of microseconds.
        """
        if edge_mask is None and weight in self._matrices:
            return self._matrices[weight]
        eu, ev = self.eu, self.ev
        data = self.weights[weight]
        if edge_mask is not None:
            eu, ev, data = eu[edge_mask], ev[edge_mask], data[edge_mask]
        n = self.num_nodes
        mat = csr_matrix(
            (
                np.concatenate([data, data]),
                (np.concatenate([eu, ev]), np.concatenate([ev, eu])),
            ),
            shape=(n, n),
        )
        if edge_mask is None:
            self._matrices[weight] = mat
        return mat

    def dijkstra(
        self,
        source_keys: Sequence[str],
        weight: str,
        edge_mask: Optional["np.ndarray"] = None,
    ) -> Tuple["np.ndarray", "np.ndarray", Dict[str, int]]:
        """Batched multi-source Dijkstra: one scipy call for all sources.

        Returns ``(dist, pred, row_of)`` where ``dist``/``pred`` have one
        row per source and ``row_of`` maps source key to its row.  Keys
        missing from the node index are silently dropped (callers check
        :meth:`present` for NetworkX ``NodeNotFound`` semantics).
        """
        row_of: Dict[str, int] = {}
        indices: List[int] = []
        for key in source_keys:
            i = self.index.get(key)
            if i is None or key in row_of:
                continue
            row_of[key] = len(indices)
            indices.append(i)
        if not indices:
            empty = np.empty((0, self.num_nodes))
            return empty, empty.astype(np.int32), row_of
        dist, pred = _csgraph_dijkstra(
            self._solver_matrix(weight, edge_mask),
            directed=True,  # the matrix is symmetric; skips the transpose
            indices=indices,
            return_predecessors=True,
        )
        return np.atleast_2d(dist), np.atleast_2d(pred), row_of

    def _solver_matrix(self, weight: str, edge_mask: Optional["np.ndarray"]):
        """The symmetric CSR handed to scipy, with structure caching.

        The sparsity structure (indptr/indices plus the data-position of
        every edge) is computed once per weight; a masked call (Yen spur)
        only rewrites the data vector of a scratch copy, setting masked
        edges to ``inf`` — which Dijkstra never relaxes across, i.e. edge
        removal without a matrix rebuild.
        """
        struct = self._structs.get(weight)
        if struct is None:
            n = self.num_nodes
            edge_ids = np.arange(self.num_edges, dtype=float)
            mat = csr_matrix(
                (
                    np.concatenate([edge_ids, edge_ids]),
                    (
                        np.concatenate([self.eu, self.ev]),
                        np.concatenate([self.ev, self.eu]),
                    ),
                ),
                shape=(n, n),
            )
            edge_at_pos = mat.data.astype(np.int64)
            mat.data = self.weights[weight][edge_at_pos]
            struct = (mat, edge_at_pos, mat.copy())
            self._structs[weight] = struct
        mat, edge_at_pos, scratch = struct
        if edge_mask is None:
            return mat
        scratch.data = np.where(
            edge_mask[edge_at_pos], self.weights[weight][edge_at_pos], np.inf
        )
        return scratch

    def walk(
        self, pred_row: "np.ndarray", src_idx: int, dst_idx: int
    ) -> Optional[List[int]]:
        """Node-index path from the Dijkstra tree root to *dst_idx*.

        ``pred_row`` must be the predecessor row of the source; returns
        the path ``src -> dst`` or ``None`` when unreachable.
        """
        if src_idx == dst_idx:
            return [src_idx]
        if pred_row[dst_idx] == _NO_PREDECESSOR:
            return None
        out = [dst_idx]
        node = dst_idx
        for _ in range(self.num_nodes):
            node = int(pred_row[node])
            out.append(node)
            if node == src_idx:
                out.reverse()
                return out
        return None  # pragma: no cover - cycle guard, unreachable

    def path_length(self, path: Sequence[int], weight: str) -> float:
        """Sum of edge weights in path order (left-associated, matching
        ``networkx.path_weight`` / Dijkstra accumulation bit-for-bit)."""
        total = 0.0
        weights = self.weights[weight]
        edge_of = self._edge_of
        for u, v in zip(path, path[1:]):
            total += float(weights[edge_of[(min(u, v), max(u, v))]])
        return total

    def shortest_path(
        self,
        a_key: str,
        b_key: str,
        weight: str,
        edge_mask: Optional["np.ndarray"] = None,
    ) -> Optional[List[int]]:
        """Single-pair shortest path as node indices, ``None`` if none."""
        ai, bi = self.index.get(a_key), self.index.get(b_key)
        if ai is None or bi is None:
            return None
        _dist, pred, row_of = self.dijkstra([a_key], weight, edge_mask)
        return self.walk(pred[row_of[a_key]], ai, bi)

    # -- K shortest simple paths (Yen over the CSR core) ---------------
    def shortest_simple_paths(
        self, a_key: str, b_key: str, weight: str
    ) -> Iterator[Tuple[List[int], float]]:
        """Simple paths in non-decreasing length, like
        ``networkx.shortest_simple_paths``.

        Yields ``(node_index_path, length)`` with the length recomputed
        edge-by-edge in path order — exactly the float the §5.3 study
        derives from each path, so candidate ordering and downstream
        arithmetic agree bit-for-bit.
        """
        import heapq

        first = self.shortest_path(a_key, b_key, weight)
        if first is None:
            raise KeyError(f"no path between {a_key} and {b_key}")
        accepted: List[List[int]] = []
        candidates: List[Tuple[float, int, Tuple[int, ...]]] = []
        seen: set = set()
        counter = 0
        heapq.heappush(
            candidates,
            (self.path_length(first, weight), counter, tuple(first)),
        )
        seen.add(tuple(first))
        while candidates:
            length, _, path_t = heapq.heappop(candidates)
            path = list(path_t)
            accepted.append(path)
            yield path, length
            # Spur from every node of the just-accepted path.
            for i in range(len(path) - 1):
                root = path[: i + 1]
                masked = np.ones(self.num_edges, dtype=bool)
                # Edges used by accepted paths sharing this root prefix.
                for prev in accepted:
                    if prev[: i + 1] == root and len(prev) > i + 1:
                        idx = self._edge_of.get(
                            (
                                min(prev[i], prev[i + 1]),
                                max(prev[i], prev[i + 1]),
                            )
                        )
                        if idx is not None:
                            masked[idx] = False
                # Nodes of the root (except the spur node) are off-limits.
                if i > 0:
                    banned = np.zeros(self.num_nodes, dtype=bool)
                    banned[root[:-1]] = True
                    masked &= ~(banned[self.eu] | banned[self.ev])
                spur = self.shortest_path(
                    self.nodes[root[-1]], b_key, weight, edge_mask=masked
                )
                if spur is None:
                    continue
                candidate = tuple(root[:-1] + spur)
                if candidate in seen:
                    continue
                seen.add(candidate)
                counter += 1
                heapq.heappush(
                    candidates,
                    (self.path_length(candidate, weight), counter, candidate),
                )


# ----------------------------------------------------------------------
# The conduit substrate: the fiber map compiled once
# ----------------------------------------------------------------------
class ConduitSubstrate:
    """Int-indexed arrays over every conduit of one fiber map.

    Row *i* describes the i-th conduit in sorted-id order: endpoints
    (global city indices), tenant count, length.  Per-ISP tenancy is a
    row-index array per provider.  Collapsed :class:`GraphView`\\ s are
    derived (and cached) from these arrays; the collapse rule — keep the
    row with the strictly smallest order weight, first-in-id-order on
    ties — reproduces every NetworkX builder in §4/§5.
    """

    def __init__(self, fiber_map):
        if not HAVE_SCIPY:  # pragma: no cover - guarded by build_substrate
            raise RuntimeError("scipy is required for the routing substrate")
        self.nodes: List[str] = sorted(fiber_map.nodes)
        self.index: Dict[str, int] = {k: i for i, k in enumerate(self.nodes)}
        self.cids: List[str] = sorted(fiber_map.conduits)
        self.row_of: Dict[str, int] = {c: i for i, c in enumerate(self.cids)}
        cu, cv, tenants, length = [], [], [], []
        tenant_sets: List[FrozenSet[str]] = []
        for cid in self.cids:
            conduit = fiber_map.conduits[cid]
            a, b = conduit.edge
            cu.append(self.index[a])
            cv.append(self.index[b])
            tenants.append(conduit.num_tenants)
            length.append(conduit.length_km)
            tenant_sets.append(frozenset(conduit.tenants))
        self.cu = np.asarray(cu, dtype=np.int32)
        self.cv = np.asarray(cv, dtype=np.int32)
        self.tenants = np.asarray(tenants, dtype=np.int64)
        self.length_km = np.asarray(length, dtype=float)
        self.tenant_sets = tenant_sets
        self._isp_rows: Dict[str, "np.ndarray"] = {}
        for isp in sorted({t for s in tenant_sets for t in s}):
            self._isp_rows[isp] = np.asarray(
                [i for i, s in enumerate(tenant_sets) if isp in s],
                dtype=np.int64,
            )
        self._views: Dict[object, GraphView] = {}

    @property
    def num_conduits(self) -> int:
        return len(self.cids)

    def rows_for_isp(self, isp: str) -> "np.ndarray":
        """Conduit rows (sorted-id order) the provider occupies."""
        return self._isp_rows.get(isp, np.empty(0, dtype=np.int64))

    def footprint_cities(self, isp: str) -> set:
        """City keys touched by the provider's conduits."""
        rows = self.rows_for_isp(isp)
        return {self.nodes[i] for i in self.cu[rows]} | {
            self.nodes[i] for i in self.cv[rows]
        }

    # -- view construction ---------------------------------------------
    def build_view(
        self,
        rows: "np.ndarray",
        order: "np.ndarray",
        weights: Dict[str, "np.ndarray"],
        payload: Optional[Dict[str, "np.ndarray"]] = None,
        cache_key: Optional[object] = None,
    ) -> GraphView:
        """Collapse *rows* (aligned with *order*/weights/payload arrays)
        into a simple-graph view: per city pair, the row with the
        strictly smallest order weight wins, first in *rows* order on
        ties (NetworkX ``data is None or w < data[...]`` semantics)."""
        if cache_key is not None:
            cached = self._views.get(cache_key)
            if cached is not None:
                return cached
        best: Dict[Tuple[int, int], int] = {}
        cu, cv = self.cu, self.cv
        for pos in range(len(rows)):
            row = rows[pos]
            pair = (int(cu[row]), int(cv[row]))
            held = best.get(pair)
            if held is None or order[pos] < order[held]:
                best[pair] = pos
        keep = np.asarray(sorted(best.values()), dtype=np.int64)
        view = GraphView(
            self.nodes,
            self.index,
            cu[rows[keep]] if len(keep) else np.empty(0, dtype=np.int32),
            cv[rows[keep]] if len(keep) else np.empty(0, dtype=np.int32),
            {k: v[keep] for k, v in weights.items()},
            {
                "conduit": rows[keep],
                **{k: v[keep] for k, v in (payload or {}).items()},
            },
        )
        if cache_key is not None:
            self._views[cache_key] = view
        return view

    def conduit_view(self) -> GraphView:
        """The collapsed conduit graph: min-tenant representative per
        pair, with ``risk`` and ``length_km`` weight views.

        Reproduces both ``FiberMap.simple_conduit_graph()`` and the
        robustness ``_risk_graph`` (they share the same collapse).
        """
        rows = np.arange(self.num_conduits, dtype=np.int64)
        return self.build_view(
            rows,
            self.tenants,
            {
                "risk": self.tenants.astype(float),
                "length_km": self.length_km,
            },
            cache_key="conduit",
        )

    def conduit_view_excluding(self, conduit_id: str) -> GraphView:
        """The conduit view with one conduit barred from use.

        When the excluded conduit is not its pair's representative the
        base view already avoids it; otherwise the next-best parallel
        conduit takes over (or the pair edge disappears) — an O(parallel)
        patch of the cached base view, not a rebuild.
        """
        base = self.conduit_view()
        row = self.row_of[conduit_id]
        edge_pos = None
        for pos, rep in enumerate(base.payload["conduit"]):
            if int(rep) == row:
                edge_pos = pos
                break
        if edge_pos is None:
            return base
        pair = (int(self.cu[row]), int(self.cv[row]))
        replacement = None
        for other in range(self.num_conduits):
            if other == row:
                continue
            if (int(self.cu[other]), int(self.cv[other])) != pair:
                continue
            if replacement is None or self.tenants[other] < self.tenants[replacement]:
                replacement = other
        mask = np.ones(base.num_edges, dtype=bool)
        if replacement is None:
            mask[edge_pos] = False
            return GraphView(
                self.nodes,
                self.index,
                base.eu[mask],
                base.ev[mask],
                {k: v[mask] for k, v in base.weights.items()},
                {k: v[mask] for k, v in base.payload.items()},
            )
        view = base.clone()
        view.weights["risk"][edge_pos] = float(self.tenants[replacement])
        view.weights["length_km"][edge_pos] = self.length_km[replacement]
        view.payload["conduit"][edge_pos] = replacement
        return view

    def surviving_footprint_view(
        self, isp: str, dead_rows: Optional[set] = None
    ) -> GraphView:
        """The provider's conduit graph minus *dead_rows*, collapsed to
        the shortest parallel conduit (the impact module's graph)."""
        rows = self.rows_for_isp(isp)
        if dead_rows:
            rows = np.asarray(
                [r for r in rows if int(r) not in dead_rows], dtype=np.int64
            )
        order = self.length_km[rows]
        return self.build_view(
            rows,
            order,
            {"length_km": order},
            cache_key=("survivors", isp) if not dead_rows else None,
        )


# ----------------------------------------------------------------------
# Transportation-network views (§5.2 candidates / §5.3 ROW paths)
# ----------------------------------------------------------------------
def compile_transport_view(network, kinds: Optional[Iterable[str]]) -> GraphView:
    """One kind-restricted right-of-way graph, compiled once.

    Reproduces ``TransportationNetwork._subgraph_for_kinds`` — per edge,
    the shortest covering geometry among the allowed kinds — which the
    NetworkX path rebuilt on *every* ``row_shortest_path`` call.
    """
    if not HAVE_SCIPY:  # pragma: no cover - guarded by build_substrate
        raise RuntimeError("scipy is required for the routing substrate")
    nodes = sorted(network.graph.nodes)
    index = {k: i for i, k in enumerate(nodes)}
    kind_set = frozenset(kinds) if kinds is not None else None
    eu, ev, lengths = [], [], []
    for record in network.edges():
        if kind_set is None:
            length = record.length_km
        else:
            usable = record.kinds & kind_set
            if not usable:
                continue
            length = min(
                record.geometries[name].length_km
                for name in record.corridor_names
                if record.kind_of[name] in usable
            )
        eu.append(index[record.edge[0]])
        ev.append(index[record.edge[1]])
        lengths.append(length)
    return GraphView(
        nodes,
        index,
        np.asarray(eu, dtype=np.int32),
        np.asarray(ev, dtype=np.int32),
        {"length_km": np.asarray(lengths, dtype=float)},
    )


# ----------------------------------------------------------------------
# The substrate facade
# ----------------------------------------------------------------------
class RoutingSubstrate:
    """Everything the §5 + resilience analyses need, compiled once.

    ``conduits`` holds the fiber-map arrays and views; ``row_view``
    serves compiled right-of-way graphs per infrastructure-kind set
    (compiled on attach, so a pickled substrate carries its transport
    views without referencing the network object itself).
    """

    #: Kind sets pre-compiled when a network is attached (§5.3 uses
    #: "new conduit along existing roads or railways").  Map families
    #: with other media (submarine cables) override per instance via
    #: ``row_kinds``.
    DEFAULT_ROW_KINDS: Tuple[Tuple[str, ...], ...] = (("road", "rail"),)

    def __init__(self, fiber_map, network=None, row_kinds=None):
        self.conduits = ConduitSubstrate(fiber_map)
        self.row_kinds: Tuple[Tuple[str, ...], ...] = (
            tuple(tuple(k) for k in row_kinds)
            if row_kinds is not None
            else self.DEFAULT_ROW_KINDS
        )
        self._row_views: Dict[FrozenSet[str], GraphView] = {}
        if network is not None:
            self.attach_network(network)

    def attach_network(self, network, row_kinds=None) -> None:
        """Compile right-of-way views for the instance's kind sets (plus
        any extra *row_kinds* requested); already-compiled sets are kept."""
        wanted = list(self.row_kinds)
        if row_kinds is not None:
            wanted.extend(tuple(k) for k in row_kinds)
        for kinds in wanted:
            key = frozenset(kinds)
            if key not in self._row_views:
                self._row_views[key] = compile_transport_view(network, kinds)

    def row_view(self, kinds: Iterable[str]) -> Optional[GraphView]:
        """The compiled ROW graph for a kind set, if pre-compiled."""
        return self._row_views.get(frozenset(kinds))

    @property
    def has_row_views(self) -> bool:
        return bool(self._row_views)


def build_substrate(
    fiber_map, network=None, row_kinds=None
) -> Optional[RoutingSubstrate]:
    """A :class:`RoutingSubstrate` over *fiber_map*, or ``None`` without
    scipy (callers then take their NetworkX reference path).  *row_kinds*
    selects which right-of-way kind sets are compiled on attach (default:
    the US family's road/rail)."""
    if not HAVE_SCIPY:
        return None
    return RoutingSubstrate(fiber_map, network=network, row_kinds=row_kinds)


#: One substrate per live fiber map: analyses that are handed a bare
#: ``FiberMap`` (tests, examples, CLI one-offs) share the compiled
#: arrays without any scenario plumbing.
_SUBSTRATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def substrate_for(
    fiber_map, network=None, row_kinds=None
) -> Optional[RoutingSubstrate]:
    """The memoized substrate for a fiber map (``None`` without scipy).

    If a cached substrate lacks transport views for the requested kind
    sets and a network is now available, the missing views are compiled
    and attached in place.
    """
    if not HAVE_SCIPY:
        return None
    substrate = _SUBSTRATES.get(fiber_map)
    if substrate is None:
        substrate = RoutingSubstrate(
            fiber_map, network=network, row_kinds=row_kinds
        )
        _SUBSTRATES[fiber_map] = substrate
    elif network is not None and (
        not substrate.has_row_views
        or (
            row_kinds is not None
            and any(
                substrate.row_view(kinds) is None for kinds in row_kinds
            )
        )
    ):
        substrate.attach_network(network, row_kinds=row_kinds)
    return substrate


def resolve_substrate(
    fiber_map, substrate, network=None, row_kinds=None
) -> Optional[RoutingSubstrate]:
    """The substrate a §5/resilience entry point should use.

    ``None`` (the default) auto-builds via :func:`substrate_for`;
    ``False`` forces the NetworkX reference implementation (used by the
    parity suite); an explicit instance is passed through.
    """
    if substrate is None:
        return substrate_for(fiber_map, network=network, row_kinds=row_kinds)
    if substrate is False:
        return None
    return substrate
