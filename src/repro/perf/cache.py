"""Persistent on-disk cache for expensive scenario artifacts.

A full US2015 scenario build costs double-digit seconds; repeated
experiment and benchmark runs rebuild the same deterministic artifacts
every time.  This store memoizes whole stages — ground truth,
constructed map, campaign, overlay — keyed by

    (stage, parameters, code version)

where the code version is a hash over the ``repro`` package's own
source files.  Editing any module therefore invalidates every cached
artifact automatically; stale entries are never served.

Layout: one ``<stage>-<digest>.pkl`` per artifact directly under the
cache root (default ``~/.cache/repro``, overridable via
``REPRO_CACHE_DIR``).  Columnar campaign artifacts
(:class:`~repro.traceroute.columns.TraceColumns`) are the exception:
they persist as ``<stage>-<digest>.npz`` — a pure-array archive loaded
with ``allow_pickle=False``, so campaign entries carry no
code-execution surface.  ``python -m repro cache {info,clear,prune}``
inspects, empties, and size-bounds it.

The store is hardened against the failure modes a shared on-disk cache
actually sees:

* **Concurrent writers** — writes go to a temp file and ``os.replace``
  into place under a cross-process ``flock`` on ``<root>/.lock``, so
  two processes storing into one root can never interleave an entry.
* **Corrupt entries** — a ``fetch`` that finds bytes it cannot load
  moves the file into ``<root>/quarantine/`` (a ``cache.quarantine``
  tracer event), so the next run rebuilds instead of re-failing on the
  same poisoned entry forever.
* **Orphaned temp files** — ``*.tmp`` files left by an interrupted
  ``store`` are reported by ``info``, removed by ``clear``, and swept
  by ``sweep_orphans`` / ``prune`` once they are old enough to be
  provably dead.
* **Stale lock files** — single-flight build locks under
  ``<root>/locks/`` accumulate across code versions; ``clear`` and
  ``prune`` sweep the ones no process holds (a non-blocking ``flock``
  probe distinguishes dead locks from in-flight builds).
* **Unbounded growth** — ``prune(max_bytes)`` evicts least-recently
  used entries (fetch hits refresh an entry's mtime) until the root
  fits the budget.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:
    import fcntl

    HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    HAVE_FCNTL = False

#: Truthy/falsy spellings accepted in ``REPRO_CACHE``.
_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the installed ``repro`` sources (memoized per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()[:16]
    return _code_version


def default_cache_root() -> Path:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact."""

    stage: str
    path: Path
    size_bytes: int


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one maintenance pass (``prune`` / ``cache prune``)."""

    evicted: int
    orphans_swept: int
    quarantine_removed: int
    bytes_freed: int
    bytes_remaining: int
    locks_swept: int = 0


#: Age beyond which a ``*.tmp`` file cannot belong to an in-flight
#: ``store`` and is safe to sweep.
ORPHAN_TMP_AGE_S = 3600.0

#: Subdirectory corrupt entries are moved into on a failed ``fetch``.
QUARANTINE_DIR = "quarantine"

#: Subdirectory holding single-flight build-lock files.
LOCKS_DIR = "locks"


class ArtifactCache:
    """Pickle store for scenario stages, with hit/miss accounting."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.quarantined_count = 0

    # ------------------------------------------------------------------
    def _path_for(self, stage: str, params: Dict[str, Any]) -> Path:
        key = json.dumps(
            {"stage": stage, "params": params, "code": code_version()},
            sort_keys=True,
        )
        digest = hashlib.sha256(key.encode()).hexdigest()[:20]
        return self.root / f"{stage}-{digest}.pkl"

    @contextlib.contextmanager
    def _lock(self) -> Iterator[None]:
        """Cross-process exclusive lock on this cache root.

        Serializes writers (store, clear, prune) through ``flock`` on
        ``<root>/.lock``.  Readers stay lock-free: ``os.replace`` keeps
        every entry either absent or complete.  On platforms without
        ``fcntl`` the lock degrades to a no-op and atomic renames remain
        the only (still safe for single-writer) guarantee.
        """
        if not HAVE_FCNTL:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    @contextlib.contextmanager
    def single_flight(
        self, stage: str, params: Dict[str, Any]
    ) -> Iterator[bool]:
        """Cross-process build lock for one ``(stage, params)`` key.

        Sweep cells (and any other processes sharing a cache root)
        race to build identical stage artifacts; holding this lock
        around the miss→build→store window collapses the duplicates:
        one process builds while the rest block, then find the stored
        entry on re-fetch.  Yields ``True`` when the lock was contended
        — i.e. another process may have built the artifact while we
        waited and the caller should re-fetch before building.

        Lock files live under ``<root>/locks/`` (outside the entry
        glob, so ``clear``/``prune`` never sweep an active lock) and
        ``flock`` releases them even if the holder dies mid-build.  On
        platforms without ``fcntl`` this degrades to a no-op: builds
        may duplicate, but ``store``'s atomic rename keeps the cache
        consistent.
        """
        if not HAVE_FCNTL:
            yield False
            return
        lock_path = (
            self.root
            / LOCKS_DIR
            / (self._path_for(stage, params).stem + ".lock")
        )
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        try:
            contended = False
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fcntl.flock(fd, fcntl.LOCK_EX)
                contended = True
            yield contended
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _quarantine(self, path: Path, stage: str) -> None:
        """Move a corrupt entry out of the lookup path, never to be
        re-read; deleted outright if the move itself fails."""
        from repro.obs.tracer import get_tracer

        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()
        self.quarantined_count += 1
        get_tracer().event("cache.quarantine", stage=stage, file=path.name)

    def fetch(self, stage: str, params: Dict[str, Any]) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise.

        Unreadable or corrupt entries count as misses, are quarantined
        on first failure (so no later run re-reads the same poisoned
        bytes), and get rebuilt.  A hit refreshes the entry's mtime,
        which is the recency signal ``prune`` evicts by.
        """
        from repro.obs.tracer import get_tracer

        path = self._path_for(stage, params)
        npz_path = path.with_suffix(".npz")
        if npz_path.is_file():
            path = npz_path
        try:
            value = self._load(path)
        except FileNotFoundError:
            self.misses += 1
            get_tracer().event("cache.fetch", stage=stage, hit=False)
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, KeyError,
                zipfile.BadZipFile):
            self._quarantine(path, stage)
            self.misses += 1
            get_tracer().event(
                "cache.fetch", stage=stage, hit=False, quarantined=True
            )
            return False, None
        self.hits += 1
        with contextlib.suppress(OSError):
            os.utime(path)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "cache.fetch", stage=stage, hit=True,
                bytes=path.stat().st_size,
            )
        return True, value

    @staticmethod
    def _load(path: Path) -> Any:
        """Deserialize one entry by extension: ``.npz`` columnar
        artifacts load pickle-free, everything else unpickles."""
        data = path.read_bytes()
        if path.suffix == ".npz":
            from repro.traceroute.columns import columns_from_npz_bytes

            return columns_from_npz_bytes(data)
        return pickle.loads(data)

    @staticmethod
    def _serialize(value: Any, path: Path) -> Tuple[bytes, Path]:
        """``(payload, final path)`` for one artifact.

        Columnar campaigns (:class:`TraceColumns`) persist as ``.npz``
        archives — a pure-array format loadable with
        ``allow_pickle=False``, so a poisoned cache entry can corrupt a
        campaign but never execute code.  Everything else pickles as
        before.
        """
        from repro.traceroute.columns import TraceColumns, columns_to_npz_bytes

        if isinstance(value, TraceColumns):
            return columns_to_npz_bytes(value), path.with_suffix(".npz")
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), path

    def store(self, stage: str, params: Dict[str, Any], value: Any) -> Path:
        """Atomically persist one artifact (write to temp, then rename).

        Concurrent writers on one root are serialized by the cache
        lock; an active fault injector may corrupt the payload or fail
        the write here — both recovered elsewhere (quarantine on fetch,
        degraded-store in the scenario layer).
        """
        from repro.obs.faults import get_fault_injector
        from repro.obs.tracer import get_tracer

        injector = get_fault_injector()
        if injector is not None:
            injector.maybe_fail_write(stage)
        path = self._path_for(stage, params)
        self.root.mkdir(parents=True, exist_ok=True)
        payload, path = self._serialize(value, path)
        if injector is not None:
            payload = injector.corrupt_payload(stage, payload)
        get_tracer().event("cache.store", stage=stage, bytes=len(payload))
        with self._lock():
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        return path

    def contains(self, stage: str, params: Dict[str, Any]) -> bool:
        """Whether an entry exists for ``(stage, params)`` — no load,
        no hit/miss accounting (used by ``graph show``/``explain``)."""
        path = self._path_for(stage, params)
        return path.is_file() or path.with_suffix(".npz").is_file()

    def evict_stage(self, stage: str) -> int:
        """Delete every stored artifact belonging to *stage*.

        The targeted counterpart of :meth:`clear`: ``graph invalidate``
        uses it to drop one stage (and its dependents) while the rest
        of the warm cache survives.  Returns how many entries went.
        """
        from repro.obs.tracer import get_tracer

        removed = 0
        with self._lock():
            for entry in self.entries():
                if entry.stage != stage:
                    continue
                with contextlib.suppress(OSError):
                    entry.path.unlink()
                    removed += 1
        get_tracer().event("cache.evict", stage=stage, removed=removed)
        return removed

    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        if not self.root.is_dir():
            return []
        found = []
        paths = list(self.root.glob("*.pkl")) + list(self.root.glob("*.npz"))
        for path in sorted(paths):
            stage = path.stem.rsplit("-", 1)[0]
            found.append(
                CacheEntry(
                    stage=stage, path=path, size_bytes=path.stat().st_size
                )
            )
        return found

    def orphan_tmp_files(self) -> List[Path]:
        """``*.tmp`` files left behind by interrupted ``store`` calls."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.tmp"))

    def quarantined_files(self) -> List[Path]:
        """Corrupt entries parked by failed ``fetch`` calls."""
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(p for p in quarantine.iterdir() if p.is_file())

    def lock_files(self) -> List[Path]:
        """Single-flight lock files under ``<root>/locks/``.

        Lock files outlive their build (``single_flight`` never unlinks
        — a racing process may hold an fd to the same path), so over
        many code versions the directory accretes dead entries; the
        sweepers below reclaim them.
        """
        locks = self.root / LOCKS_DIR
        if not locks.is_dir():
            return []
        return sorted(locks.glob("*.lock"))

    def sweep_stale_locks(self, max_age_s: float = 0.0) -> int:
        """Delete single-flight lock files no process currently holds.

        Each candidate older than *max_age_s* is probed with a
        non-blocking ``flock``: a held lock (an in-flight build) fails
        the probe and is skipped, an acquirable one is provably unheld
        and unlinked.  The unlink-after-probe ordering means a process
        racing to open the same path can at worst recreate the file —
        never lose a held lock.  Without ``fcntl`` there is no probe
        (or any locks to begin with) and the sweep is age-only.
        """
        cutoff = time.time() - max_age_s
        removed = 0
        for path in self.lock_files():
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                if HAVE_FCNTL:
                    fd = os.open(path, os.O_RDWR)
                    try:
                        try:
                            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        except OSError:
                            continue  # held: a build is in flight
                        path.unlink()  # while holding — can't race a holder
                    finally:
                        os.close(fd)
                else:
                    path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def sweep_orphans(self, max_age_s: float = ORPHAN_TMP_AGE_S) -> int:
        """Delete orphaned ``*.tmp`` files older than *max_age_s*.

        The age guard keeps a concurrent writer's in-flight temp file
        safe; ``clear`` (which empties everything anyway) sweeps
        unconditionally.
        """
        cutoff = time.time() - max_age_s
        removed = 0
        for path in self.orphan_tmp_files():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def total_bytes(self) -> int:
        """Bytes held by entries, orphans, and quarantined files."""
        paths = (
            [e.path for e in self.entries()]
            + self.orphan_tmp_files()
            + self.quarantined_files()
        )
        total = 0
        for path in paths:
            with contextlib.suppress(OSError):
                total += path.stat().st_size
        return total

    def info_text(self) -> str:
        entries = self.entries()
        orphans = self.orphan_tmp_files()
        quarantined = self.quarantined_files()
        locks = self.lock_files()
        lines = [f"cache root: {self.root}"]
        if not entries and not orphans and not quarantined and not locks:
            lines.append("empty")
            return "\n".join(lines)
        total = sum(e.size_bytes for e in entries)
        by_stage: Dict[str, List[CacheEntry]] = {}
        for entry in entries:
            by_stage.setdefault(entry.stage, []).append(entry)
        for stage in sorted(by_stage):
            group = by_stage[stage]
            size = sum(e.size_bytes for e in group)
            lines.append(
                f"  {stage:16s} {len(group):3d} artifact(s)  "
                f"{size / 1e6:8.2f} MB"
            )
        lines.append(
            f"total: {len(entries)} artifact(s), {total / 1e6:.2f} MB"
        )
        if orphans:
            size = sum(p.stat().st_size for p in orphans)
            lines.append(
                f"orphaned temp files: {len(orphans)} "
                f"({size / 1e6:.2f} MB) — run `cache clear` or "
                f"`cache prune` to sweep"
            )
        if quarantined:
            size = sum(p.stat().st_size for p in quarantined)
            lines.append(
                f"quarantined corrupt entries: {len(quarantined)} "
                f"({size / 1e6:.2f} MB)"
            )
        if locks:
            lines.append(
                f"single-flight lock files: {len(locks)} — stale ones "
                f"are swept by `cache clear` / `cache prune`"
            )
        return "\n".join(lines)

    def clear(self) -> int:
        """Delete every stored artifact, orphaned temp file, quarantined
        entry, and unheld lock file; returns how many files went.

        Lock files get the unconditional (age-zero) sweep: anything a
        live build still holds survives, everything else goes with the
        entries it guarded.
        """
        removed = 0
        with self._lock():
            targets = (
                [e.path for e in self.entries()]
                + self.orphan_tmp_files()
                + self.quarantined_files()
            )
            for path in targets:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            removed += self.sweep_stale_locks(0.0)
        return removed

    def prune(
        self,
        max_bytes: Optional[int] = None,
        orphan_age_s: float = ORPHAN_TMP_AGE_S,
    ) -> PruneResult:
        """Bound the cache: sweep dead files, then evict LRU entries.

        Quarantined entries (already useless), stale orphans, and
        stale single-flight lock files go first; live entries are then
        evicted oldest-mtime-first until the root fits *max_bytes*
        (``None`` bounds nothing and only sweeps).  Lock files share
        the orphan age gate and are additionally probed for holders,
        so an in-flight build's lock is never touched.  Returns a
        :class:`PruneResult` accounting.
        """
        from repro.obs.tracer import get_tracer

        with self._lock():
            freed = 0
            quarantine_removed = 0
            for path in self.quarantined_files():
                with contextlib.suppress(OSError):
                    size = path.stat().st_size
                    path.unlink()
                    quarantine_removed += 1
                    freed += size
            orphans_swept = 0
            cutoff = time.time() - orphan_age_s
            for path in self.orphan_tmp_files():
                try:
                    stat = path.stat()
                    if stat.st_mtime <= cutoff:
                        path.unlink()
                        orphans_swept += 1
                        freed += stat.st_size
                except OSError:
                    continue
            locks_swept = self.sweep_stale_locks(orphan_age_s)
            evicted = 0
            entries = self.entries()
            remaining = sum(e.size_bytes for e in entries)
            if max_bytes is not None and remaining > max_bytes:
                by_age = sorted(
                    entries, key=lambda e: e.path.stat().st_mtime
                )
                for entry in by_age:
                    if remaining <= max_bytes:
                        break
                    with contextlib.suppress(OSError):
                        entry.path.unlink()
                        evicted += 1
                        freed += entry.size_bytes
                        remaining -= entry.size_bytes
        result = PruneResult(
            evicted=evicted,
            orphans_swept=orphans_swept,
            quarantine_removed=quarantine_removed,
            bytes_freed=freed,
            bytes_remaining=remaining,
            locks_swept=locks_swept,
        )
        get_tracer().event(
            "cache.prune", evicted=evicted, orphans=orphans_swept,
            quarantine=quarantine_removed, locks=locks_swept, freed=freed,
        )
        return result


CacheLike = Union[None, bool, str, Path, ArtifactCache]


def normalize_cache_setting(
    cache: CacheLike,
) -> Union[None, bool, str, ArtifactCache]:
    """Canonicalize a cache setting without resolving the environment.

    ``Path('/x')``, ``'/x'``, and (when ``/x`` is the default root)
    ``True`` all select the same cache, but as distinct argument values
    they would occupy separate ``us2015`` memoization slots.  This maps
    every spelling onto one canonical, hashable form: ``None`` (defer to
    the environment) and ``False`` (off) pass through, ``True`` becomes
    the default root as a string, and paths become expanded strings.
    """
    if isinstance(cache, ArtifactCache) or cache is None or cache is False:
        return cache
    if cache is True:
        return str(default_cache_root())
    return str(Path(cache).expanduser())


def describe_cache_setting(cache: CacheLike) -> Union[None, bool, str]:
    """JSON-safe rendering of a cache setting (for run manifests)."""
    if isinstance(cache, ArtifactCache):
        return str(cache.root)
    normalized = normalize_cache_setting(cache)
    if isinstance(normalized, ArtifactCache):  # pragma: no cover
        return str(normalized.root)
    return normalized


def resolve_cache(cache: CacheLike) -> Optional[ArtifactCache]:
    """Map a user-facing cache setting onto an :class:`ArtifactCache`.

    ``None`` defers to the environment: caching turns on when
    ``REPRO_CACHE_DIR`` is set or ``REPRO_CACHE`` is truthy, and an
    explicit falsy ``REPRO_CACHE`` wins over both.  ``True``/``False``
    force it; a path selects a specific root; an existing cache object
    passes through.
    """
    if isinstance(cache, ArtifactCache):
        return cache
    if cache is True:
        return ArtifactCache()
    if cache is False:
        return None
    if cache is None:
        flag = os.environ.get("REPRO_CACHE")
        if flag is not None and flag.strip().lower() in _FALSE:
            return None
        if os.environ.get("REPRO_CACHE_DIR"):
            return ArtifactCache()
        if flag is not None and flag.strip().lower() in _TRUE:
            return ArtifactCache()
        return None
    return ArtifactCache(cache)
