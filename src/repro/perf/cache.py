"""Persistent on-disk cache for expensive scenario artifacts.

A full US2015 scenario build costs double-digit seconds; repeated
experiment and benchmark runs rebuild the same deterministic artifacts
every time.  This store memoizes whole stages — ground truth,
constructed map, campaign, overlay — as pickles keyed by

    (stage, parameters, code version)

where the code version is a hash over the ``repro`` package's own
source files.  Editing any module therefore invalidates every cached
artifact automatically; stale entries are never served.

Layout: one ``<stage>-<digest>.pkl`` per artifact directly under the
cache root (default ``~/.cache/repro``, overridable via
``REPRO_CACHE_DIR``).  ``python -m repro cache {info,clear}`` inspects
and empties it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Truthy/falsy spellings accepted in ``REPRO_CACHE``.
_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the installed ``repro`` sources (memoized per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()[:16]
    return _code_version


def default_cache_root() -> Path:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact."""

    stage: str
    path: Path
    size_bytes: int


class ArtifactCache:
    """Pickle store for scenario stages, with hit/miss accounting."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root else default_cache_root()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path_for(self, stage: str, params: Dict[str, Any]) -> Path:
        key = json.dumps(
            {"stage": stage, "params": params, "code": code_version()},
            sort_keys=True,
        )
        digest = hashlib.sha256(key.encode()).hexdigest()[:20]
        return self.root / f"{stage}-{digest}.pkl"

    def fetch(self, stage: str, params: Dict[str, Any]) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise.

        Unreadable or corrupt entries count as misses and are rebuilt.
        """
        from repro.obs.tracer import get_tracer

        path = self._path_for(stage, params)
        try:
            value = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            get_tracer().event("cache.fetch", stage=stage, hit=False)
            return False, None
        self.hits += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "cache.fetch", stage=stage, hit=True,
                bytes=path.stat().st_size,
            )
        return True, value

    def store(self, stage: str, params: Dict[str, Any], value: Any) -> Path:
        """Atomically persist one artifact (write to temp, then rename)."""
        from repro.obs.tracer import get_tracer

        path = self._path_for(stage, params)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        get_tracer().event("cache.store", stage=stage, bytes=len(payload))
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        if not self.root.is_dir():
            return []
        found = []
        for path in sorted(self.root.glob("*.pkl")):
            stage = path.stem.rsplit("-", 1)[0]
            found.append(
                CacheEntry(
                    stage=stage, path=path, size_bytes=path.stat().st_size
                )
            )
        return found

    def info_text(self) -> str:
        entries = self.entries()
        lines = [f"cache root: {self.root}"]
        if not entries:
            lines.append("empty")
            return "\n".join(lines)
        total = sum(e.size_bytes for e in entries)
        by_stage: Dict[str, List[CacheEntry]] = {}
        for entry in entries:
            by_stage.setdefault(entry.stage, []).append(entry)
        for stage in sorted(by_stage):
            group = by_stage[stage]
            size = sum(e.size_bytes for e in group)
            lines.append(
                f"  {stage:16s} {len(group):3d} artifact(s)  "
                f"{size / 1e6:8.2f} MB"
            )
        lines.append(
            f"total: {len(entries)} artifact(s), {total / 1e6:.2f} MB"
        )
        return "\n".join(lines)

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


CacheLike = Union[None, bool, str, Path, ArtifactCache]


def normalize_cache_setting(
    cache: CacheLike,
) -> Union[None, bool, str, ArtifactCache]:
    """Canonicalize a cache setting without resolving the environment.

    ``Path('/x')``, ``'/x'``, and (when ``/x`` is the default root)
    ``True`` all select the same cache, but as distinct argument values
    they would occupy separate ``us2015`` memoization slots.  This maps
    every spelling onto one canonical, hashable form: ``None`` (defer to
    the environment) and ``False`` (off) pass through, ``True`` becomes
    the default root as a string, and paths become expanded strings.
    """
    if isinstance(cache, ArtifactCache) or cache is None or cache is False:
        return cache
    if cache is True:
        return str(default_cache_root())
    return str(Path(cache).expanduser())


def describe_cache_setting(cache: CacheLike) -> Union[None, bool, str]:
    """JSON-safe rendering of a cache setting (for run manifests)."""
    if isinstance(cache, ArtifactCache):
        return str(cache.root)
    normalized = normalize_cache_setting(cache)
    if isinstance(normalized, ArtifactCache):  # pragma: no cover
        return str(normalized.root)
    return normalized


def resolve_cache(cache: CacheLike) -> Optional[ArtifactCache]:
    """Map a user-facing cache setting onto an :class:`ArtifactCache`.

    ``None`` defers to the environment: caching turns on when
    ``REPRO_CACHE_DIR`` is set or ``REPRO_CACHE`` is truthy, and an
    explicit falsy ``REPRO_CACHE`` wins over both.  ``True``/``False``
    force it; a path selects a specific root; an existing cache object
    passes through.
    """
    if isinstance(cache, ArtifactCache):
        return cache
    if cache is True:
        return ArtifactCache()
    if cache is False:
        return None
    if cache is None:
        flag = os.environ.get("REPRO_CACHE")
        if flag is not None and flag.strip().lower() in _FALSE:
            return None
        if os.environ.get("REPRO_CACHE_DIR"):
            return ArtifactCache()
        if flag is not None and flag.strip().lower() in _TRUE:
            return ArtifactCache()
        return None
    return ArtifactCache(cache)
