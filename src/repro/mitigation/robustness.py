"""The robustness-suggestion framework (§5.1).

For a provider and a heavily shared conduit it depends on, find the
alternate path between the conduit's endpoints — over existing conduits
only — that minimizes shared risk:

    OP(i, j) = argmin over paths P in E_A of SR(P)

where E_A is the set of all conduit paths and SR sums the tenant counts
of the conduits on the path.  Two metrics evaluate the suggestion
(Figure 10): **path inflation** (PI), the extra hops of the optimized
path over the original single conduit, and **shared-risk reduction**
(SRR), the drop from the original conduit's tenant count to the worst
tenant count along the optimized path.

The optimization is *ISP-independent* — the alternate path around a
conduit is a property of the conduit graph alone — so
:func:`optimize_all_isps` computes each conduit's optimum once on the
shared routing substrate (see :mod:`repro.perf.substrate`) and reuses it
across every tenant, optionally fanning the per-conduit solves out over
a thread pool.  Without scipy the NetworkX reference implementation
below answers instead.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.perf.substrate import RoutingSubstrate, resolve_substrate
from repro.risk.matrix import RiskMatrix
from repro.risk.metrics import most_shared_conduits


@dataclass(frozen=True)
class SuggestionOutcome:
    """Optimization result for one (provider, conduit) pair."""

    isp: str
    conduit_id: str
    original_risk: int
    optimized_conduits: Tuple[str, ...]
    optimized_max_risk: int

    @property
    def path_inflation(self) -> int:
        """Extra conduit hops of the optimized path (original = 1 hop)."""
        return len(self.optimized_conduits) - 1

    @property
    def shared_risk_reduction(self) -> int:
        """Original tenant count minus the optimized path's worst count."""
        return self.original_risk - self.optimized_max_risk


@dataclass(frozen=True)
class RobustnessSuggestion:
    """Aggregated Figure 10 bars for one provider."""

    isp: str
    outcomes: Tuple[SuggestionOutcome, ...]

    def _values(self, attr: str) -> List[int]:
        return [getattr(o, attr) for o in self.outcomes]

    @property
    def max_pi(self) -> int:
        return max(self._values("path_inflation"), default=0)

    @property
    def min_pi(self) -> int:
        return min(self._values("path_inflation"), default=0)

    @property
    def avg_pi(self) -> float:
        values = self._values("path_inflation")
        return sum(values) / len(values) if values else 0.0

    @property
    def max_srr(self) -> int:
        return max(self._values("shared_risk_reduction"), default=0)

    @property
    def min_srr(self) -> int:
        return min(self._values("shared_risk_reduction"), default=0)

    @property
    def avg_srr(self) -> float:
        values = self._values("shared_risk_reduction")
        return sum(values) / len(values) if values else 0.0


def _risk_graph(fiber_map: FiberMap, exclude: Optional[str] = None) -> nx.Graph:
    """Conduit graph weighted by shared risk (tenant count).

    Parallel conduits collapse to the least-shared one; the conduit being
    optimized away is excluded so the alternate path cannot use it.
    """
    graph = nx.Graph()
    for cid, conduit in sorted(fiber_map.conduits.items()):
        if cid == exclude:
            continue
        a, b = conduit.edge
        data = graph.get_edge_data(a, b)
        if data is None or conduit.num_tenants < data["risk"]:
            graph.add_edge(
                a, b, conduit_id=cid, risk=conduit.num_tenants,
                length_km=conduit.length_km,
            )
    return graph


def _optimized_path_reference(
    fiber_map: FiberMap, conduit_id: str
) -> Optional[Tuple[Tuple[str, ...], int]]:
    """NetworkX reference: the min-shared-risk alternate path around one
    conduit, as ``(conduit_ids, max_risk)``."""
    conduit = fiber_map.conduit(conduit_id)
    graph = _risk_graph(fiber_map, exclude=conduit_id)
    a, b = conduit.edge
    try:
        path = nx.shortest_path(graph, a, b, weight="risk")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    conduits = tuple(
        graph[u][v]["conduit_id"] for u, v in zip(path, path[1:])
    )
    max_risk = max(graph[u][v]["risk"] for u, v in zip(path, path[1:]))
    return conduits, max_risk


def _optimized_path_substrate(
    fiber_map: FiberMap, conduit_id: str, substrate: RoutingSubstrate
) -> Optional[Tuple[Tuple[str, ...], int]]:
    """Substrate fast path: exclusion is an array patch of the cached
    collapsed conduit view, the solve one CSR Dijkstra."""
    cs = substrate.conduits
    view = cs.conduit_view_excluding(conduit_id)
    a, b = fiber_map.conduit(conduit_id).edge
    if not view.present(a) or not view.present(b):
        return None
    path = view.shortest_path(a, b, "risk")
    if path is None:
        return None
    reps = [
        int(view.payload["conduit"][view.edge_index(view.nodes[u], view.nodes[v])])
        for u, v in zip(path, path[1:])
    ]
    conduits = tuple(cs.cids[r] for r in reps)
    max_risk = max(int(cs.tenants[r]) for r in reps)
    return conduits, max_risk


def _optimized_path(
    fiber_map: FiberMap, conduit_id: str, substrate
) -> Optional[Tuple[Tuple[str, ...], int]]:
    resolved = resolve_substrate(fiber_map, substrate)
    if resolved is None:
        return _optimized_path_reference(fiber_map, conduit_id)
    return _optimized_path_substrate(fiber_map, conduit_id, resolved)


def optimize_conduit_for_isp(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    isp: str,
    conduit_id: str,
    substrate=None,
) -> Optional[SuggestionOutcome]:
    """Minimum-shared-risk alternate path around one conduit.

    Returns ``None`` when the conduit's endpoints have no alternate
    connection (a true bridge in the conduit graph).
    """
    result = _optimized_path(fiber_map, conduit_id, substrate)
    if result is None:
        return None
    conduits, max_risk = result
    return SuggestionOutcome(
        isp=isp,
        conduit_id=conduit_id,
        original_risk=fiber_map.conduit(conduit_id).num_tenants,
        optimized_conduits=conduits,
        optimized_max_risk=max_risk,
    )


def _suggestion_for_isp(
    fiber_map: FiberMap,
    isp: str,
    conduit_ids: Sequence[str],
    solved: Dict[str, Optional[Tuple[Tuple[str, ...], int]]],
) -> RobustnessSuggestion:
    """Assemble one provider's Figure 10 bars from shared solves."""
    outcomes = []
    for conduit_id in conduit_ids:
        conduit = fiber_map.conduit(conduit_id)
        if isp not in conduit.tenants:
            continue
        result = solved[conduit_id]
        if result is None:
            continue
        conduits, max_risk = result
        outcomes.append(
            SuggestionOutcome(
                isp=isp,
                conduit_id=conduit_id,
                original_risk=conduit.num_tenants,
                optimized_conduits=conduits,
                optimized_max_risk=max_risk,
            )
        )
    return RobustnessSuggestion(isp=isp, outcomes=tuple(outcomes))


def _solve_conduits(
    fiber_map: FiberMap,
    conduit_ids: Sequence[str],
    substrate,
    workers: Optional[int] = None,
) -> Dict[str, Optional[Tuple[Tuple[str, ...], int]]]:
    """Each conduit's optimum, solved once (optionally thread-fanned —
    the CSR Dijkstras release the GIL)."""
    unique = list(dict.fromkeys(conduit_ids))
    if workers and workers > 1 and len(unique) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda cid: _optimized_path(fiber_map, cid, substrate),
                    unique,
                )
            )
        return dict(zip(unique, results))
    return {
        cid: _optimized_path(fiber_map, cid, substrate) for cid in unique
    }


def optimize_isp_around_conduits(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    isp: str,
    conduit_ids: Optional[Sequence[str]] = None,
    top: int = 12,
    substrate=None,
) -> RobustnessSuggestion:
    """Run the §5.1 optimization for one provider.

    By default the targets are the *top* most heavily shared conduits the
    provider actually occupies (the paper's 12 highly shared links).
    """
    if conduit_ids is None:
        shared = most_shared_conduits(matrix, top=top)
        conduit_ids = [cid for cid, _ in shared]
    relevant = [
        cid for cid in conduit_ids
        if isp in fiber_map.conduit(cid).tenants
    ]
    solved = _solve_conduits(fiber_map, relevant, substrate)
    return _suggestion_for_isp(fiber_map, isp, conduit_ids, dict(solved))


def optimize_all_isps(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    top: int = 12,
    substrate=None,
    workers: Optional[int] = None,
) -> Dict[str, RobustnessSuggestion]:
    """Figure 10: the framework applied to every provider.

    Each target conduit is solved exactly once and the result shared
    across all its tenants (the per-(ISP, conduit) rebuild of the old
    implementation did ``len(isps)`` times the work for identical
    answers).  *workers* > 1 fans the per-conduit solves out over
    threads.
    """
    shared = [cid for cid, _ in most_shared_conduits(matrix, top=top)]
    solved = _solve_conduits(fiber_map, shared, substrate, workers=workers)
    return {
        isp: _suggestion_for_isp(fiber_map, isp, shared, solved)
        for isp in matrix.isps
    }
