"""The "link exchange" model of §6.3.

The paper proposes adapting the IXP model to conduits: consortia of
providers jointly fund the key long-haul links identified by the §5.2
analysis, "especially if the cost for participating providers would be
competitive".  This module makes that concrete: rank candidate conduits
by their aggregate risk-reduction benefit across all providers, form a
consortium per conduit from the providers that benefit, and split the
construction cost in proportion to benefit — reporting how much cheaper
membership is than building alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fibermap.elements import FiberMap
from repro.mitigation.augmentation import (
    LENGTH_EPSILON,
    _FootprintRouter,
    candidate_new_edges,
)
from repro.transport.network import EdgeKey, TransportationNetwork

#: Construction cost per conduit kilometer (arbitrary cost units; only
#: ratios matter).
COST_PER_KM = 1.0
#: Minimum exposure gain for a provider to join a consortium.
MIN_GAIN = 1e-6


@dataclass(frozen=True)
class ExchangeMember:
    """One provider's stake in a jointly built conduit."""

    isp: str
    gain: float
    cost_share: float
    solo_cost: float

    @property
    def savings_factor(self) -> float:
        """How many times cheaper membership is than building alone."""
        if self.cost_share <= 0:
            return float("inf")
        return self.solo_cost / self.cost_share


@dataclass(frozen=True)
class ExchangeConduit:
    """One conduit the exchange would build."""

    edge: EdgeKey
    length_km: float
    total_gain: float
    members: Tuple[ExchangeMember, ...]

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def total_cost(self) -> float:
        return self.length_km * COST_PER_KM


def _estimated_gain(
    router: _FootprintRouter,
    demands: Sequence[EdgeKey],
    dist_cache: Dict[str, Dict[str, float]],
    edge: EdgeKey,
    length_km: float,
) -> float:
    """Exposure-cost drop for one provider if *edge* existed (estimate)."""
    if edge[0] not in router.graph or edge[1] not in router.graph:
        return 0.0
    from_u = dist_cache.setdefault(edge[0], router.dijkstra_risk(edge[0]))
    from_v = dist_cache.setdefault(edge[1], router.dijkstra_risk(edge[1]))
    new_weight = 1.0 + LENGTH_EPSILON * length_km
    gain = 0.0
    for a, b in demands:
        current = dist_cache.setdefault(a, router.dijkstra_risk(a)).get(b)
        if current is None:
            continue
        via = min(
            from_u.get(a, float("inf")) + new_weight + from_v.get(b, float("inf")),
            from_v.get(a, float("inf")) + new_weight + from_u.get(b, float("inf")),
        )
        if via < current:
            gain += current - via
    return gain


def plan_exchange(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isps: Sequence[str],
    num_conduits: int = 5,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
) -> List[ExchangeConduit]:
    """Plan the *num_conduits* most beneficial jointly funded conduits.

    Benefit per provider is the §5.2 exposure-gain estimate; cost shares
    are proportional to benefit (providers that gain nothing pay
    nothing and stay out).
    """
    if num_conduits <= 0:
        raise ValueError("num_conduits must be positive")
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)
    routers: Dict[str, _FootprintRouter] = {}
    demands: Dict[str, List[EdgeKey]] = {}
    caches: Dict[str, Dict[str, Dict[str, float]]] = {}
    for isp in isps:
        routers[isp] = _FootprintRouter(fiber_map, isp)
        demands[isp] = sorted({l.endpoints for l in fiber_map.links_of(isp)})
        caches[isp] = {}
    scored: List[Tuple[EdgeKey, float, float, Dict[str, float]]] = []
    for edge, length in candidates:
        gains = {}
        for isp in isps:
            gain = _estimated_gain(
                routers[isp], demands[isp], caches[isp], edge, length
            )
            if gain > MIN_GAIN:
                gains[isp] = gain
        total = sum(gains.values())
        if total > MIN_GAIN:
            scored.append((edge, length, total, gains))
    scored.sort(key=lambda item: (-item[2], item[0]))
    result = []
    for edge, length, total, gains in scored[:num_conduits]:
        cost = length * COST_PER_KM
        members = tuple(
            ExchangeMember(
                isp=isp,
                gain=gain,
                cost_share=cost * gain / total,
                solo_cost=cost,
            )
            for isp, gain in sorted(gains.items())
        )
        result.append(
            ExchangeConduit(
                edge=edge, length_km=length, total_gain=total, members=members
            )
        )
    return result
