"""Adding new conduits along unused rights-of-way (§5.2).

The paper's formulation: add up to *k* new city-to-city conduits (edges
not in G) so that overall robustness increases the most while deployment
cost (fiber miles) stays low.  Figure 11 then reports, per provider, the
improvement ratio after k = 1..10 additions: small-footprint providers
(Telia, Tata) gain substantially, infrastructure-rich ones (Level 3,
CenturyLink, Cogent) barely move, and Suddenlink is the anomaly that
shows no improvement because it depends on other providers' trunks to
reach its scattered markets.

Metric: a provider's exposure is the traffic-weighted average shared
risk of its links — total tenant count over all conduit hops its links
traverse, divided by the hop count — with every link routed on its
minimum-risk path over the provider's own footprint plus the new private
conduits (tenant count 1).  The improvement ratio is the relative drop
of that exposure, ``1 - after/before``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.perf.substrate import (
    HAVE_SCIPY,
    ConduitSubstrate,
    GraphView,
    resolve_substrate,
)
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge

if HAVE_SCIPY:
    import numpy as np

#: Length contribution to routing weight (prefers short when risk ties).
LENGTH_EPSILON = 1.0 / 2000.0
#: Deployment-cost penalty per km when scoring candidate conduits — the
#: paper's DC term: between two candidates with equal risk gain, the
#: shorter trench wins.
COST_PENALTY_PER_KM = 1.0 / 500.0
#: Maximum candidates evaluated exactly per greedy step.
MAX_CANDIDATES = 150


@dataclass(frozen=True)
class AugmentationResult:
    """Figure 11 data for one provider."""

    isp: str
    baseline_risk: float
    #: Exposure after k additions, index 0 = k=1.
    risk_after: Tuple[float, ...]
    #: Edges added, in greedy order.
    added_edges: Tuple[EdgeKey, ...]

    def improvement_ratio(self, k: int) -> float:
        """Relative exposure reduction after *k* added conduits."""
        if not 1 <= k <= len(self.risk_after):
            raise ValueError(f"k out of range: {k}")
        if self.baseline_risk <= 0:
            return 0.0
        return 1.0 - self.risk_after[k - 1] / self.baseline_risk

    @property
    def curve(self) -> List[Tuple[int, float]]:
        return [
            (k, self.improvement_ratio(k))
            for k in range(1, len(self.risk_after) + 1)
        ]


def candidate_new_edges(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    primary_only: bool = True,
) -> List[Tuple[EdgeKey, float]]:
    """Rights-of-way edges that host no conduit yet: the §5.2 candidate set.

    Returns ``(edge, length_km)`` pairs sorted by edge for determinism.
    """
    used = {c.edge for c in fiber_map.conduits.values()}
    result = []
    for record in network.edges():
        if record.edge in used:
            continue
        if primary_only and not record.is_primary:
            continue
        result.append((record.edge, record.length_km))
    return result


class _FootprintRouter:
    """Minimum-risk routing over one provider's (augmentable) footprint."""

    def __init__(self, fiber_map: FiberMap, isp: str):
        self.graph = nx.Graph()
        for cid, conduit in sorted(fiber_map.conduits.items()):
            if isp not in conduit.tenants:
                continue
            a, b = conduit.edge
            weight = conduit.num_tenants + LENGTH_EPSILON * conduit.length_km
            data = self.graph.get_edge_data(a, b)
            if data is None or weight < data["w"]:
                self.graph.add_edge(
                    a, b, w=weight, risk=conduit.num_tenants
                )

    def add_private_conduit(self, edge: EdgeKey, length_km: float) -> None:
        weight = 1.0 + LENGTH_EPSILON * length_km
        data = self.graph.get_edge_data(*edge)
        if data is None or weight < data["w"]:
            self.graph.add_edge(edge[0], edge[1], w=weight, risk=1)

    def route_exposure(self, demands: Sequence[EdgeKey]) -> float:
        """Traffic-weighted average shared risk over all demands."""
        total_risk = 0.0
        total_hops = 0
        for a, b in demands:
            try:
                path = nx.shortest_path(self.graph, a, b, weight="w")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            for u, v in zip(path, path[1:]):
                total_risk += self.graph[u][v]["risk"]
                total_hops += 1
        if total_hops == 0:
            return 0.0
        return total_risk / total_hops

    def dijkstra_risk(self, source: str) -> Dict[str, float]:
        if source not in self.graph:
            return {}
        return nx.single_source_dijkstra_path_length(
            self.graph, source, weight="w"
        )


def _improvement_curve_reference(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isp: str,
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
) -> AugmentationResult:
    """NetworkX reference for :func:`improvement_curve` (two dict
    Dijkstras per candidate per greedy step)."""
    router = _FootprintRouter(fiber_map, isp)
    demands = sorted(
        {link.endpoints for link in fiber_map.links_of(isp)}
    )
    footprint_cities = set(router.graph.nodes)
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)
    pool = [
        (edge, length)
        for edge, length in candidates
        if edge[0] in footprint_cities and edge[1] in footprint_cities
    ][:MAX_CANDIDATES]
    baseline = router.route_exposure(demands)
    risks_after: List[float] = []
    added: List[EdgeKey] = []
    current = baseline
    for _ in range(max_k):
        # Current demand costs, computed once per step: one Dijkstra per
        # distinct demand source.
        sources = sorted({a for a, _ in demands} | {b for _, b in demands})
        dist_from: Dict[str, Dict[str, float]] = {
            s: router.dijkstra_risk(s) for s in sources
        }
        current_cost: Dict[EdgeKey, float] = {}
        for a, b in demands:
            cost = dist_from.get(a, {}).get(b)
            if cost is not None:
                current_cost[(a, b)] = cost
        best_edge: Optional[Tuple[EdgeKey, float]] = None
        best_score = 0.0
        for edge, length in pool:
            if edge in added:
                continue
            # Estimated gain: links that would reroute through the new
            # conduit save (old path cost) - (cost via new conduit).
            from_u = dist_from.get(edge[0], router.dijkstra_risk(edge[0]))
            from_v = dist_from.get(edge[1], router.dijkstra_risk(edge[1]))
            new_weight = 1.0 + LENGTH_EPSILON * length
            gain = 0.0
            for (a, b), cost in current_cost.items():
                if a not in from_u or b not in from_v:
                    continue
                via_new = min(
                    from_u[a] + new_weight + from_v[b],
                    from_v.get(a, float("inf"))
                    + new_weight
                    + from_u.get(b, float("inf")),
                )
                if via_new < cost:
                    gain += cost - via_new
            score = gain - COST_PENALTY_PER_KM * length
            if score > best_score:
                best_score = score
                best_edge = (edge, length)
        if best_edge is None:
            # No candidate helps; the curve flattens (Suddenlink's case).
            risks_after.append(current)
            continue
        router.add_private_conduit(*best_edge)
        added.append(best_edge[0])
        current = router.route_exposure(demands)
        risks_after.append(current)
    return AugmentationResult(
        isp=isp,
        baseline_risk=baseline,
        risk_after=tuple(risks_after),
        added_edges=tuple(added),
    )


def _footprint_view(conduits: ConduitSubstrate, isp: str) -> GraphView:
    """The provider's footprint collapsed by routing weight ``w``
    (tenant count + length epsilon), cached on the substrate."""
    rows = conduits.rows_for_isp(isp)
    w = conduits.tenants[rows] + LENGTH_EPSILON * conduits.length_km[rows]
    return conduits.build_view(
        rows,
        w,
        {"w": w, "risk": conduits.tenants[rows].astype(float)},
        cache_key=("augment", isp),
    )


def _route_exposure(view: GraphView, demands: Sequence[EdgeKey]) -> float:
    """Traffic-weighted average shared risk, walked off one batched
    Dijkstra instead of one NetworkX solve per demand."""
    total_risk = 0.0
    total_hops = 0
    _dist, pred, row_of = view.dijkstra([a for a, _ in demands], "w")
    risk = view.weights["risk"]
    edge_of = view._edge_of
    for a, b in demands:
        if not view.present(a) or not view.present(b):
            continue
        path = view.walk(pred[row_of[a]], view.index[a], view.index[b])
        if path is None:
            continue
        for u, v in zip(path, path[1:]):
            total_risk += float(risk[edge_of[(min(u, v), max(u, v))]])
            total_hops += 1
    if total_hops == 0:
        return 0.0
    return total_risk / total_hops


def _improvement_curve_substrate(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isp: str,
    max_k: int,
    candidates: Optional[List[Tuple[EdgeKey, float]]],
    substrate,
) -> AugmentationResult:
    """Substrate fast path: each greedy step is one batched multi-source
    Dijkstra plus vectorized gain scoring over the candidate pool, and
    applying a candidate is an O(1) array upsert."""
    conduits = substrate.conduits
    view = _footprint_view(conduits, isp).clone()
    demands = sorted(
        {link.endpoints for link in fiber_map.links_of(isp)}
    )
    footprint_cities = conduits.footprint_cities(isp)
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)
    pool = [
        (edge, length)
        for edge, length in candidates
        if edge[0] in footprint_cities and edge[1] in footprint_cities
    ][:MAX_CANDIDATES]
    baseline = _route_exposure(view, demands)
    risks_after: List[float] = []
    added: List[EdgeKey] = []
    current = baseline
    index = view.index
    for _ in range(max_k):
        # One scipy call answers every source this step needs: all
        # demand endpoints plus both endpoints of every candidate.
        all_sources = sorted(
            {a for a, _ in demands}
            | {b for _, b in demands}
            | {e for edge, _ in pool for e in edge}
        )
        dist, _pred, row_of = view.dijkstra(all_sources, "w")
        cost_a: List[int] = []
        cost_b: List[int] = []
        cost_v: List[float] = []
        for a, b in demands:
            if not view.present(a):
                continue
            cost = dist[row_of[a], index[b]]
            if not np.isfinite(cost):
                continue
            cost_a.append(index[a])
            cost_b.append(index[b])
            cost_v.append(float(cost))
        ai = np.asarray(cost_a, dtype=np.int64)
        bi = np.asarray(cost_b, dtype=np.int64)
        costs = np.asarray(cost_v, dtype=float)
        best_edge: Optional[Tuple[EdgeKey, float]] = None
        best_score = 0.0
        for edge, length in pool:
            if edge in added:
                continue
            du = dist[row_of[edge[0]]]
            dv = dist[row_of[edge[1]]]
            new_weight = 1.0 + LENGTH_EPSILON * length
            via_uv = du[ai] + new_weight + dv[bi]
            via_vu = dv[ai] + new_weight + du[bi]
            via = np.minimum(via_uv, via_vu)
            better = np.isfinite(via_uv) & (via < costs)
            if better.any():
                # Sequential (left-associated) accumulation so the gain
                # is bit-identical to the reference ``+=`` loop.
                gain = float((costs[better] - via[better]).cumsum()[-1])
            else:
                gain = 0.0
            score = gain - COST_PENALTY_PER_KM * length
            if score > best_score:
                best_score = score
                best_edge = (edge, length)
        if best_edge is None:
            risks_after.append(current)
            continue
        (a, b), length = best_edge
        view.upsert_edge(
            a,
            b,
            "w",
            {"w": 1.0 + LENGTH_EPSILON * length, "risk": 1.0},
            payload={"conduit": -1},
        )
        added.append(best_edge[0])
        current = _route_exposure(view, demands)
        risks_after.append(current)
    return AugmentationResult(
        isp=isp,
        baseline_risk=baseline,
        risk_after=tuple(risks_after),
        added_edges=tuple(added),
    )


def improvement_curve(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isp: str,
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
    substrate=None,
) -> AugmentationResult:
    """Greedy §5.2 augmentation for one provider.

    Each greedy step scores candidates by the exposure drop of rerouting
    the provider's links with the candidate added, applies the best, and
    measures exactly.  On the routing substrate the step is one batched
    Dijkstra plus vectorized scoring; without scipy the NetworkX
    reference answers instead.
    """
    resolved = resolve_substrate(fiber_map, substrate)
    if resolved is None:
        return _improvement_curve_reference(
            fiber_map, network, isp, max_k=max_k, candidates=candidates
        )
    return _improvement_curve_substrate(
        fiber_map, network, isp, max_k, candidates, resolved
    )


def improvement_curves(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isps: Sequence[str],
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
    substrate=None,
    workers: Optional[int] = None,
) -> Dict[str, AugmentationResult]:
    """Figure 11 fan-out: the improvement curve for every provider.

    The candidate set is computed once and shared; *workers* > 1 runs
    the per-provider greedy loops on a thread pool (the batched CSR
    Dijkstras release the GIL).  Results keep *isps* order.
    """
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)

    def one(isp: str) -> AugmentationResult:
        return improvement_curve(
            fiber_map,
            network,
            isp,
            max_k=max_k,
            candidates=candidates,
            substrate=substrate,
        )

    if workers and workers > 1 and len(isps) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(one, isps))
        return dict(zip(isps, results))
    return {isp: one(isp) for isp in isps}
