"""Adding new conduits along unused rights-of-way (§5.2).

The paper's formulation: add up to *k* new city-to-city conduits (edges
not in G) so that overall robustness increases the most while deployment
cost (fiber miles) stays low.  Figure 11 then reports, per provider, the
improvement ratio after k = 1..10 additions: small-footprint providers
(Telia, Tata) gain substantially, infrastructure-rich ones (Level 3,
CenturyLink, Cogent) barely move, and Suddenlink is the anomaly that
shows no improvement because it depends on other providers' trunks to
reach its scattered markets.

Metric: a provider's exposure is the traffic-weighted average shared
risk of its links — total tenant count over all conduit hops its links
traverse, divided by the hop count — with every link routed on its
minimum-risk path over the provider's own footprint plus the new private
conduits (tenant count 1).  The improvement ratio is the relative drop
of that exposure, ``1 - after/before``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.perf.substrate import (
    HAVE_SCIPY,
    ConduitSubstrate,
    GraphView,
    resolve_substrate,
)
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge

if HAVE_SCIPY:
    import numpy as np

#: Length contribution to routing weight (prefers short when risk ties).
LENGTH_EPSILON = 1.0 / 2000.0
#: Deployment-cost penalty per km when scoring candidate conduits — the
#: paper's DC term: between two candidates with equal risk gain, the
#: shorter trench wins.
COST_PENALTY_PER_KM = 1.0 / 500.0
#: Maximum candidates evaluated exactly per greedy step.
MAX_CANDIDATES = 150


@dataclass(frozen=True)
class AugmentationResult:
    """Figure 11 data for one provider."""

    isp: str
    baseline_risk: float
    #: Exposure after k additions, index 0 = k=1.
    risk_after: Tuple[float, ...]
    #: Edges added, in greedy order.
    added_edges: Tuple[EdgeKey, ...]
    #: Candidates actually scored (after footprint filter + cap).
    pool_size: int = 0
    #: Eligible candidates dropped by the ``MAX_CANDIDATES`` cap.
    pool_truncated: int = 0
    #: Optimizer driver that produced this plan.
    driver: str = "greedy"

    def improvement_ratio(self, k: int) -> float:
        """Relative exposure reduction after *k* added conduits."""
        if not 1 <= k <= len(self.risk_after):
            raise ValueError(f"k out of range: {k}")
        if self.baseline_risk <= 0:
            return 0.0
        return 1.0 - self.risk_after[k - 1] / self.baseline_risk

    @property
    def curve(self) -> List[Tuple[int, float]]:
        return [
            (k, self.improvement_ratio(k))
            for k in range(1, len(self.risk_after) + 1)
        ]


def candidate_new_edges(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    primary_only: bool = True,
) -> List[Tuple[EdgeKey, float]]:
    """Rights-of-way edges that host no conduit yet: the §5.2 candidate set.

    Returns ``(edge, length_km)`` pairs sorted by edge for determinism.
    """
    used = {c.edge for c in fiber_map.conduits.values()}
    result = []
    for record in network.edges():
        if record.edge in used:
            continue
        if primary_only and not record.is_primary:
            continue
        result.append((record.edge, record.length_km))
    return result


class _FootprintRouter:
    """Minimum-risk routing over one provider's (augmentable) footprint."""

    def __init__(self, fiber_map: FiberMap, isp: str):
        self.graph = nx.Graph()
        for cid, conduit in sorted(fiber_map.conduits.items()):
            if isp not in conduit.tenants:
                continue
            a, b = conduit.edge
            weight = conduit.num_tenants + LENGTH_EPSILON * conduit.length_km
            data = self.graph.get_edge_data(a, b)
            if data is None or weight < data["w"]:
                self.graph.add_edge(
                    a, b, w=weight, risk=conduit.num_tenants
                )

    def add_private_conduit(self, edge: EdgeKey, length_km: float) -> None:
        weight = 1.0 + LENGTH_EPSILON * length_km
        data = self.graph.get_edge_data(*edge)
        if data is None or weight < data["w"]:
            self.graph.add_edge(edge[0], edge[1], w=weight, risk=1)

    def route_exposure(self, demands: Sequence[EdgeKey]) -> float:
        """Traffic-weighted average shared risk over all demands."""
        total_risk = 0.0
        total_hops = 0
        for a, b in demands:
            try:
                path = nx.shortest_path(self.graph, a, b, weight="w")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            for u, v in zip(path, path[1:]):
                total_risk += self.graph[u][v]["risk"]
                total_hops += 1
        if total_hops == 0:
            return 0.0
        return total_risk / total_hops

    def dijkstra_risk(self, source: str) -> Dict[str, float]:
        if source not in self.graph:
            return {}
        return nx.single_source_dijkstra_path_length(
            self.graph, source, weight="w"
        )


def candidate_gain(
    du,
    dv,
    ai,
    bi,
    costs,
    new_weight: float,
) -> float:
    """Vectorized §5.2 gain estimate for one candidate conduit ``(u, v)``.

    *du*/*dv* are dense distance rows from the candidate's endpoints,
    *ai*/*bi* index the demand endpoints into those rows, *costs* holds
    each demand's current path cost.  A demand saves ``cost - via`` when
    the cheaper of the two orientations through the new conduit beats its
    current path.

    The finiteness mask is on ``via`` — the orientation minimum — not on
    ``via_uv`` alone: a demand reachable only as ``v → a`` and ``u → b``
    still reroutes through the conduit.  (Masking ``via_uv`` silently
    scored such candidates as useless.  On undirected footprints the two
    masks coincide — any finite ``via_vu`` implies every endpoint shares
    ``u``'s component, making ``via_uv`` finite too — but only this form
    survives asymmetric reachability; see tests/test_drivers.py.)
    """
    via_uv = du[ai] + new_weight + dv[bi]
    via_vu = dv[ai] + new_weight + du[bi]
    via = np.minimum(via_uv, via_vu)
    better = np.isfinite(via) & (via < costs)
    if better.any():
        # Sequential (left-associated) accumulation so the gain is
        # bit-identical to the reference ``+=`` loop.
        return float((costs[better] - via[better]).cumsum()[-1])
    return 0.0


def _footprint_view(conduits: ConduitSubstrate, isp: str) -> GraphView:
    """The provider's footprint collapsed by routing weight ``w``
    (tenant count + length epsilon), cached on the substrate."""
    rows = conduits.rows_for_isp(isp)
    w = conduits.tenants[rows] + LENGTH_EPSILON * conduits.length_km[rows]
    return conduits.build_view(
        rows,
        w,
        {"w": w, "risk": conduits.tenants[rows].astype(float)},
        cache_key=("augment", isp),
    )


def _route_exposure(view: GraphView, demands: Sequence[EdgeKey]) -> float:
    """Traffic-weighted average shared risk, walked off one batched
    Dijkstra instead of one NetworkX solve per demand."""
    total_risk = 0.0
    total_hops = 0
    _dist, pred, row_of = view.dijkstra([a for a, _ in demands], "w")
    risk = view.weights["risk"]
    edge_of = view._edge_of
    for a, b in demands:
        if not view.present(a) or not view.present(b):
            continue
        path = view.walk(pred[row_of[a]], view.index[a], view.index[b])
        if path is None:
            continue
        for u, v in zip(path, path[1:]):
            total_risk += float(risk[edge_of[(min(u, v), max(u, v))]])
            total_hops += 1
    if total_hops == 0:
        return 0.0
    return total_risk / total_hops


def improvement_curve(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isp: str,
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
    substrate=None,
    driver="greedy",
    driver_seed: int = 0,
    **driver_params,
) -> AugmentationResult:
    """§5.2 augmentation for one provider under a pluggable optimizer.

    The default *driver* is the paper's greedy search: each step scores
    candidates by the exposure drop of rerouting the provider's links
    with the candidate added, applies the best, and measures exactly.
    On the routing substrate the step is one batched Dijkstra plus
    vectorized scoring; without scipy (or with ``substrate=False``) the
    NetworkX reference answers instead.

    *driver* may be any name registered in
    :data:`repro.mitigation.drivers.DRIVERS` (``greedy``, ``anneal``,
    ``evolutionary``, ``random``) or a :class:`~repro.mitigation.drivers.
    Driver` instance; *driver_seed* and extra keyword parameters are
    forwarded to the driver constructor.  Every driver is deterministic
    for a fixed seed.
    """
    from repro.mitigation.drivers import (
        AugmentationEnv,
        make_driver,
        run_driver,
    )

    env = AugmentationEnv(
        fiber_map,
        network,
        isp,
        max_k=max_k,
        candidates=candidates,
        substrate=substrate,
    )
    return run_driver(env, make_driver(driver, seed=driver_seed, **driver_params))


def improvement_curves(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isps: Sequence[str],
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
    substrate=None,
    workers: Optional[int] = None,
    driver="greedy",
    driver_seed: int = 0,
    **driver_params,
) -> Dict[str, AugmentationResult]:
    """Figure 11 fan-out: the improvement curve for every provider.

    The candidate set is computed once and shared; *workers* > 1 runs
    the per-provider searches on a thread pool (the batched CSR
    Dijkstras release the GIL).  Results keep first-seen *isps* order;
    duplicate provider names collapse to one entry instead of silently
    dropping the extra work.
    """
    if not isinstance(driver, str):
        # A driver instance carries search state; sharing one across
        # providers would leak plans between searches.
        raise TypeError(
            "improvement_curves takes a driver *name* so each provider "
            f"gets a fresh search, got {driver!r}"
        )
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)
    unique_isps = list(dict.fromkeys(isps))

    def one(isp: str) -> AugmentationResult:
        return improvement_curve(
            fiber_map,
            network,
            isp,
            max_k=max_k,
            candidates=candidates,
            substrate=substrate,
            driver=driver,
            driver_seed=driver_seed,
            **driver_params,
        )

    if workers and workers > 1 and len(unique_isps) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(one, unique_isps))
        return dict(zip(unique_isps, results))
    return {isp: one(isp) for isp in unique_isps}
