"""Adding new conduits along unused rights-of-way (§5.2).

The paper's formulation: add up to *k* new city-to-city conduits (edges
not in G) so that overall robustness increases the most while deployment
cost (fiber miles) stays low.  Figure 11 then reports, per provider, the
improvement ratio after k = 1..10 additions: small-footprint providers
(Telia, Tata) gain substantially, infrastructure-rich ones (Level 3,
CenturyLink, Cogent) barely move, and Suddenlink is the anomaly that
shows no improvement because it depends on other providers' trunks to
reach its scattered markets.

Metric: a provider's exposure is the traffic-weighted average shared
risk of its links — total tenant count over all conduit hops its links
traverse, divided by the hop count — with every link routed on its
minimum-risk path over the provider's own footprint plus the new private
conduits (tenant count 1).  The improvement ratio is the relative drop
of that exposure, ``1 - after/before``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge

#: Length contribution to routing weight (prefers short when risk ties).
LENGTH_EPSILON = 1.0 / 2000.0
#: Deployment-cost penalty per km when scoring candidate conduits — the
#: paper's DC term: between two candidates with equal risk gain, the
#: shorter trench wins.
COST_PENALTY_PER_KM = 1.0 / 500.0
#: Maximum candidates evaluated exactly per greedy step.
MAX_CANDIDATES = 150


@dataclass(frozen=True)
class AugmentationResult:
    """Figure 11 data for one provider."""

    isp: str
    baseline_risk: float
    #: Exposure after k additions, index 0 = k=1.
    risk_after: Tuple[float, ...]
    #: Edges added, in greedy order.
    added_edges: Tuple[EdgeKey, ...]

    def improvement_ratio(self, k: int) -> float:
        """Relative exposure reduction after *k* added conduits."""
        if not 1 <= k <= len(self.risk_after):
            raise ValueError(f"k out of range: {k}")
        if self.baseline_risk <= 0:
            return 0.0
        return 1.0 - self.risk_after[k - 1] / self.baseline_risk

    @property
    def curve(self) -> List[Tuple[int, float]]:
        return [
            (k, self.improvement_ratio(k))
            for k in range(1, len(self.risk_after) + 1)
        ]


def candidate_new_edges(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    primary_only: bool = True,
) -> List[Tuple[EdgeKey, float]]:
    """Rights-of-way edges that host no conduit yet: the §5.2 candidate set.

    Returns ``(edge, length_km)`` pairs sorted by edge for determinism.
    """
    used = {c.edge for c in fiber_map.conduits.values()}
    result = []
    for record in network.edges():
        if record.edge in used:
            continue
        if primary_only and not record.is_primary:
            continue
        result.append((record.edge, record.length_km))
    return result


class _FootprintRouter:
    """Minimum-risk routing over one provider's (augmentable) footprint."""

    def __init__(self, fiber_map: FiberMap, isp: str):
        self.graph = nx.Graph()
        for cid, conduit in sorted(fiber_map.conduits.items()):
            if isp not in conduit.tenants:
                continue
            a, b = conduit.edge
            weight = conduit.num_tenants + LENGTH_EPSILON * conduit.length_km
            data = self.graph.get_edge_data(a, b)
            if data is None or weight < data["w"]:
                self.graph.add_edge(
                    a, b, w=weight, risk=conduit.num_tenants
                )

    def add_private_conduit(self, edge: EdgeKey, length_km: float) -> None:
        weight = 1.0 + LENGTH_EPSILON * length_km
        data = self.graph.get_edge_data(*edge)
        if data is None or weight < data["w"]:
            self.graph.add_edge(edge[0], edge[1], w=weight, risk=1)

    def route_exposure(self, demands: Sequence[EdgeKey]) -> float:
        """Traffic-weighted average shared risk over all demands."""
        total_risk = 0.0
        total_hops = 0
        for a, b in demands:
            try:
                path = nx.shortest_path(self.graph, a, b, weight="w")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            for u, v in zip(path, path[1:]):
                total_risk += self.graph[u][v]["risk"]
                total_hops += 1
        if total_hops == 0:
            return 0.0
        return total_risk / total_hops

    def dijkstra_risk(self, source: str) -> Dict[str, float]:
        if source not in self.graph:
            return {}
        return nx.single_source_dijkstra_path_length(
            self.graph, source, weight="w"
        )


def improvement_curve(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    isp: str,
    max_k: int = 10,
    candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
) -> AugmentationResult:
    """Greedy §5.2 augmentation for one provider.

    Each greedy step scores candidates by the exposure drop of rerouting
    the provider's links with the candidate added (estimated with two
    Dijkstras per candidate), applies the best, and measures exactly.
    """
    router = _FootprintRouter(fiber_map, isp)
    demands = sorted(
        {link.endpoints for link in fiber_map.links_of(isp)}
    )
    footprint_cities = set(router.graph.nodes)
    if candidates is None:
        candidates = candidate_new_edges(fiber_map, network)
    pool = [
        (edge, length)
        for edge, length in candidates
        if edge[0] in footprint_cities and edge[1] in footprint_cities
    ][:MAX_CANDIDATES]
    baseline = router.route_exposure(demands)
    risks_after: List[float] = []
    added: List[EdgeKey] = []
    current = baseline
    for _ in range(max_k):
        # Current demand costs, computed once per step: one Dijkstra per
        # distinct demand source.
        sources = sorted({a for a, _ in demands} | {b for _, b in demands})
        dist_from: Dict[str, Dict[str, float]] = {
            s: router.dijkstra_risk(s) for s in sources
        }
        current_cost: Dict[EdgeKey, float] = {}
        for a, b in demands:
            cost = dist_from.get(a, {}).get(b)
            if cost is not None:
                current_cost[(a, b)] = cost
        best_edge: Optional[Tuple[EdgeKey, float]] = None
        best_score = 0.0
        for edge, length in pool:
            if edge in added:
                continue
            # Estimated gain: links that would reroute through the new
            # conduit save (old path cost) - (cost via new conduit).
            from_u = dist_from.get(edge[0], router.dijkstra_risk(edge[0]))
            from_v = dist_from.get(edge[1], router.dijkstra_risk(edge[1]))
            new_weight = 1.0 + LENGTH_EPSILON * length
            gain = 0.0
            for (a, b), cost in current_cost.items():
                if a not in from_u or b not in from_v:
                    continue
                via_new = min(
                    from_u[a] + new_weight + from_v[b],
                    from_v.get(a, float("inf"))
                    + new_weight
                    + from_u.get(b, float("inf")),
                )
                if via_new < cost:
                    gain += cost - via_new
            score = gain - COST_PENALTY_PER_KM * length
            if score > best_score:
                best_score = score
                best_edge = (edge, length)
        if best_edge is None:
            # No candidate helps; the curve flattens (Suddenlink's case).
            risks_after.append(current)
            continue
        router.add_private_conduit(*best_edge)
        added.append(best_edge[0])
        current = router.route_exposure(demands)
        risks_after.append(current)
    return AugmentationResult(
        isp=isp,
        baseline_risk=baseline,
        risk_after=tuple(risks_after),
        added_edges=tuple(added),
    )
