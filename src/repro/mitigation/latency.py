"""Propagation-delay analysis (§5.3, Figure 12).

For city pairs connected by the conduit system, compare four one-way
delays:

* **best existing path** — shortest conduit path actually deployed;
* **average of existing paths** — mean over the distinct physical paths
  between the pair (deployed routes often take long detours);
* **best ROW path** — shortest path over existing roads and railways,
  i.e. what a new conduit along existing rights-of-way could achieve;
* **LOS** — the line-of-sight lower bound, "in most cases practically
  infeasible".

The paper's headline findings: average delays substantially exceed the
best link; about 65% of best paths are already the best ROW paths; and
LOS-vs-ROW differences are under ~100 us for half the pairs but exceed
500 us for a quarter of them.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge

#: Default LOS distance band for studied pairs (km).  Maps to roughly
#: 0.75-4.5 ms, the x-range of Figure 12.
DEFAULT_MIN_KM = 150.0
DEFAULT_MAX_KM = 900.0
#: Number of alternative physical paths considered for the average.
DEFAULT_MAX_PATHS = 4
#: Alternative paths longer than slack * best are not real alternatives.
DEFAULT_SLACK = 2.5


@dataclass(frozen=True)
class PairDelays:
    """One city pair's four delays, milliseconds one-way."""

    pair: EdgeKey
    best_ms: float
    avg_ms: float
    row_ms: float
    los_ms: float

    @property
    def best_is_row_best(self) -> bool:
        """True when the deployed best path matches the best ROW (within 1%)."""
        return self.best_ms <= self.row_ms * 1.01


@dataclass(frozen=True)
class LatencyStudy:
    """The full §5.3 dataset."""

    pairs: Tuple[PairDelays, ...]

    def cdf(self, attribute: str) -> List[Tuple[float, float]]:
        """CDF points (delay_ms, fraction) for one of the four series."""
        values = sorted(getattr(p, attribute) for p in self.pairs)
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]

    @property
    def fraction_best_is_row_best(self) -> float:
        """The paper's "about 65% of the best paths are also the best ROW
        paths" statistic."""
        if not self.pairs:
            return 0.0
        return sum(1 for p in self.pairs if p.best_is_row_best) / len(self.pairs)

    def row_los_gap_percentiles(
        self, q: Sequence[float] = (50.0, 75.0)
    ) -> List[float]:
        """Percentiles of (best ROW - LOS) delay gap, milliseconds."""
        import numpy as np

        gaps = [p.row_ms - p.los_ms for p in self.pairs]
        if not gaps:
            return [0.0 for _ in q]
        return [float(v) for v in np.percentile(gaps, list(q))]


def _alternative_paths_mean_km(
    graph: nx.Graph,
    a: str,
    b: str,
    best_km: float,
    max_paths: int,
    slack: float,
) -> float:
    """Mean length of distinct physical paths between two cities.

    Enumerates shortest simple paths until the slack bound or path-count
    cap is hit; always includes the best path.
    """
    lengths: List[float] = []
    generator = nx.shortest_simple_paths(graph, a, b, weight="length_km")
    for path in generator:
        km = sum(
            graph[u][v]["length_km"] for u, v in zip(path, path[1:])
        )
        if km > best_km * slack and lengths:
            break
        lengths.append(km)
        if len(lengths) >= max_paths:
            break
    return sum(lengths) / len(lengths)


def latency_study(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    min_km: float = DEFAULT_MIN_KM,
    max_km: float = DEFAULT_MAX_KM,
    max_pairs: Optional[int] = 400,
    max_paths: int = DEFAULT_MAX_PATHS,
    slack: float = DEFAULT_SLACK,
    seed: int = 97,
) -> LatencyStudy:
    """Build the Figure 12 dataset.

    Studied pairs are the distinct provider-link endpoint pairs whose LOS
    distance falls in [min_km, max_km] — city pairs the industry actually
    connects.  ``max_pairs`` caps the sample (deterministically) to keep
    the k-shortest-path enumeration tractable.
    """
    conduit_graph = fiber_map.simple_conduit_graph()
    pairs: Set[EdgeKey] = set()
    for link in fiber_map.links.values():
        a, b = link.endpoints
        if a == b:
            continue
        los = network.los_km(a, b)
        if min_km <= los <= max_km:
            pairs.add(canonical_edge(a, b))
    ordered = sorted(pairs)
    if max_pairs is not None and len(ordered) > max_pairs:
        rng = random.Random(seed)
        ordered = sorted(rng.sample(ordered, max_pairs))
    results: List[PairDelays] = []
    for a, b in ordered:
        if a not in conduit_graph or b not in conduit_graph:
            continue
        try:
            best_km = nx.shortest_path_length(
                conduit_graph, a, b, weight="length_km"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        avg_km = _alternative_paths_mean_km(
            conduit_graph, a, b, best_km, max_paths, slack
        )
        try:
            _, row_km = network.row_shortest_path(a, b, kinds=("road", "rail"))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        los_km = network.los_km(a, b)
        results.append(
            PairDelays(
                pair=(a, b),
                best_ms=fiber_delay_ms(best_km),
                avg_ms=fiber_delay_ms(avg_km),
                row_ms=fiber_delay_ms(row_km),
                los_ms=fiber_delay_ms(los_km),
            )
        )
    return LatencyStudy(pairs=tuple(results))
