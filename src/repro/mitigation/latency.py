"""Propagation-delay analysis (§5.3, Figure 12).

For city pairs connected by the conduit system, compare four one-way
delays:

* **best existing path** — shortest conduit path actually deployed;
* **average of existing paths** — mean over the distinct physical paths
  between the pair (deployed routes often take long detours);
* **best ROW path** — shortest path over existing roads and railways,
  i.e. what a new conduit along existing rights-of-way could achieve;
* **LOS** — the line-of-sight lower bound, "in most cases practically
  infeasible".

The paper's headline findings: average delays substantially exceed the
best link; about 65% of best paths are already the best ROW paths; and
LOS-vs-ROW differences are under ~100 us for half the pairs but exceed
500 us for a quarter of them.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.perf.substrate import GraphView, RoutingSubstrate, resolve_substrate
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge

#: Default LOS distance band for studied pairs (km).  Maps to roughly
#: 0.75-4.5 ms, the x-range of Figure 12.
DEFAULT_MIN_KM = 150.0
DEFAULT_MAX_KM = 900.0
#: Number of alternative physical paths considered for the average.
DEFAULT_MAX_PATHS = 4
#: Alternative paths longer than slack * best are not real alternatives.
DEFAULT_SLACK = 2.5


@dataclass(frozen=True)
class PairDelays:
    """One city pair's four delays, milliseconds one-way."""

    pair: EdgeKey
    best_ms: float
    avg_ms: float
    row_ms: float
    los_ms: float

    @property
    def best_is_row_best(self) -> bool:
        """True when the deployed best path matches the best ROW (within 1%)."""
        return self.best_ms <= self.row_ms * 1.01


@dataclass(frozen=True)
class LatencyStudy:
    """The full §5.3 dataset."""

    pairs: Tuple[PairDelays, ...]

    def cdf(self, attribute: str) -> List[Tuple[float, float]]:
        """CDF points (delay_ms, fraction) for one of the four series."""
        values = sorted(getattr(p, attribute) for p in self.pairs)
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]

    @property
    def fraction_best_is_row_best(self) -> float:
        """The paper's "about 65% of the best paths are also the best ROW
        paths" statistic."""
        if not self.pairs:
            return 0.0
        return sum(1 for p in self.pairs if p.best_is_row_best) / len(self.pairs)

    def row_los_gap_percentiles(
        self, q: Sequence[float] = (50.0, 75.0)
    ) -> List[float]:
        """Percentiles of (best ROW - LOS) delay gap, milliseconds."""
        import numpy as np

        gaps = [p.row_ms - p.los_ms for p in self.pairs]
        if not gaps:
            return [0.0 for _ in q]
        return [float(v) for v in np.percentile(gaps, list(q))]


def _alternative_paths_mean_km(
    graph: nx.Graph,
    a: str,
    b: str,
    best_km: float,
    max_paths: int,
    slack: float,
) -> float:
    """Mean length of distinct physical paths between two cities.

    Enumerates shortest simple paths until the slack bound or path-count
    cap is hit; always includes the best path.
    """
    lengths: List[float] = []
    generator = nx.shortest_simple_paths(graph, a, b, weight="length_km")
    for path in generator:
        km = sum(
            graph[u][v]["length_km"] for u, v in zip(path, path[1:])
        )
        if km > best_km * slack and lengths:
            break
        lengths.append(km)
        if len(lengths) >= max_paths:
            break
    return sum(lengths) / len(lengths)


def _alternative_paths_mean_km_view(
    view: GraphView,
    a: str,
    b: str,
    best_km: float,
    max_paths: int,
    slack: float,
) -> float:
    """Substrate twin of :func:`_alternative_paths_mean_km`: the Yen
    enumeration yields the same non-decreasing length sequence, so the
    mean is bit-identical."""
    lengths: List[float] = []
    for _path, km in view.shortest_simple_paths(a, b, "length_km"):
        if km > best_km * slack and lengths:
            break
        lengths.append(km)
        if len(lengths) >= max_paths:
            break
    return sum(lengths) / len(lengths)


def _pair_delays_reference(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    ordered: Sequence[EdgeKey],
    los_of: Dict[EdgeKey, float],
    max_paths: int,
    slack: float,
    row_kinds: Tuple[str, ...],
) -> List[PairDelays]:
    """NetworkX reference: per-pair graph solves (and a per-call ROW
    subgraph rebuild inside ``row_shortest_path``)."""
    conduit_graph = fiber_map.simple_conduit_graph()
    results: List[PairDelays] = []
    for a, b in ordered:
        if a not in conduit_graph or b not in conduit_graph:
            continue
        try:
            best_km = nx.shortest_path_length(
                conduit_graph, a, b, weight="length_km"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        avg_km = _alternative_paths_mean_km(
            conduit_graph, a, b, best_km, max_paths, slack
        )
        try:
            _, row_km = network.row_shortest_path(a, b, kinds=row_kinds)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        results.append(
            PairDelays(
                pair=(a, b),
                best_ms=fiber_delay_ms(best_km),
                avg_ms=fiber_delay_ms(avg_km),
                row_ms=fiber_delay_ms(row_km),
                los_ms=fiber_delay_ms(los_of[(a, b)]),
            )
        )
    return results


def _pair_delays_substrate(
    substrate: RoutingSubstrate,
    network: TransportationNetwork,
    ordered: Sequence[EdgeKey],
    los_of: Dict[EdgeKey, float],
    max_paths: int,
    slack: float,
    row_kinds: Tuple[str, ...],
) -> List[PairDelays]:
    """Substrate fast path: best/ROW distances come from two batched
    Dijkstras (one per weight view, all sources at once) and the
    alternative-path means from the array-walk Yen enumeration."""
    conduit_view = substrate.conduits.conduit_view()
    row_view = substrate.row_view(row_kinds)
    if row_view is None:
        substrate.attach_network(network, row_kinds=(row_kinds,))
        row_view = substrate.row_view(row_kinds)
    import numpy as np

    sources = [a for a, _ in ordered]
    c_dist, _c_pred, c_row = conduit_view.dijkstra(sources, "length_km")
    r_dist, _r_pred, r_row = row_view.dijkstra(sources, "length_km")
    results: List[PairDelays] = []
    for a, b in ordered:
        if not conduit_view.present(a) or not conduit_view.present(b):
            continue
        best_km = float(c_dist[c_row[a], conduit_view.index[b]])
        if not np.isfinite(best_km):
            continue
        avg_km = _alternative_paths_mean_km_view(
            conduit_view, a, b, best_km, max_paths, slack
        )
        if not row_view.present(a) or not row_view.present(b):
            continue
        b_row_idx = row_view.index.get(b)
        row_km = (
            float(r_dist[r_row[a], b_row_idx])
            if b_row_idx is not None
            else float("inf")
        )
        if not np.isfinite(row_km):
            continue
        results.append(
            PairDelays(
                pair=(a, b),
                best_ms=fiber_delay_ms(best_km),
                avg_ms=fiber_delay_ms(avg_km),
                row_ms=fiber_delay_ms(row_km),
                los_ms=fiber_delay_ms(los_of[(a, b)]),
            )
        )
    return results


def latency_study(
    fiber_map: FiberMap,
    network: TransportationNetwork,
    min_km: float = DEFAULT_MIN_KM,
    max_km: float = DEFAULT_MAX_KM,
    max_pairs: Optional[int] = 400,
    max_paths: int = DEFAULT_MAX_PATHS,
    slack: float = DEFAULT_SLACK,
    seed: int = 97,
    substrate=None,
    row_kinds: Tuple[str, ...] = ("road", "rail"),
) -> LatencyStudy:
    """Build the Figure 12 dataset.

    Studied pairs are the distinct provider-link endpoint pairs whose LOS
    distance falls in [min_km, max_km] — city pairs the industry actually
    connects.  ``max_pairs`` caps the sample (deterministically) to keep
    the k-shortest-path enumeration tractable.  Each pair's LOS distance
    is computed once, in the band filter, and reused for the result.
    ``row_kinds`` names the right-of-way kinds a new conduit could follow
    (the map family's deployable media; the paper's roads and railways by
    default).
    """
    row_kinds = tuple(row_kinds)
    resolved = resolve_substrate(
        fiber_map, substrate, network=network, row_kinds=(row_kinds,)
    )
    los_of: Dict[EdgeKey, float] = {}
    pairs: Set[EdgeKey] = set()
    for link in fiber_map.links.values():
        a, b = link.endpoints
        if a == b:
            continue
        edge = canonical_edge(a, b)
        los = los_of.get(edge)
        if los is None:
            los = network.los_km(*edge)
            los_of[edge] = los
        if min_km <= los <= max_km:
            pairs.add(edge)
    ordered = sorted(pairs)
    if max_pairs is not None and len(ordered) > max_pairs:
        rng = random.Random(seed)
        ordered = sorted(rng.sample(ordered, max_pairs))
    if resolved is None:
        results = _pair_delays_reference(
            fiber_map, network, ordered, los_of, max_paths, slack, row_kinds
        )
    else:
        results = _pair_delays_substrate(
            resolved, network, ordered, los_of, max_paths, slack, row_kinds
        )
    return LatencyStudy(pairs=tuple(results))
