"""Peering suggestions (§5.1, Table 5).

"Apart from finding optimal paths with minimum shared risk, the
robustness suggestion optimization framework can also be used to infer
additional peering (hops) that can improve the overall robustness of the
network": the conduits an optimized path uses that the provider is not a
tenant of belong to other providers — the ones it should peer with.
Level 3 dominates in the paper "largely due to their already-robust
infrastructure".
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fibermap.elements import FiberMap
from repro.mitigation.robustness import optimize_isp_around_conduits
from repro.risk.matrix import RiskMatrix
from repro.risk.metrics import most_shared_conduits


def peering_candidates_for_isp(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    isp: str,
    conduit_ids: Optional[Sequence[str]] = None,
    top_peers: int = 3,
) -> List[Tuple[str, int]]:
    """Ranked peer suggestions for one provider.

    Every tenant of every foreign conduit on the optimized paths gets one
    vote per (target conduit, foreign conduit) appearance; the most-voted
    providers are the best peers.
    """
    suggestion = optimize_isp_around_conduits(
        fiber_map, matrix, isp, conduit_ids
    )
    votes: Counter = Counter()
    for outcome in suggestion.outcomes:
        for conduit_id in outcome.optimized_conduits:
            conduit = fiber_map.conduit(conduit_id)
            if isp in conduit.tenants:
                continue
            for tenant in conduit.tenants:
                if tenant != isp and tenant in matrix.isps:
                    votes[tenant] += 1
    ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top_peers]


def peering_suggestions(
    fiber_map: FiberMap,
    matrix: RiskMatrix,
    top: int = 12,
    top_peers: int = 3,
) -> Dict[str, List[str]]:
    """Table 5: the best peers per provider for the most-shared conduits."""
    shared = [cid for cid, _ in most_shared_conduits(matrix, top=top)]
    result: Dict[str, List[str]] = {}
    for isp in matrix.isps:
        ranked = peering_candidates_for_isp(
            fiber_map, matrix, isp, shared, top_peers
        )
        result[isp] = [peer for peer, _ in ranked]
    return result
