"""Pluggable optimizer drivers for the §5.2 augmentation study.

The paper answers "which new conduits cut risk the most" with one fixed
greedy search.  This module generalizes that search into an
ArchGym-style driver interface: an :class:`AugmentationEnv` wraps one
provider's routing state (the substrate's batched-Dijkstra scoring, or
the NetworkX reference without scipy) and exposes evaluate/estimate
primitives, and a :class:`Driver` proposes candidate *plans* — ordered
tuples of pool indices — observes their measured exposures, and reports
the best plan it found.

Four drivers ship:

* ``greedy`` — the paper's search, byte-identical to the pre-driver
  ``improvement_curve`` (and therefore to the pinned fig11 goldens).
* ``anneal`` — simulated annealing over plan mutations.
* ``evolutionary`` — a small generational GA with tournament selection.
* ``random`` — uniform random plans; the baseline the smarter drivers
  must beat.

Every driver is deterministic for a fixed seed: all randomness flows
from one ``random.Random(seed)`` and no code path iterates a set, so
results are stable across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple, Union

from repro.fibermap.elements import FiberMap
from repro.mitigation import augmentation as _aug
from repro.mitigation.augmentation import (
    COST_PENALTY_PER_KM,
    LENGTH_EPSILON,
    AugmentationResult,
    _FootprintRouter,
    _footprint_view,
    _route_exposure,
    candidate_gain,
    candidate_new_edges,
)
from repro.obs.tracer import get_tracer
from repro.perf.substrate import HAVE_SCIPY, resolve_substrate
from repro.transport.network import EdgeKey, TransportationNetwork

if HAVE_SCIPY:
    import numpy as np

Plan = Tuple[int, ...]


class _SubstrateEngine:
    """Array-backed routing state: one batched multi-source Dijkstra per
    estimate, O(1) upserts per applied candidate (DESIGN §10)."""

    def __init__(
        self,
        fiber_map: FiberMap,
        isp: str,
        candidates: List[Tuple[EdgeKey, float]],
        substrate,
    ):
        conduits = substrate.conduits
        self._base = _footprint_view(conduits, isp)
        self.demands = sorted(
            {link.endpoints for link in fiber_map.links_of(isp)}
        )
        footprint_cities = conduits.footprint_cities(isp)
        eligible = [
            (edge, length)
            for edge, length in candidates
            if edge[0] in footprint_cities and edge[1] in footprint_cities
        ]
        self.pool = eligible[: _aug.MAX_CANDIDATES]
        self.pool_truncated = len(eligible) - len(self.pool)
        self.view = self._base.clone()
        self.baseline = _route_exposure(self.view, self.demands)

    def reset(self) -> None:
        self.view = self._base.clone()

    def estimate_scores(self, applied: Set[int]) -> List[Optional[float]]:
        view = self.view
        demands = self.demands
        pool = self.pool
        index = view.index
        # One scipy call answers every source this step needs: all
        # demand endpoints plus both endpoints of every candidate.
        all_sources = sorted(
            {a for a, _ in demands}
            | {b for _, b in demands}
            | {e for edge, _ in pool for e in edge}
        )
        dist, _pred, row_of = view.dijkstra(all_sources, "w")
        cost_a: List[int] = []
        cost_b: List[int] = []
        cost_v: List[float] = []
        for a, b in demands:
            if not view.present(a):
                continue
            cost = dist[row_of[a], index[b]]
            if not np.isfinite(cost):
                continue
            cost_a.append(index[a])
            cost_b.append(index[b])
            cost_v.append(float(cost))
        ai = np.asarray(cost_a, dtype=np.int64)
        bi = np.asarray(cost_b, dtype=np.int64)
        costs = np.asarray(cost_v, dtype=float)
        scores: List[Optional[float]] = []
        for pos, (edge, length) in enumerate(pool):
            if pos in applied:
                scores.append(None)
                continue
            du = dist[row_of[edge[0]]]
            dv = dist[row_of[edge[1]]]
            new_weight = 1.0 + LENGTH_EPSILON * length
            gain = candidate_gain(du, dv, ai, bi, costs, new_weight)
            scores.append(gain - COST_PENALTY_PER_KM * length)
        return scores

    def apply(self, pos: int) -> float:
        (a, b), length = self.pool[pos]
        self.view.upsert_edge(
            a,
            b,
            "w",
            {"w": 1.0 + LENGTH_EPSILON * length, "risk": 1.0},
            payload={"conduit": -1},
        )
        return _route_exposure(self.view, self.demands)


class _ReferenceEngine:
    """NetworkX reference state (two dict Dijkstras per candidate per
    estimate); the scipy-absent and cross-check path."""

    def __init__(
        self,
        fiber_map: FiberMap,
        isp: str,
        candidates: List[Tuple[EdgeKey, float]],
    ):
        self._fiber_map = fiber_map
        self._isp = isp
        self.router = _FootprintRouter(fiber_map, isp)
        self.demands = sorted(
            {link.endpoints for link in fiber_map.links_of(isp)}
        )
        footprint_cities = set(self.router.graph.nodes)
        eligible = [
            (edge, length)
            for edge, length in candidates
            if edge[0] in footprint_cities and edge[1] in footprint_cities
        ]
        self.pool = eligible[: _aug.MAX_CANDIDATES]
        self.pool_truncated = len(eligible) - len(self.pool)
        self.baseline = self.router.route_exposure(self.demands)

    def reset(self) -> None:
        self.router = _FootprintRouter(self._fiber_map, self._isp)

    def estimate_scores(self, applied: Set[int]) -> List[Optional[float]]:
        router = self.router
        demands = self.demands
        # Current demand costs, computed once per estimate: one Dijkstra
        # per distinct demand source.
        sources = sorted({a for a, _ in demands} | {b for _, b in demands})
        dist_from: Dict[str, Dict[str, float]] = {
            s: router.dijkstra_risk(s) for s in sources
        }
        current_cost: Dict[EdgeKey, float] = {}
        for a, b in demands:
            cost = dist_from.get(a, {}).get(b)
            if cost is not None:
                current_cost[(a, b)] = cost
        inf = float("inf")
        scores: List[Optional[float]] = []
        for pos, (edge, length) in enumerate(self.pool):
            if pos in applied:
                scores.append(None)
                continue
            # Estimated gain: links that would reroute through the new
            # conduit save (old path cost) - (cost via new conduit).
            from_u = dist_from.get(edge[0], router.dijkstra_risk(edge[0]))
            from_v = dist_from.get(edge[1], router.dijkstra_risk(edge[1]))
            new_weight = 1.0 + LENGTH_EPSILON * length
            gain = 0.0
            for (a, b), cost in current_cost.items():
                # Inf-safe on both orientations, mirroring the kernel's
                # mask-on-the-min (see candidate_gain).
                via_new = min(
                    from_u.get(a, inf) + new_weight + from_v.get(b, inf),
                    from_v.get(a, inf) + new_weight + from_u.get(b, inf),
                )
                if via_new < cost:
                    gain += cost - via_new
            scores.append(gain - COST_PENALTY_PER_KM * length)
        return scores

    def apply(self, pos: int) -> float:
        edge, length = self.pool[pos]
        self.router.add_private_conduit(edge, length)
        return self.router.route_exposure(self.demands)


class AugmentationEnv:
    """One provider's §5.2 search environment.

    State is an ordered tuple of applied pool indices (a *plan*).
    :meth:`evaluate` routes the provider's demands after each addition
    and returns the exposure trail; evaluating a plan that extends the
    current one only applies the tail, so greedy's incremental loop
    costs one measurement per step.  :meth:`estimate_scores` runs the
    vectorized gain heuristic at the current state — the signal greedy
    ranks on and smarter drivers may seed from.
    """

    def __init__(
        self,
        fiber_map: FiberMap,
        network: TransportationNetwork,
        isp: str,
        max_k: int = 10,
        candidates: Optional[List[Tuple[EdgeKey, float]]] = None,
        substrate=None,
    ):
        if candidates is None:
            candidates = candidate_new_edges(fiber_map, network)
        resolved = resolve_substrate(fiber_map, substrate)
        if resolved is None:
            self._engine = _ReferenceEngine(fiber_map, isp, candidates)
        else:
            self._engine = _SubstrateEngine(
                fiber_map, isp, candidates, resolved
            )
        self.isp = isp
        self.max_k = max_k
        self.pool = self._engine.pool
        self.pool_truncated = self._engine.pool_truncated
        self.baseline = self._engine.baseline
        self.evaluations = 0
        self._applied: List[int] = []
        self._trail: List[float] = []
        if self.pool_truncated:
            get_tracer().count(
                "mitigation.augmentation.candidates_truncated",
                self.pool_truncated,
            )

    @property
    def num_candidates(self) -> int:
        return len(self.pool)

    @property
    def applied(self) -> Plan:
        return tuple(self._applied)

    def reset(self) -> None:
        """Return to the unaugmented footprint."""
        if self._applied:
            self._engine.reset()
            self._applied = []
            self._trail = []

    def estimate_scores(self) -> List[Optional[float]]:
        """Heuristic score per pool candidate at the current state
        (``None`` for already-applied candidates)."""
        return self._engine.estimate_scores(set(self._applied))

    def apply(self, pos: int) -> float:
        """Add pool candidate *pos* and measure the resulting exposure."""
        if not 0 <= pos < len(self.pool):
            raise IndexError(f"candidate index out of range: {pos}")
        if pos in self._applied:
            raise ValueError(f"candidate {pos} already applied")
        if len(self._applied) >= self.max_k:
            raise ValueError(f"plan longer than max_k={self.max_k}")
        exposure = self._engine.apply(pos)
        self._applied.append(pos)
        self._trail.append(exposure)
        return exposure

    def evaluate(self, plan: Sequence[int]) -> Tuple[float, ...]:
        """Measured exposure after each addition of *plan*, in order.

        Shares the prefix with the current state when possible; anything
        else resets and replays (float-identical either way — routing is
        a pure function of the applied set).
        """
        plan = tuple(int(p) for p in plan)
        if len(set(plan)) != len(plan):
            raise ValueError(f"plan repeats a candidate: {plan}")
        if len(plan) > self.max_k:
            raise ValueError(f"plan longer than max_k={self.max_k}: {plan}")
        if list(plan[: len(self._applied)]) != self._applied:
            self.reset()
        for pos in plan[len(self._applied) :]:
            self.apply(pos)
        self.evaluations += 1
        return tuple(self._trail)

    def result(
        self,
        plan: Sequence[int],
        exposures: Sequence[float],
        driver: str,
    ) -> AugmentationResult:
        """Package a plan + exposure trail as Figure 11 data.

        The trail is padded to ``max_k`` with its last value (the
        baseline for an empty plan): once a search stops adding, the
        curve flattens — Suddenlink's case in the paper.
        """
        plan = tuple(int(p) for p in plan)
        exposures = tuple(float(x) for x in exposures)
        if len(exposures) != len(plan):
            raise ValueError("plan and exposure trail lengths differ")
        pad = exposures[-1] if exposures else self.baseline
        risk_after = exposures + (pad,) * (self.max_k - len(exposures))
        return AugmentationResult(
            isp=self.isp,
            baseline_risk=self.baseline,
            risk_after=risk_after,
            added_edges=tuple(self.pool[p][0] for p in plan),
            pool_size=len(self.pool),
            pool_truncated=self.pool_truncated,
            driver=driver,
        )


class Driver(Protocol):
    """Search strategy over an :class:`AugmentationEnv`.

    The :func:`run_driver` loop alternates ``propose`` (next plan to
    measure, ``None`` to stop) and ``observe`` (the measured exposure
    trail); ``best()`` then reports the winning plan.  Drivers carrying
    an RNG must derive every draw from their seed so a fixed seed
    replays exactly.
    """

    name: str

    def propose(self, env: AugmentationEnv) -> Optional[Plan]: ...

    def observe(self, plan: Plan, exposures: Tuple[float, ...]) -> None: ...

    def best(self) -> Tuple[Plan, Tuple[float, ...]]: ...


class GreedyDriver:
    """The paper's §5.2 search: per step, rank candidates by estimated
    gain minus the deployment-cost penalty, apply the strict-best
    (first wins ties), stop when nothing scores above zero.

    Byte-identical to the pre-driver ``improvement_curve``: the
    selection loop, float accumulation order, and flat-curve stopping
    behavior are unchanged.
    """

    name = "greedy"

    def __init__(self, seed: int = 0):
        # Deterministic search; the seed is accepted (and ignored) so
        # every driver constructs uniformly.
        self._plan: Plan = ()
        self._exposures: Tuple[float, ...] = ()
        self._done = False

    def propose(self, env: AugmentationEnv) -> Optional[Plan]:
        if self._done or len(self._plan) >= env.max_k:
            return None
        if env.applied != self._plan:
            env.evaluate(self._plan)
        best_pos: Optional[int] = None
        best_score = 0.0
        for pos, score in enumerate(env.estimate_scores()):
            if score is not None and score > best_score:
                best_score = score
                best_pos = pos
        if best_pos is None:
            # No candidate helps; the curve flattens (Suddenlink's case).
            self._done = True
            return None
        return self._plan + (best_pos,)

    def observe(self, plan: Plan, exposures: Tuple[float, ...]) -> None:
        self._plan = plan
        self._exposures = exposures

    def best(self) -> Tuple[Plan, Tuple[float, ...]]:
        return self._plan, self._exposures


class _StochasticDriver:
    """Shared bookkeeping for the seeded search drivers: a private RNG,
    an evaluation budget, and a best-ever incumbent that starts at the
    empty plan (so no driver ever reports a plan worse than baseline)."""

    name = "stochastic"

    def __init__(self, seed: int = 0, budget: int = 64):
        self._rng = random.Random(seed)
        self.budget = int(budget)
        self.evals = 0
        self._best_plan: Plan = ()
        self._best_exposures: Tuple[float, ...] = ()
        self._best_final: Optional[float] = None

    def _final(self, exposures: Tuple[float, ...], env_baseline: float) -> float:
        return exposures[-1] if exposures else env_baseline

    def _consider(self, plan: Plan, exposures: Tuple[float, ...], final: float) -> bool:
        if self._best_final is None or final < self._best_final:
            self._best_final = final
            self._best_plan = plan
            self._best_exposures = exposures
            return True
        return False

    def _random_plan(self, env: AugmentationEnv, max_len: Optional[int] = None) -> Plan:
        limit = min(env.max_k, env.num_candidates)
        if max_len is not None:
            limit = min(limit, max_len)
        if limit <= 0:
            return ()
        k = self._rng.randint(1, limit)
        return tuple(self._rng.sample(range(env.num_candidates), k))

    def best(self) -> Tuple[Plan, Tuple[float, ...]]:
        return self._best_plan, self._best_exposures


class RandomBaselineDriver(_StochasticDriver):
    """Uniform random plans — the floor every smarter driver must beat."""

    name = "random"

    def __init__(self, seed: int = 0, budget: int = 64):
        super().__init__(seed=seed, budget=budget)
        self._baseline: Optional[float] = None

    def propose(self, env: AugmentationEnv) -> Optional[Plan]:
        if self._baseline is None:
            self._baseline = env.baseline
            self._best_final = env.baseline
        if self.evals >= self.budget or env.num_candidates == 0:
            return None
        return self._random_plan(env)

    def observe(self, plan: Plan, exposures: Tuple[float, ...]) -> None:
        self.evals += 1
        self._consider(plan, exposures, self._final(exposures, self._baseline))


class AnnealingDriver(_StochasticDriver):
    """Simulated annealing over plan mutations.

    A move mutates the current plan (add / drop / swap a candidate);
    worse plans are accepted with probability ``exp(-delta / T)`` under
    a geometric cooling schedule scaled to the baseline exposure, so
    acceptance behaves consistently across providers with very
    different exposure magnitudes.
    """

    name = "anneal"

    def __init__(
        self,
        seed: int = 0,
        budget: int = 64,
        initial_temp: float = 0.05,
        cooling: float = 0.92,
    ):
        super().__init__(seed=seed, budget=budget)
        self.initial_temp = float(initial_temp)
        self.cooling = float(cooling)
        self._baseline: Optional[float] = None
        self._current_plan: Plan = ()
        self._current_final: Optional[float] = None
        self._pending: Optional[Plan] = None

    def _mutate(self, env: AugmentationEnv, plan: Plan) -> Plan:
        pool = env.num_candidates
        unused = [p for p in range(pool) if p not in plan]
        moves: List[str] = []
        if plan and len(plan) < env.max_k and unused:
            moves.append("add")
        if len(plan) > 1:
            moves.append("drop")
        if plan and unused:
            moves.append("swap")
        if not moves:
            return self._random_plan(env)
        move = self._rng.choice(moves)
        if move == "add":
            pos = self._rng.randrange(len(plan) + 1)
            cand = self._rng.choice(unused)
            return plan[:pos] + (cand,) + plan[pos:]
        if move == "drop":
            pos = self._rng.randrange(len(plan))
            return plan[:pos] + plan[pos + 1 :]
        pos = self._rng.randrange(len(plan))
        cand = self._rng.choice(unused)
        return plan[:pos] + (cand,) + plan[pos + 1 :]

    def propose(self, env: AugmentationEnv) -> Optional[Plan]:
        if self._baseline is None:
            self._baseline = env.baseline
            self._best_final = env.baseline
            self._current_final = env.baseline
        if self.evals >= self.budget or env.num_candidates == 0:
            return None
        if self._current_plan:
            self._pending = self._mutate(env, self._current_plan)
        else:
            self._pending = self._random_plan(env)
        return self._pending

    def observe(self, plan: Plan, exposures: Tuple[float, ...]) -> None:
        self.evals += 1
        final = self._final(exposures, self._baseline)
        self._consider(plan, exposures, final)
        delta = final - self._current_final
        scale = max(abs(self._baseline), 1e-12)
        temp = self.initial_temp * scale * (self.cooling ** self.evals)
        accept = delta <= 0.0
        if not accept and temp > 0.0:
            accept = self._rng.random() < _safe_exp(-delta / temp)
        if accept:
            self._current_plan = plan
            self._current_final = final


class EvolutionaryDriver(_StochasticDriver):
    """Generational GA: tournament selection, one-point crossover on
    plans (order-preserving dedupe), mutation via the annealer's move
    set, elitism of the top two."""

    name = "evolutionary"

    def __init__(
        self,
        seed: int = 0,
        budget: int = 64,
        population: int = 8,
        mutation_rate: float = 0.35,
    ):
        super().__init__(seed=seed, budget=budget)
        self.population = max(2, int(population))
        self.mutation_rate = float(mutation_rate)
        self._baseline: Optional[float] = None
        self._pending: List[Plan] = []
        self._scored: List[Tuple[float, Plan]] = []
        self._mutator = AnnealingDriver(seed=0)

    def _crossover(self, env: AugmentationEnv, pa: Plan, pb: Plan) -> Plan:
        cut_a = self._rng.randint(0, len(pa))
        cut_b = self._rng.randint(0, len(pb))
        merged: List[int] = []
        for pos in pa[:cut_a] + pb[cut_b:]:
            if pos not in merged:
                merged.append(pos)
        child = tuple(merged[: env.max_k])
        if not child:
            return self._random_plan(env, max_len=2)
        return child

    def _next_generation(self, env: AugmentationEnv) -> List[Plan]:
        ranked = sorted(self._scored, key=lambda sf: (sf[0], sf[1]))
        elite = [plan for _, plan in ranked[:2]]
        children: List[Plan] = list(elite)
        while len(children) < self.population:
            parents: List[Plan] = []
            for _ in range(2):
                i, j = self._rng.sample(range(len(ranked)), 2)
                parents.append(
                    ranked[i][1] if ranked[i][0] <= ranked[j][0] else ranked[j][1]
                )
            child = self._crossover(env, parents[0], parents[1])
            if self._rng.random() < self.mutation_rate:
                self._mutator._rng = self._rng
                child = self._mutator._mutate(env, child)
            children.append(child)
        self._scored = []
        return children

    def propose(self, env: AugmentationEnv) -> Optional[Plan]:
        if self._baseline is None:
            self._baseline = env.baseline
            self._best_final = env.baseline
        if self.evals >= self.budget or env.num_candidates == 0:
            return None
        if not self._pending:
            if not self._scored:
                self._pending = [
                    self._random_plan(env, max_len=3)
                    for _ in range(self.population)
                ]
            else:
                self._pending = self._next_generation(env)
        return self._pending.pop(0)

    def observe(self, plan: Plan, exposures: Tuple[float, ...]) -> None:
        self.evals += 1
        final = self._final(exposures, self._baseline)
        self._consider(plan, exposures, final)
        self._scored.append((final, plan))


def _safe_exp(x: float) -> float:
    import math

    try:
        return math.exp(x)
    except OverflowError:
        return 0.0 if x < 0 else float("inf")


#: Registered driver factories, keyed by canonical name.
DRIVERS = {
    "greedy": GreedyDriver,
    "anneal": AnnealingDriver,
    "evolutionary": EvolutionaryDriver,
    "random": RandomBaselineDriver,
}

_ALIASES = {
    "greedy": "greedy",
    "anneal": "anneal",
    "annealing": "anneal",
    "simulated-annealing": "anneal",
    "sa": "anneal",
    "evolutionary": "evolutionary",
    "evolve": "evolutionary",
    "ga": "evolutionary",
    "genetic": "evolutionary",
    "random": "random",
    "random-baseline": "random",
}


def canonical_driver(name: str) -> str:
    """Resolve a driver alias to its canonical registry name."""
    canon = _ALIASES.get(name.strip().lower())
    if canon is None:
        known = ", ".join(sorted(DRIVERS))
        raise ValueError(f"unknown driver {name!r} (known: {known})")
    return canon


def make_driver(
    spec: Union[str, Driver],
    seed: int = 0,
    **params,
) -> Driver:
    """Build a driver from a name/alias, or pass an instance through."""
    if not isinstance(spec, str):
        return spec
    return DRIVERS[canonical_driver(spec)](seed=seed, **params)


def run_driver(env: AugmentationEnv, driver: Driver) -> AugmentationResult:
    """Drive the propose/observe loop to completion and package the
    driver's best plan as an :class:`AugmentationResult`."""
    while True:
        plan = driver.propose(env)
        if plan is None:
            break
        exposures = env.evaluate(plan)
        driver.observe(tuple(plan), exposures)
    best_plan, best_exposures = driver.best()
    return env.result(best_plan, best_exposures, driver.name)
