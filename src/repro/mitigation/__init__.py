"""Risk mitigation and performance optimization (§5).

* :mod:`repro.mitigation.robustness` — §5.1: reroute around the most
  heavily shared conduits using existing conduits only (path inflation /
  shared-risk reduction).
* :mod:`repro.mitigation.peering` — §5.1, Table 5: which providers make
  the best risk-reducing peers.
* :mod:`repro.mitigation.augmentation` — §5.2: add up to *k* new conduits
  along unused rights-of-way to maximize global risk reduction.
* :mod:`repro.mitigation.latency` — §5.3: propagation-delay analysis
  (existing paths vs best ROW path vs line of sight).
* :mod:`repro.mitigation.drivers` — pluggable optimizer drivers
  (greedy / anneal / evolutionary / random) over the §5.2 environment.
"""

from repro.mitigation.augmentation import (
    AugmentationResult,
    candidate_new_edges,
    improvement_curve,
    improvement_curves,
)
from repro.mitigation.drivers import (
    DRIVERS,
    AugmentationEnv,
    Driver,
    canonical_driver,
    make_driver,
    run_driver,
)
from repro.mitigation.latency import LatencyStudy, PairDelays, latency_study
from repro.mitigation.peering import peering_suggestions
from repro.mitigation.robustness import (
    RobustnessSuggestion,
    SuggestionOutcome,
    optimize_isp_around_conduits,
)

__all__ = [
    "RobustnessSuggestion",
    "SuggestionOutcome",
    "optimize_isp_around_conduits",
    "peering_suggestions",
    "candidate_new_edges",
    "improvement_curve",
    "improvement_curves",
    "AugmentationResult",
    "AugmentationEnv",
    "Driver",
    "DRIVERS",
    "canonical_driver",
    "make_driver",
    "run_driver",
    "latency_study",
    "LatencyStudy",
    "PairDelays",
]
