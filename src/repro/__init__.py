"""InterTubes reproduction: the US long-haul fiber-optic infrastructure.

A full reimplementation of *InterTubes: A Study of the US Long-haul
Fiber-optic Infrastructure* (SIGCOMM 2015): map construction from
published provider maps and public records (§2), geography analysis
against transportation infrastructure (§3), shared-risk assessment with
traceroute overlay (§4), and risk/latency mitigation (§5).

Quick start::

    from repro import us2015
    scenario = us2015()
    print(scenario.constructed_map.stats())
    print(scenario.risk_matrix.isp_average_risk("Level 3"))

Other map universes load through the family registry
(:mod:`repro.families`)::

    from repro import load_scenario
    global_map = load_scenario("global2023")
    print(global_map.constructed_map.stats())

Subpackages: :mod:`repro.geo` (geospatial substrate), :mod:`repro.data`
(cities / corridors / providers), :mod:`repro.transport` (rights-of-way),
:mod:`repro.fibermap` (map model + §2 pipeline), :mod:`repro.traceroute`
(§4.3 substrate), :mod:`repro.risk` (§4), :mod:`repro.mitigation` (§5),
:mod:`repro.analysis` (§3 + reporting), :mod:`repro.experiments` (every
table and figure).
"""

from repro.fibermap import (
    Conduit,
    FiberMap,
    GroundTruth,
    Link,
    MapConstructionPipeline,
    MapStats,
    Node,
    synthesize_ground_truth,
)
from repro.families import MapFamily, family_names, get_family
from repro.risk import RiskMatrix
from repro.scenario import Scenario, ScenarioConfig, load_scenario, us2015

__version__ = "1.0.0"

__all__ = [
    "us2015",
    "load_scenario",
    "Scenario",
    "ScenarioConfig",
    "MapFamily",
    "get_family",
    "family_names",
    "FiberMap",
    "Conduit",
    "Link",
    "Node",
    "MapStats",
    "GroundTruth",
    "synthesize_ground_truth",
    "MapConstructionPipeline",
    "RiskMatrix",
    "__version__",
]
