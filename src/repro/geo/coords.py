"""Geographic coordinates and great-circle geometry.

All distances are in kilometers, all angles in degrees unless stated
otherwise.  The paper computes actual route lengths from the detailed
geography of long-haul routes (§7) and converts distance to one-way
propagation delay using the speed of light in fiber (refractive index
~1.468, see reference [32] of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius used for all great-circle computations.
EARTH_RADIUS_KM = 6371.0088

#: Speed of light in vacuum, km per millisecond.
LIGHT_SPEED_KM_PER_MS = 299.792458

#: Group refractive index of standard single-mode fiber (paper ref. [32]).
FIBER_REFRACTIVE_INDEX = 1.468

#: Kilometers of fiber traversed per millisecond of one-way delay.
FIBER_KM_PER_MS = LIGHT_SPEED_KM_PER_MS / FIBER_REFRACTIVE_INDEX


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface (WGS-84 latitude / longitude).

    Instances are immutable and hashable so they can be used as graph
    node keys and set members.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to *other* in kilometers."""
        return haversine_km(self, other)

    def as_tuple(self) -> tuple:
        return (self.lat, self.lon)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lat:.4f}, {self.lon:.4f})"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points (haversine formula)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    sin_dphi = math.sin(dphi / 2.0)
    sin_dlam = math.sin(dlam / 2.0)
    h = sin_dphi * sin_dphi + math.cos(phi1) * math.cos(phi2) * sin_dlam * sin_dlam
    # Clamp against floating point drift before the asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial bearing from *a* to *b*, degrees clockwise from north in [0, 360)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    theta = math.degrees(math.atan2(y, x))
    result = theta % 360.0
    # Float modulo of a tiny negative angle can yield exactly 360.0.
    return 0.0 if result >= 360.0 else result


def destination_point(origin: GeoPoint, bearing: float, distance_km: float) -> GeoPoint:
    """Point reached by travelling *distance_km* from *origin* on *bearing*."""
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    lon = math.degrees(lam2)
    # Normalize longitude into [-180, 180].
    lon = (lon + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


def great_circle_interpolate(a: GeoPoint, b: GeoPoint, fraction: float) -> GeoPoint:
    """Point a given *fraction* of the way along the great circle from a to b.

    ``fraction`` = 0 yields *a*, 1 yields *b*.  Uses spherical linear
    interpolation, falling back to *a* for coincident points.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    if fraction == 0.0:
        return a
    if fraction == 1.0:
        return b
    phi1, lam1 = math.radians(a.lat), math.radians(a.lon)
    phi2, lam2 = math.radians(b.lat), math.radians(b.lon)
    delta = haversine_km(a, b) / EARTH_RADIUS_KM
    if delta < 1e-12:
        return a
    sin_delta = math.sin(delta)
    w1 = math.sin((1.0 - fraction) * delta) / sin_delta
    w2 = math.sin(fraction * delta) / sin_delta
    x = w1 * math.cos(phi1) * math.cos(lam1) + w2 * math.cos(phi2) * math.cos(lam2)
    y = w1 * math.cos(phi1) * math.sin(lam1) + w2 * math.cos(phi2) * math.sin(lam2)
    z = w1 * math.sin(phi1) + w2 * math.sin(phi2)
    phi = math.atan2(z, math.sqrt(x * x + y * y))
    lam = math.atan2(y, x)
    return GeoPoint(math.degrees(phi), math.degrees(lam))


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Great-circle midpoint of *a* and *b*."""
    return great_circle_interpolate(a, b, 0.5)


def fiber_delay_ms(distance_km: float) -> float:
    """One-way propagation delay over *distance_km* of fiber, milliseconds."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative: {distance_km}")
    return distance_km / FIBER_KM_PER_MS
