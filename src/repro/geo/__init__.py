"""Geospatial substrate: great-circle math, polylines, spatial indexing.

This subpackage replaces the geographic machinery the paper obtained from
ArcGIS [30]: distance computation along fiber routes, point-to-corridor
distances, and buffer ("polygon overlap") analysis between fiber paths and
transportation infrastructure.
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    LIGHT_SPEED_KM_PER_MS,
    GeoPoint,
    bearing_deg,
    destination_point,
    fiber_delay_ms,
    great_circle_interpolate,
    haversine_km,
    midpoint,
)
from repro.geo.grid import SpatialGridIndex
from repro.geo.overlap import CorridorIndex, colocated_fraction, overlap_profile
from repro.geo.polyline import Polyline
from repro.geo.projection import LocalProjection

__all__ = [
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS",
    "LIGHT_SPEED_KM_PER_MS",
    "GeoPoint",
    "bearing_deg",
    "destination_point",
    "fiber_delay_ms",
    "great_circle_interpolate",
    "haversine_km",
    "midpoint",
    "Polyline",
    "LocalProjection",
    "SpatialGridIndex",
    "CorridorIndex",
    "colocated_fraction",
    "overlap_profile",
]
