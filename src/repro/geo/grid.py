"""A lat/lon bucket grid index over polyline segments.

Buffer-overlap analysis asks, for thousands of sample points, "is there a
road or rail segment within D km of this point?".  A uniform grid over
latitude/longitude keeps that query local instead of scanning every
segment of every corridor.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.polyline import Polyline
from repro.geo.projection import point_segment_distance_km

CellKey = Tuple[int, int]
Segment = Tuple[GeoPoint, GeoPoint, Hashable]


class SpatialGridIndex:
    """Uniform lat/lon grid holding tagged polyline segments.

    Parameters
    ----------
    cell_deg:
        Grid cell size in degrees.  0.5 degrees (~55 km N-S) is a good
        default for corridor-scale queries.
    """

    def __init__(self, cell_deg: float = 0.5):
        if cell_deg <= 0:
            raise ValueError(f"cell size must be positive: {cell_deg}")
        self.cell_deg = cell_deg
        self._cells: Dict[CellKey, List[Segment]] = defaultdict(list)
        self._count = 0

    # ------------------------------------------------------------------
    def _cell_of(self, point: GeoPoint) -> CellKey:
        return (
            int(math.floor(point.lat / self.cell_deg)),
            int(math.floor(point.lon / self.cell_deg)),
        )

    def _cells_for_segment(self, a: GeoPoint, b: GeoPoint) -> Set[CellKey]:
        """All cells a segment may touch (bounding box of its endpoints)."""
        ra, ca = self._cell_of(a)
        rb, cb = self._cell_of(b)
        return {
            (r, c)
            for r in range(min(ra, rb), max(ra, rb) + 1)
            for c in range(min(ca, cb), max(ca, cb) + 1)
        }

    # ------------------------------------------------------------------
    def insert_segment(self, a: GeoPoint, b: GeoPoint, tag: Hashable) -> None:
        """Insert one segment with an arbitrary hashable *tag*."""
        seg: Segment = (a, b, tag)
        for key in self._cells_for_segment(a, b):
            self._cells[key].append(seg)
        self._count += 1

    def insert_polyline(self, line: Polyline, tag: Hashable) -> None:
        """Insert every segment of *line* under *tag*."""
        for a, b in line.segments():
            self.insert_segment(a, b, tag)

    def __len__(self) -> int:
        """Number of segments inserted (not counting multi-cell duplicates)."""
        return self._count

    # ------------------------------------------------------------------
    def _candidate_segments(self, point: GeoPoint, radius_km: float) -> Iterable[Segment]:
        """Segments in all cells within *radius_km* of *point* (deduplicated)."""
        # Convert the radius to a conservative cell ring count.  A degree of
        # latitude is ~111 km; longitude degrees shrink with latitude, so use
        # the latitude bound which is the tighter one and pad by one ring.
        ring = int(math.ceil(radius_km / (111.0 * self.cell_deg))) + 1
        r0, c0 = self._cell_of(point)
        seen: Set[int] = set()
        for r in range(r0 - ring, r0 + ring + 1):
            for c in range(c0 - ring, c0 + ring + 1):
                for seg in self._cells.get((r, c), ()):
                    ident = id(seg)
                    if ident not in seen:
                        seen.add(ident)
                        yield seg

    def nearest_distance_km(
        self, point: GeoPoint, radius_km: float, tags: Set[Hashable] = None
    ) -> float:
        """Distance to the nearest indexed segment within *radius_km*.

        Returns ``math.inf`` when nothing lies within the radius.  When
        *tags* is given, only segments whose tag is in the set count.
        """
        best = math.inf
        for a, b, tag in self._candidate_segments(point, radius_km):
            if tags is not None and tag not in tags:
                continue
            # Cheap rejection: if both endpoints are far beyond radius + best,
            # skip the exact projection.
            if (
                haversine_km(point, a) - haversine_km(a, b) > min(best, radius_km)
            ):
                continue
            d = point_segment_distance_km(point, a, b)
            if d < best:
                best = d
        return best if best <= radius_km else math.inf

    def within(self, point: GeoPoint, radius_km: float) -> Set[Hashable]:
        """Tags of all segments within *radius_km* of *point*.

        The candidate segments are grouped per tag and evaluated with the
        vectorized point-to-segments kernel (this is the hot path of the
        §3 buffer-overlap analysis).
        """
        import numpy as np

        from repro.geo.vectorized import segment_distances_km

        segments = list(self._candidate_segments(point, radius_km))
        if not segments:
            return set()
        lat_a = np.fromiter((s[0].lat for s in segments), dtype=float)
        lon_a = np.fromiter((s[0].lon for s in segments), dtype=float)
        lat_b = np.fromiter((s[1].lat for s in segments), dtype=float)
        lon_b = np.fromiter((s[1].lon for s in segments), dtype=float)
        distances = segment_distances_km(point, lat_a, lon_a, lat_b, lon_b)
        hits: Set[Hashable] = set()
        for index in np.nonzero(distances <= radius_km)[0]:
            hits.add(segments[index][2])
        return hits
