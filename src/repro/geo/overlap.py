"""Buffer-overlap analysis between fiber routes and transport corridors.

The paper uses "the polygon overlap analysis capability in ArcGIS [30] to
quantify the correspondence between physical links and transportation
infrastructure" (§3).  We reproduce the same measurement: sample each fiber
route densely and compute the fraction of samples lying within a buffer of
the corridor geometry of each infrastructure kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.geo.coords import GeoPoint
from repro.geo.grid import SpatialGridIndex
from repro.geo.polyline import Polyline

#: Default buffer: the paper does not publish its exact buffer width; conduits
#: laid "along" a highway ROW sit within a few hundred meters of it, but our
#: synthetic corridor geometry is city-waypoint scale, so a wider buffer that
#: captures "same corridor" is appropriate.
DEFAULT_BUFFER_KM = 15.0

#: Sampling density along fiber routes.
DEFAULT_SAMPLE_SPACING_KM = 10.0


class CorridorIndex:
    """Spatial index over corridor geometry, one tag per infrastructure kind.

    Kinds are free-form strings, e.g. ``"road"``, ``"rail"``, ``"pipeline"``.
    """

    def __init__(self, cell_deg: float = 0.5):
        self._grid = SpatialGridIndex(cell_deg=cell_deg)
        self._kinds: set = set()

    @property
    def kinds(self) -> frozenset:
        return frozenset(self._kinds)

    def add(self, line: Polyline, kind: str) -> None:
        """Index one corridor polyline under infrastructure *kind*."""
        self._kinds.add(kind)
        self._grid.insert_polyline(line, kind)

    def add_many(self, lines: Iterable[Polyline], kind: str) -> None:
        for line in lines:
            self.add(line, kind)

    def kinds_near(self, point: GeoPoint, radius_km: float) -> frozenset:
        """Infrastructure kinds with geometry within *radius_km* of *point*."""
        return frozenset(self._grid.within(point, radius_km))


@dataclass(frozen=True)
class OverlapProfile:
    """Per-kind co-location fractions for one fiber route.

    ``fractions[kind]`` is the fraction of route samples within the buffer
    of that kind; ``any_fraction`` uses the union of all kinds;
    ``union_fractions`` holds exact per-sample unions for the kind
    combinations requested at computation time.
    """

    fractions: Mapping[str, float]
    any_fraction: float
    samples: int
    union_fractions: Optional[Mapping[frozenset, float]] = field(default=None)

    def fraction(self, kind: str) -> float:
        return self.fractions.get(kind, 0.0)

    def union(self, *kinds: str) -> float:
        """Exact fraction of samples within the buffer of ANY given kind.

        The combination must have been requested via ``unions=`` when the
        profile was computed.
        """
        key = frozenset(kinds)
        if self.union_fractions is None or key not in self.union_fractions:
            raise KeyError(f"union {sorted(key)} was not computed")
        return self.union_fractions[key]


def overlap_profile(
    route: Polyline,
    index: CorridorIndex,
    buffer_km: float = DEFAULT_BUFFER_KM,
    spacing_km: float = DEFAULT_SAMPLE_SPACING_KM,
    unions: Iterable[Tuple[str, ...]] = (("road", "rail"),),
) -> OverlapProfile:
    """Compute the co-location profile of one fiber *route*.

    Mirrors the ArcGIS buffer-overlap measurement: resample the route at
    ``spacing_km`` and test each sample against each corridor kind's
    buffer of width ``buffer_km``.  ``unions`` lists kind combinations
    whose exact per-sample union fraction should also be computed (the
    paper's "Rail and Road" series).
    """
    samples = route.resample(spacing_km)
    counts: Dict[str, int] = {kind: 0 for kind in index.kinds}
    union_keys = [frozenset(u) for u in unions]
    union_counts: Dict[frozenset, int] = {key: 0 for key in union_keys}
    any_count = 0
    for point in samples:
        near = index.kinds_near(point, buffer_km)
        if near:
            any_count += 1
        for kind in near:
            counts[kind] += 1
        for key in union_keys:
            if near & key:
                union_counts[key] += 1
    n = len(samples)
    fractions = {kind: counts[kind] / n for kind in counts}
    return OverlapProfile(
        fractions=fractions,
        any_fraction=any_count / n,
        samples=n,
        union_fractions={key: union_counts[key] / n for key in union_keys},
    )


def colocated_fraction(
    route: Polyline,
    index: CorridorIndex,
    kind: str,
    buffer_km: float = DEFAULT_BUFFER_KM,
    spacing_km: float = DEFAULT_SAMPLE_SPACING_KM,
) -> float:
    """Fraction of *route* co-located with corridors of one *kind*."""
    return overlap_profile(route, index, buffer_km, spacing_km).fraction(kind)


#: Float round-off tolerance for fractions that were averaged or summed
#: before binning.
_ROUNDOFF_EPS = 1e-9


def histogram(values: Iterable[float], bins: int = 10) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    """Histogram over [0, 1] used for the paper's Figure 4.

    Returns (bin_left_edges, counts).  Values equal to 1.0 fall in the
    last bin; values within ``1e-9`` outside [0, 1] are clamped (float
    round-off from averaging), anything farther out still raises.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts = [0] * bins
    for v in values:
        if -_ROUNDOFF_EPS <= v < 0.0:
            v = 0.0
        elif 1.0 < v <= 1.0 + _ROUNDOFF_EPS:
            v = 1.0
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"co-location fraction out of [0,1]: {v}")
        idx = min(int(v * bins), bins - 1)
        counts[idx] += 1
    edges = tuple(i / bins for i in range(bins))
    return edges, tuple(counts)
