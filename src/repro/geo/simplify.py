"""Polyline simplification (Douglas-Peucker).

Conduit geometry is densified to ~20 km points for overlap analysis;
exports (GeoJSON, rendering) rarely need that resolution.  The classic
Douglas-Peucker algorithm reduces point counts while bounding the
maximum deviation from the original route.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geo.coords import GeoPoint
from repro.geo.polyline import Polyline
from repro.geo.projection import point_segment_distance_km


def _douglas_peucker(
    points: Sequence[GeoPoint], tolerance_km: float
) -> List[GeoPoint]:
    if len(points) <= 2:
        return list(points)
    first = points[0]
    last = points[-1]
    worst_index = 0
    worst_distance = -1.0
    for i in range(1, len(points) - 1):
        distance = point_segment_distance_km(points[i], first, last)
        if distance > worst_distance:
            worst_distance = distance
            worst_index = i
    if worst_distance <= tolerance_km:
        return [first, last]
    left = _douglas_peucker(points[: worst_index + 1], tolerance_km)
    right = _douglas_peucker(points[worst_index:], tolerance_km)
    return left[:-1] + right


def simplify_polyline(line: Polyline, tolerance_km: float = 2.0) -> Polyline:
    """Simplified copy of *line*; no point deviates more than the tolerance.

    Endpoints are always preserved, so simplified conduit geometry still
    terminates exactly at its cities.
    """
    if tolerance_km <= 0:
        raise ValueError(f"tolerance must be positive: {tolerance_km}")
    reduced = _douglas_peucker(line.points, tolerance_km)
    if len(reduced) < 2:  # pragma: no cover - DP always keeps endpoints
        reduced = [line.start, line.end]
    return Polyline(reduced)


def simplification_ratio(line: Polyline, tolerance_km: float = 2.0) -> float:
    """Fraction of points removed at the given tolerance."""
    simplified = simplify_polyline(line, tolerance_km)
    if len(line) == 0:
        return 0.0
    return 1.0 - len(simplified) / len(line)
