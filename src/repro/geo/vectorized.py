"""Vectorized geometry kernels (numpy).

The scalar routines in :mod:`repro.geo.coords` are the reference
implementation; these batch versions compute the same quantities over
arrays and back the hot loops of the buffer-overlap analysis.  Every
function is tested against its scalar counterpart.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.geo.coords import EARTH_RADIUS_KM, GeoPoint

Array = np.ndarray


def points_to_arrays(points: Sequence[GeoPoint]) -> Tuple[Array, Array]:
    """Split a point sequence into (lat, lon) arrays in degrees."""
    lats = np.fromiter((p.lat for p in points), dtype=float, count=len(points))
    lons = np.fromiter((p.lon for p in points), dtype=float, count=len(points))
    return lats, lons


def haversine_km_batch(
    lat1: Array, lon1: Array, lat2: Array, lon2: Array
) -> Array:
    """Pairwise (broadcast) great-circle distances in kilometers."""
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlam = np.radians(lon2 - lon1)
    h = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    )
    h = np.clip(h, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))


def pairwise_distance_matrix(points: Sequence[GeoPoint]) -> Array:
    """Full NxN great-circle distance matrix."""
    lats, lons = points_to_arrays(points)
    return haversine_km_batch(
        lats[:, None], lons[:, None], lats[None, :], lons[None, :]
    )


def segment_distances_km(
    point: GeoPoint,
    seg_lat_a: Array,
    seg_lon_a: Array,
    seg_lat_b: Array,
    seg_lon_b: Array,
) -> Array:
    """Distances from one point to many segments (projected plane).

    Vector version of
    :func:`repro.geo.projection.point_segment_distance_km`: all segments
    are projected into the local tangent plane of *point* and the
    clamped point-to-segment distance is evaluated in one shot.
    """
    km_per_deg = np.pi * EARTH_RADIUS_KM / 180.0
    cos_ref = np.cos(np.radians(point.lat))
    ax = (seg_lon_a - point.lon) * km_per_deg * cos_ref
    ay = (seg_lat_a - point.lat) * km_per_deg
    bx = (seg_lon_b - point.lon) * km_per_deg * cos_ref
    by = (seg_lat_b - point.lat) * km_per_deg
    dx = bx - ax
    dy = by - ay
    seg_len_sq = dx * dx + dy * dy
    # Degenerate segments fall back to endpoint distance.
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(
            seg_len_sq > 1e-12,
            -(ax * dx + ay * dy) / seg_len_sq,
            0.0,
        )
    t = np.clip(t, 0.0, 1.0)
    cx = ax + t * dx
    cy = ay + t * dy
    return np.sqrt(cx * cx + cy * cy)


def min_distance_to_segments_km(
    point: GeoPoint,
    seg_lat_a: Array,
    seg_lon_a: Array,
    seg_lat_b: Array,
    seg_lon_b: Array,
) -> float:
    """Minimum distance from one point to many segments (projected plane)."""
    if seg_lat_a.size == 0:
        return float("inf")
    return float(
        np.min(
            segment_distances_km(
                point, seg_lat_a, seg_lon_a, seg_lat_b, seg_lon_b
            )
        )
    )


def path_length_km(points: Sequence[GeoPoint]) -> float:
    """Total great-circle length of a point sequence."""
    if len(points) < 2:
        return 0.0
    lats, lons = points_to_arrays(points)
    legs = haversine_km_batch(lats[:-1], lons[:-1], lats[1:], lons[1:])
    return float(legs.sum())
