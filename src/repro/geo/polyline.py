"""Polylines: the geometry of fiber routes and transportation corridors."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geo.coords import GeoPoint, great_circle_interpolate, haversine_km
from repro.geo.vectorized import (
    haversine_km_batch,
    min_distance_to_segments_km,
    points_to_arrays,
)


class Polyline:
    """An ordered sequence of geographic points with geometric queries.

    Used for conduit geometry, road/rail corridor geometry, and
    traceroute-path geometry.  Immutable once constructed.  Leg lengths
    and point-to-route distances run on vectorized numpy kernels; the
    scalar routines in :mod:`repro.geo.coords` remain the reference.
    """

    __slots__ = ("_points", "_cumulative", "_segment_arrays")

    def __init__(self, points: Iterable[GeoPoint]):
        pts: Tuple[GeoPoint, ...] = tuple(points)
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two points")
        self._points = pts
        lats, lons = points_to_arrays(pts)
        legs = haversine_km_batch(lats[:-1], lons[:-1], lats[1:], lons[1:])
        cumulative: List[float] = [0.0]
        total = 0.0
        for leg in legs.tolist():
            total += leg
            cumulative.append(total)
        self._cumulative = tuple(cumulative)
        #: Per-segment endpoint arrays, shared by every distance query.
        self._segment_arrays = (lats[:-1], lons[:-1], lats[1:], lons[1:])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> Tuple[GeoPoint, ...]:
        return self._points

    @property
    def start(self) -> GeoPoint:
        return self._points[0]

    @property
    def end(self) -> GeoPoint:
        return self._points[-1]

    @property
    def length_km(self) -> float:
        """Total route length in kilometers."""
        return self._cumulative[-1]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[GeoPoint]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polyline) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Polyline({len(self._points)} pts, {self.length_km:.1f} km, "
            f"{self.start}..{self.end})"
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def segments(self) -> Iterator[Tuple[GeoPoint, GeoPoint]]:
        """Iterate over consecutive point pairs."""
        return zip(self._points, self._points[1:])

    def reversed(self) -> "Polyline":
        return Polyline(reversed(self._points))

    def point_at_km(self, distance_km: float) -> GeoPoint:
        """The point *distance_km* along the route from its start.

        Values are clamped to the route extent.
        """
        if distance_km <= 0.0:
            return self.start
        if distance_km >= self.length_km:
            return self.end
        # Binary search over the cumulative distance table.
        lo, hi = 0, len(self._cumulative) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._cumulative[mid] <= distance_km:
                lo = mid
            else:
                hi = mid
        seg_start = self._cumulative[lo]
        seg_len = self._cumulative[hi] - seg_start
        if seg_len < 1e-12:
            return self._points[lo]
        fraction = (distance_km - seg_start) / seg_len
        return great_circle_interpolate(self._points[lo], self._points[hi], fraction)

    def resample(self, spacing_km: float) -> List[GeoPoint]:
        """Sample points along the route every *spacing_km* (endpoints included)."""
        if spacing_km <= 0:
            raise ValueError(f"spacing must be positive: {spacing_km}")
        samples = [self.start]
        d = spacing_km
        while d < self.length_km:
            samples.append(self.point_at_km(d))
            d += spacing_km
        samples.append(self.end)
        return samples

    def distance_to_point_km(self, point: GeoPoint) -> float:
        """Minimum distance from *point* to any segment of the polyline."""
        return min_distance_to_segments_km(point, *self._segment_arrays)

    def concat(self, other: "Polyline") -> "Polyline":
        """Join two polylines; *other* must start where this one ends."""
        if other.start != self.end:
            raise ValueError("polylines are not contiguous")
        return Polyline(self._points + other._points[1:])

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_lat, min_lon, max_lat, max_lon) of the route."""
        lats = [p.lat for p in self._points]
        lons = [p.lon for p in self._points]
        return (min(lats), min(lons), max(lats), max(lons))


def straightness(line: Polyline) -> float:
    """Ratio of endpoint great-circle distance to route length, in (0, 1].

    1.0 means the route follows the line of sight exactly; lower values
    indicate circuitous deployment (the paper's §5.3 contrast between
    deployed routes, rights-of-way, and line-of-sight).
    """
    direct = haversine_km(line.start, line.end)
    if line.length_km < 1e-9:
        return 1.0
    return min(1.0, direct / line.length_km)


def polyline_through(points: Sequence[GeoPoint], waypoints_per_segment: int = 0) -> Polyline:
    """Build a polyline through *points*, optionally densified.

    ``waypoints_per_segment`` extra great-circle points are inserted into
    each consecutive pair, which makes buffer-overlap analysis smoother.
    """
    if waypoints_per_segment < 0:
        raise ValueError("waypoints_per_segment must be >= 0")
    if waypoints_per_segment == 0:
        return Polyline(points)
    dense: List[GeoPoint] = []
    for a, b in zip(points, points[1:]):
        dense.append(a)
        for i in range(1, waypoints_per_segment + 1):
            fraction = i / (waypoints_per_segment + 1)
            dense.append(great_circle_interpolate(a, b, fraction))
    dense.append(points[-1])
    return Polyline(dense)
