"""Local equirectangular projection.

For distances at conduit scale (tens to a few hundred kilometers) a local
equirectangular projection around a reference latitude is accurate to well
under one percent, and it turns point-to-segment distance into plain 2-D
geometry.  This is how we replace ArcGIS's planar overlay operations.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.geo.coords import EARTH_RADIUS_KM, GeoPoint

XY = Tuple[float, float]


class LocalProjection:
    """Projects lat/lon into a local tangent x/y plane (kilometers).

    ``x`` grows eastward, ``y`` northward.  The projection is centered on
    a reference point so that distortion stays small over the region of
    interest.
    """

    def __init__(self, reference: GeoPoint):
        self.reference = reference
        self._cos_ref = math.cos(math.radians(reference.lat))
        self._km_per_deg = math.pi * EARTH_RADIUS_KM / 180.0

    def to_xy(self, point: GeoPoint) -> XY:
        """Project *point* to local (x, y) kilometers."""
        dx = (point.lon - self.reference.lon) * self._km_per_deg * self._cos_ref
        dy = (point.lat - self.reference.lat) * self._km_per_deg
        return (dx, dy)

    def to_xy_many(self, points: Iterable[GeoPoint]) -> List[XY]:
        return [self.to_xy(p) for p in points]

    def to_geo(self, xy: XY) -> GeoPoint:
        """Inverse projection from local (x, y) kilometers back to lat/lon."""
        x, y = xy
        lat = self.reference.lat + y / self._km_per_deg
        lon = self.reference.lon + x / (self._km_per_deg * self._cos_ref)
        return GeoPoint(lat, lon)


def point_segment_distance_km(
    point: GeoPoint, seg_a: GeoPoint, seg_b: GeoPoint
) -> float:
    """Distance from *point* to the segment ``seg_a -> seg_b`` in km.

    Computed in a local projection centered on the query point, which is
    accurate for the corridor-scale distances this library deals with.
    """
    proj = LocalProjection(point)
    ax, ay = proj.to_xy(seg_a)
    bx, by = proj.to_xy(seg_b)
    # Query point is the projection origin.
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq < 1e-12:
        return math.hypot(ax, ay)
    # Parameter of the closest point on the infinite line, clamped to [0,1].
    t = -(ax * dx + ay * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(cx, cy)
