"""Sweep grids: parse axis specs, expand them into frozen cells.

A sweep runs the §4/§5 statistic battery over a cartesian grid of
scenario and optimizer parameters.  Axes arrive as ``KEY=SPEC`` strings
(the CLI's repeatable ``--grid`` flag):

* ``seed=2015..2024`` — inclusive integer range
* ``seed=2015,2019,2023`` — explicit list
* ``driver=greedy,anneal`` — optimizer drivers (aliases resolve)
* ``family=us2015,global2023`` — map families (registry-validated)
* ``traces=2000`` / ``max_k=4`` / ``driver_seed=0..2`` — scalars/ranges
* ``rng_contract=1,2`` — campaign RNG contract versions (validated)

Expansion is deterministic: axes iterate in canonical order and cells
come out in row-major cartesian order, so the same grid spec always
produces the same cell sequence (and therefore the same sweep manifest
shape).  Unknown axis names raise :class:`UnknownAxisError` from both
the parser and the expander — a typo'd axis can never silently produce
an empty or misconfigured grid.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.families import DEFAULT_FAMILY, get_family
from repro.mitigation.drivers import canonical_driver
from repro.traceroute.rngv2 import (
    SUPPORTED_RNG_CONTRACTS,
    default_rng_contract,
)

#: Canonical axis order — also the cartesian expansion order.  ``family``
#: and ``rng_contract`` sit last so pre-registry grids keep their
#: historical cell order.
AXIS_ORDER = (
    "seed", "traces", "max_k", "driver", "driver_seed", "family",
    "rng_contract",
)

_INT_AXES = frozenset({"seed", "traces", "max_k", "driver_seed", "rng_contract"})

#: Default campaign size per cell: big enough for a stable risk matrix,
#: small enough that a cell is dominated by map construction.
DEFAULT_CELL_TRACES = 2000


class UnknownAxisError(ValueError):
    """A sweep axis name outside :data:`AXIS_ORDER`.

    Carries the offending name (``.axis``) and the valid names
    (``.valid_axes``) so frontends can render a structured error.
    """

    def __init__(self, axis: str):
        self.axis = axis
        self.valid_axes = AXIS_ORDER
        super().__init__(
            f"unknown sweep axis {axis!r} (valid axes: "
            f"{', '.join(AXIS_ORDER)})"
        )


@dataclass(frozen=True)
class SweepCell:
    """One point of the sweep grid — a frozen scenario + driver choice."""

    seed: int
    traces: int = DEFAULT_CELL_TRACES
    max_k: int = 4
    driver: str = "greedy"
    driver_seed: int = 0
    family: str = DEFAULT_FAMILY
    rng_contract: int = field(default_factory=default_rng_contract)

    @property
    def label(self) -> str:
        prefix = "" if self.family == DEFAULT_FAMILY else f"{self.family} "
        return (
            f"{prefix}seed={self.seed} driver={self.driver}"
            f"/{self.driver_seed} traces={self.traces} k={self.max_k}"
            f" rng=v{self.rng_contract}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _check_contracts(key: str, values: List[int]) -> List[int]:
    if key == "rng_contract":
        bad = [v for v in values if v not in SUPPORTED_RNG_CONTRACTS]
        if bad:
            raise ValueError(
                f"unsupported rng_contract {bad[0]} (supported: "
                f"{', '.join(map(str, SUPPORTED_RNG_CONTRACTS))})"
            )
    return values


def _parse_values(key: str, spec: str) -> List[Any]:
    """The value list for one axis spec (range, list, or scalar)."""
    spec = spec.strip()
    if not spec:
        raise ValueError(f"empty value for sweep axis {key!r}")
    if key in _INT_AXES and ".." in spec:
        lo_s, _, hi_s = spec.partition("..")
        try:
            lo, hi = int(lo_s), int(hi_s)
        except ValueError:
            raise ValueError(
                f"bad range for sweep axis {key!r}: {spec!r}"
            ) from None
        if hi < lo:
            raise ValueError(f"descending range for sweep axis {key!r}: {spec!r}")
        return _check_contracts(key, list(range(lo, hi + 1)))
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    if key in _INT_AXES:
        try:
            values = [int(p) for p in parts]
        except ValueError:
            raise ValueError(
                f"non-integer value for sweep axis {key!r}: {spec!r}"
            ) from None
        return _check_contracts(key, values)
    if key == "driver":
        return [canonical_driver(p) for p in parts]
    if key == "family":
        # Registry lookup raises UnknownFamilyError on a bad name.
        return [get_family(p).name for p in parts]
    raise AssertionError(key)  # pragma: no cover - guarded by caller


def parse_grid(specs: Sequence[str]) -> Dict[str, List[Any]]:
    """``KEY=SPEC`` strings → axis-name → value list.

    Later specs for the same axis replace earlier ones (so a CLI
    default can be overridden by an explicit ``--grid``).
    """
    axes: Dict[str, List[Any]] = {}
    for spec in specs:
        key, sep, value = spec.partition("=")
        key = key.strip().lower()
        if not sep:
            raise ValueError(f"sweep axis must be KEY=SPEC, got {spec!r}")
        if key not in AXIS_ORDER:
            raise UnknownAxisError(key)
        values = _parse_values(key, value)
        deduped = list(dict.fromkeys(values))
        axes[key] = deduped
    return axes


def expand_grid(axes: Dict[str, List[Any]]) -> List[SweepCell]:
    """Cartesian expansion of *axes* into cells, row-major in
    :data:`AXIS_ORDER`.  ``seed`` is the only required axis; axis names
    outside :data:`AXIS_ORDER` raise :class:`UnknownAxisError` (they
    previously vanished silently from the expansion)."""
    unknown = sorted(set(axes) - set(AXIS_ORDER))
    if unknown:
        raise UnknownAxisError(unknown[0])
    if "seed" not in axes or not axes["seed"]:
        raise ValueError("a sweep grid needs at least one seed")
    ordered: List[Tuple[str, List[Any]]] = [
        (key, axes[key]) for key in AXIS_ORDER if key in axes
    ]
    cells = []
    for combo in itertools.product(*(values for _, values in ordered)):
        cells.append(SweepCell(**dict(zip((k for k, _ in ordered), combo))))
    return cells
