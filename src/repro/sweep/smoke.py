"""Sweep orchestrator CI smoke: ``python -m repro.sweep.smoke``.

Runs a tiny 2×2 grid (two seeds × greedy/random) over a process pool
with a temporary shared cache root and asserts the properties the
sweep layer guarantees:

* every cell completes ``ok`` and carries its own RunManifest;
* shared-cache dedup is observable — cells reuse stage artifacts that
  other cells (possibly concurrently, via the single-flight key lock)
  built, yielding at least one cross-cell hit;
* the columnar summary aggregates gain per driver across cells;
* the per-sweep manifest round-trips through ``RunManifest.write``.

Exit code 0 on success; any failed assertion prints and exits 1.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path


def main() -> int:
    from repro.obs.manifest import RunManifest
    from repro.sweep import expand_grid, parse_grid, run_sweep

    axes = parse_grid(
        ["seed=2015..2016", "driver=greedy,random", "max_k=2"]
    )
    cells = expand_grid(axes)
    assert len(cells) == 4, f"expected a 2x2 grid, got {len(cells)} cells"
    with tempfile.TemporaryDirectory(prefix="repro-sweep-smoke-") as root:
        result = run_sweep(
            cells,
            isps=["Telia", "Tata"],
            cache=root,
            workers=2,
        )
        failures = []
        for cell in result.cells:
            label = (
                f"seed={cell['cell']['seed']} driver={cell['cell']['driver']}"
            )
            if not cell["ok"]:
                failures.append(f"cell {label} failed:\n{cell['error']}")
                continue
            manifest = cell.get("manifest")
            if not manifest or not manifest.get("spans"):
                failures.append(f"cell {label} has no per-cell manifest spans")
            metrics = cell["metrics"]
            if set(metrics["gains"]) != {"Telia", "Tata"}:
                failures.append(f"cell {label} gains missing ISPs: {metrics['gains']}")
        dedup = result.cache_dedup()
        if dedup["cross_cell_hits"] < 1:
            failures.append(f"no cross-cell cache dedup observed: {dedup}")
        aggregates = result.aggregates
        per_driver = aggregates.get("gain_per_driver") or {}
        if set(per_driver) != {"greedy", "random"}:
            failures.append(f"missing per-driver aggregates: {sorted(per_driver)}")
        manifest_path = Path(root) / "sweep_manifest.json"
        result.write_manifest(manifest_path)
        loaded = RunManifest.load(manifest_path)
        cell_spans = [s for s in loaded.spans if s["name"] == "sweep.cell"]
        if len(cell_spans) != 4:
            failures.append(
                f"sweep manifest should carry 4 sweep.cell spans, "
                f"got {len(cell_spans)}"
            )
        if "cache_dedup" not in loaded.meta:
            failures.append("sweep manifest meta lacks cache_dedup accounting")
        if len(loaded.meta.get("cell_manifests") or []) != 4:
            failures.append("sweep manifest should embed 4 cell manifests")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"sweep smoke ok: {len(result.cells)} cells in "
            f"{result.total_s:.1f}s (workers=2), dedup "
            f"{dedup['cross_cell_hits']} hit(s) / "
            f"{dedup['coalesced']} coalesced"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
