"""Columnar cross-scenario summary for sweep runs.

Cells stream in one at a time (:meth:`SweepSummary.add`) and land in
parallel column lists — one list per metric, indexed by cell — rather
than a list of nested dicts, so aggregation is a pass over a column and
a finished sweep serializes compactly.  :meth:`SweepSummary.aggregates`
then reduces the columns into the cross-scenario statistics the ISSUE
asks for: the distribution of sharing, of SRR, and of augmentation gain
per driver.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional

#: Cell-level columns carried by the summary, in serialization order.
COLUMNS = (
    "family",
    "seed",
    "traces",
    "max_k",
    "driver",
    "driver_seed",
    "ok",
    "duration_s",
    "cache_hits",
    "cache_misses",
    "mean_gain",
    "max_gain",
    "srr_avg",
    "pi_avg",
    "share_ge2",
    "share_ge3",
    "share_ge4",
    "pool_truncated",
)


def _dist(values: List[float]) -> Optional[Dict[str, float]]:
    """min/mean/median/max over *values* (``None`` when empty)."""
    if not values:
        return None
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "median": statistics.median(values),
        "max": max(values),
        "n": len(values),
    }


class SweepSummary:
    """Streaming columnar accumulator over per-cell results."""

    def __init__(self) -> None:
        self.columns: Dict[str, List[Any]] = {name: [] for name in COLUMNS}
        #: Per-driver final improvement ratios, pooled over (cell, ISP).
        self.gains_by_driver: Dict[str, List[float]] = {}
        self.errors: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.columns["seed"])

    def add(self, cell: Dict[str, Any]) -> None:
        """Fold one cell-result dict (orchestrator shape) into columns."""
        spec = cell["cell"]
        metrics = cell.get("metrics") or {}
        cache = cell.get("cache") or {}
        row = {
            "family": spec.get("family", "us2015"),
            "seed": spec["seed"],
            "traces": spec["traces"],
            "max_k": spec["max_k"],
            "driver": spec["driver"],
            "driver_seed": spec["driver_seed"],
            "ok": bool(cell.get("ok")),
            "duration_s": cell.get("duration_s"),
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
            "mean_gain": metrics.get("mean_gain"),
            "max_gain": metrics.get("max_gain"),
            "srr_avg": metrics.get("srr_avg"),
            "pi_avg": metrics.get("pi_avg"),
            "share_ge2": (metrics.get("sharing") or {}).get(2),
            "share_ge3": (metrics.get("sharing") or {}).get(3),
            "share_ge4": (metrics.get("sharing") or {}).get(4),
            "pool_truncated": metrics.get("pool_truncated", 0),
        }
        for name in COLUMNS:
            self.columns[name].append(row[name])
        if cell.get("ok"):
            pooled = self.gains_by_driver.setdefault(spec["driver"], [])
            pooled.extend((metrics.get("gains") or {}).values())
        else:
            self.errors.append(
                {"cell": dict(spec), "error": cell.get("error")}
            )

    # ------------------------------------------------------------------
    def _ok_column(self, name: str) -> List[float]:
        return [
            value
            for value, ok in zip(self.columns[name], self.columns["ok"])
            if ok and value is not None
        ]

    def _per_seed_first(self, name: str) -> List[float]:
        """One value per distinct (family, seed) scenario (first ok cell
        wins) — sharing and SRR are driver-independent, so duplicating
        them across the driver axis would skew their distributions."""
        seen: Dict[Any, float] = {}
        for family, seed, value, ok in zip(
            self.columns["family"],
            self.columns["seed"],
            self.columns[name],
            self.columns["ok"],
        ):
            if ok and value is not None and (family, seed) not in seen:
                seen[(family, seed)] = value
        return list(seen.values())

    def aggregates(self) -> Dict[str, Any]:
        """Cross-scenario statistics over every streamed cell."""
        return {
            "cells": len(self),
            "cells_ok": sum(1 for ok in self.columns["ok"] if ok),
            "seeds": len(dict.fromkeys(self.columns["seed"])),
            "families": len(dict.fromkeys(self.columns["family"])),
            "gain_per_driver": {
                driver: _dist(gains)
                for driver, gains in sorted(self.gains_by_driver.items())
            },
            "mean_gain_per_driver": {
                driver: _dist(
                    [
                        g
                        for g, d, ok in zip(
                            self.columns["mean_gain"],
                            self.columns["driver"],
                            self.columns["ok"],
                        )
                        if ok and d == driver and g is not None
                    ]
                )
                for driver in sorted(dict.fromkeys(self.columns["driver"]))
            },
            "srr": _dist(self._per_seed_first("srr_avg")),
            "sharing_ge2": _dist(self._per_seed_first("share_ge2")),
            "sharing_ge4": _dist(self._per_seed_first("share_ge4")),
            "duration_s": _dist(self._ok_column("duration_s")),
            "pool_truncated_total": sum(
                v or 0 for v in self.columns["pool_truncated"]
            ),
            "errors": self.errors,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "columns": {name: list(col) for name, col in self.columns.items()},
            "aggregates": self.aggregates(),
        }
