"""Scenario multiverse: grid sweeps over scenarios × optimizer drivers.

* :mod:`repro.sweep.grid` — ``KEY=SPEC`` axis parsing and cartesian
  expansion into frozen :class:`~repro.sweep.grid.SweepCell`\\ s.
* :mod:`repro.sweep.orchestrator` — process-pool fan-out with shared
  artifact-cache dedup, per-cell manifests, a per-sweep manifest.
* :mod:`repro.sweep.summary` — streaming columnar accumulator +
  cross-scenario aggregates (sharing, SRR, gain per driver).
* :mod:`repro.sweep.smoke` — the CI smoke tier
  (``python -m repro.sweep.smoke``).
"""

from repro.sweep.grid import SweepCell, expand_grid, parse_grid
from repro.sweep.orchestrator import SweepResult, run_sweep
from repro.sweep.summary import SweepSummary

__all__ = [
    "SweepCell",
    "expand_grid",
    "parse_grid",
    "run_sweep",
    "SweepResult",
    "SweepSummary",
]
