"""The sweep orchestrator: fan a grid of scenarios × drivers across a
process pool with shared artifact-cache dedup.

Each :class:`~repro.sweep.grid.SweepCell` builds its scenario inside a
worker process under a local tracer, computes the cross-scenario §4/§5
statistics (sharing fractions, SRR, per-driver augmentation gain), and
returns a plain dict: its metrics, its cache hit/miss accounting, and
its own :class:`~repro.obs.manifest.RunManifest`.  The parent streams
finished cells into the columnar :class:`~repro.sweep.summary.
SweepSummary` and records one ``sweep.cell`` span per cell.

Cells sharing a cache root deduplicate work two ways: a cell whose
stage artifacts were already stored by an earlier (or concurrent) cell
fetches instead of building, and the engine's single-flight key lock
(:meth:`~repro.perf.cache.ArtifactCache.single_flight`) collapses
concurrent builds of one artifact into a single build plus re-fetches.
Both show up in the sweep manifest: per-cell ``cache_hits`` and the
``coalesced`` span annotation.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.mitigation.augmentation import improvement_curves
from repro.mitigation.robustness import optimize_all_isps
from repro.obs.manifest import RunManifest
from repro.obs.tracer import Tracer, get_tracer, tracing
from repro.perf.cache import ArtifactCache, normalize_cache_setting
from repro.risk.metrics import sharing_fractions
from repro.scenario import Scenario, ScenarioConfig
from repro.sweep.grid import SweepCell
from repro.sweep.summary import SweepSummary


def _cell_metrics(
    scenario: Scenario,
    cell: SweepCell,
    isps: Optional[Sequence[str]],
) -> Dict[str, Any]:
    """The cross-scenario statistic battery for one cell."""
    fiber_map = scenario.constructed_map
    network = scenario.network
    matrix = scenario.risk_matrix
    substrate = scenario.substrate
    chosen = list(isps) if isps else list(scenario.isps)
    sharing = sharing_fractions(matrix)
    suggestions = optimize_all_isps(
        fiber_map, matrix, substrate=substrate
    )
    srr = [s.avg_srr for s in suggestions.values()]
    pi = [s.avg_pi for s in suggestions.values()]
    curves = improvement_curves(
        fiber_map,
        network,
        chosen,
        max_k=cell.max_k,
        substrate=substrate,
        driver=cell.driver,
        driver_seed=cell.driver_seed,
    )
    gains = {
        isp: result.improvement_ratio(cell.max_k)
        for isp, result in curves.items()
    }
    return {
        "isps": list(curves),
        "gains": gains,
        "mean_gain": sum(gains.values()) / len(gains) if gains else 0.0,
        "max_gain": max(gains.values()) if gains else 0.0,
        "baselines": {
            isp: result.baseline_risk for isp, result in curves.items()
        },
        "srr_avg": sum(srr) / len(srr) if srr else 0.0,
        "pi_avg": sum(pi) / len(pi) if pi else 0.0,
        "sharing": dict(sharing),
        "pool_truncated": sum(r.pool_truncated for r in curves.values()),
    }


def _run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One sweep cell, start to finish, in this process.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; also
    called directly for serial (``workers <= 1``) sweeps.  Never raises:
    failures come back as ``ok=False`` cells so one broken scenario
    cannot poison a thousand-cell sweep.
    """
    cell = SweepCell(**payload["cell"])
    started = time.perf_counter()
    local = Tracer()
    result: Dict[str, Any] = {
        "cell": cell.to_dict(),
        "ok": False,
        "metrics": None,
        "error": None,
        "cache": {"enabled": False, "hits": 0, "misses": 0},
        "duration_s": 0.0,
        "manifest": None,
    }
    config_dict: Optional[Dict[str, Any]] = None
    try:
        with tracing(local):
            with local.span(
                "sweep.cell",
                family=cell.family,
                seed=cell.seed,
                driver=cell.driver,
                driver_seed=cell.driver_seed,
                rng_contract=cell.rng_contract,
            ):
                scenario = Scenario(
                    config=ScenarioConfig(
                        seed=cell.seed,
                        campaign_traces=cell.traces,
                        workers=1,
                        cache=payload.get("cache"),
                        family=cell.family,
                        rng_contract=cell.rng_contract,
                    )
                )
                result["metrics"] = _cell_metrics(
                    scenario, cell, payload.get("isps")
                )
        stats = scenario.cache_stats()
        result["cache"] = {
            "enabled": stats["enabled"],
            "hits": stats["hits"],
            "misses": stats["misses"],
        }
        config_dict = scenario.config.to_dict()
        result["ok"] = True
    except Exception:
        result["error"] = traceback.format_exc(limit=12)
    result["duration_s"] = time.perf_counter() - started
    result["manifest"] = RunManifest.from_tracer(
        local,
        config=config_dict,
        meta={"kind": "sweep-cell", "cell": cell.to_dict()},
    ).to_dict()
    return result


def _count_coalesced(manifest: Optional[Dict[str, Any]]) -> int:
    """How many spans in a cell manifest fetched an artifact another
    process built while they waited on the single-flight lock."""
    if not manifest:
        return 0

    def walk(spans: List[Dict[str, Any]]) -> int:
        total = 0
        for span in spans:
            if (span.get("attrs") or {}).get("coalesced"):
                total += 1
            total += walk(span.get("children") or [])
        return total

    return walk(manifest.get("spans") or [])


@dataclass
class SweepResult:
    """Everything one sweep produced, in cell order."""

    cells: List[Dict[str, Any]]
    summary: SweepSummary
    workers: int
    cache: Union[None, bool, str]
    total_s: float
    aggregates: Dict[str, Any] = field(init=False)

    def __post_init__(self) -> None:
        self.aggregates = self.summary.aggregates()

    @property
    def ok(self) -> bool:
        return all(cell["ok"] for cell in self.cells)

    def cache_dedup(self) -> Dict[str, int]:
        """Cross-cell artifact reuse: fetch hits inside cells (the
        artifact existed before the cell looked — stored by an earlier
        or concurrent cell) and coalesced single-flight builds."""
        return {
            "cross_cell_hits": sum(
                cell["cache"]["hits"] for cell in self.cells
            ),
            "misses": sum(cell["cache"]["misses"] for cell in self.cells),
            "coalesced": sum(
                _count_coalesced(cell.get("manifest")) for cell in self.cells
            ),
        }

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "kind": "sweep",
            "workers": self.workers,
            "cache": self.cache,
            "total_s": self.total_s,
            "cache_dedup": self.cache_dedup(),
            "cells": [
                {k: v for k, v in cell.items() if k != "manifest"}
                for cell in self.cells
            ],
            "summary": self.summary.to_dict(),
        }

    def manifest(self) -> RunManifest:
        """The per-sweep RunManifest: one ``sweep.cell`` span per cell
        (cell manifests embedded in meta), dedup accounting in meta."""
        tracer = Tracer()
        for cell in self.cells:
            tracer.record_span(
                "sweep.cell",
                cell["duration_s"],
                family=cell["cell"].get("family", "us2015"),
                seed=cell["cell"]["seed"],
                driver=cell["cell"]["driver"],
                driver_seed=cell["cell"]["driver_seed"],
                ok=cell["ok"],
                cache_hits=cell["cache"]["hits"],
                cache_misses=cell["cache"]["misses"],
            )
        return RunManifest.from_tracer(
            tracer,
            config={
                "cells": len(self.cells),
                "workers": self.workers,
                "cache": self.cache,
            },
            meta={
                "kind": "sweep",
                "total_s": self.total_s,
                "cache_dedup": self.cache_dedup(),
                "aggregates": self.aggregates,
                "cell_manifests": [cell["manifest"] for cell in self.cells],
            },
        )

    def write_manifest(self, path: Union[str, Path]) -> Path:
        return self.manifest().write(path)


def run_sweep(
    cells: Sequence[SweepCell],
    *,
    isps: Optional[Sequence[str]] = None,
    cache: Any = None,
    workers: int = 1,
    stream: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SweepResult:
    """Run every cell and aggregate the results.

    ``workers <= 1`` runs cells serially in-process; more fans them out
    over a :class:`ProcessPoolExecutor`.  *cache* takes any scenario
    cache setting — a shared on-disk root is what enables cross-cell
    dedup (with ``None`` the environment decides, with ``False`` every
    cell builds everything).  *stream* is called with each cell result
    as it finishes (pool completion order; returned cells keep grid
    order).  Per-cell failures are contained: the sweep always
    completes and failed cells carry their traceback.
    """
    cells = list(cells)
    setting = normalize_cache_setting(cache)
    if isinstance(setting, ArtifactCache):
        setting = str(setting.root)
    payloads = [
        {
            "cell": cell.to_dict(),
            "cache": setting,
            "isps": list(isps) if isps else None,
        }
        for cell in cells
    ]
    started = time.perf_counter()
    results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    if workers <= 1 or len(payloads) <= 1:
        for i, payload in enumerate(payloads):
            result = _run_cell(payload)
            results[i] = result
            if stream is not None:
                stream(result)
    else:
        pool_size = min(workers, len(payloads))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            pending = {
                pool.submit(_run_cell, payload): i
                for i, payload in enumerate(payloads)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    i = pending.pop(future)
                    result = future.result()
                    results[i] = result
                    if stream is not None:
                        stream(result)
    total_s = time.perf_counter() - started
    tracer = get_tracer()
    summary = SweepSummary()
    for result in results:
        assert result is not None
        summary.add(result)
        tracer.record_span(
            "sweep.cell",
            result["duration_s"],
            family=result["cell"].get("family", "us2015"),
            seed=result["cell"]["seed"],
            driver=result["cell"]["driver"],
            ok=result["ok"],
            cache_hits=result["cache"]["hits"],
        )
    return SweepResult(
        cells=[r for r in results if r is not None],
        summary=summary,
        workers=workers,
        cache=setting if not isinstance(setting, ArtifactCache) else str(setting.root),
        total_s=total_s,
    )
