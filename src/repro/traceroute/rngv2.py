"""RNG contract v2: counter-based, batch-vectorized trace streams.

Contract v1 (the historical default) gives every trace index a private
``random.Random(blake2b(f"{seed}:{index}"))`` stream.  That preserves
order independence, but constructing the hash and the Mersenne state
costs ~14.5 µs per trace — a Python floor that no amount of sharding
removes once the columnar pipeline made everything after the draws
vectorized.

Contract v2 keeps the *property* (every draw's position depends only on
``(seed, purpose, round, trace index)``) but moves the streams onto
counter-based :class:`numpy.random.Philox` generators so a shard
materializes the draws for thousands of traces in a handful of numpy
calls.  The stream specification (normative; see DESIGN §14):

* A **stream** is ``Philox(key=[seed mod 2**64, purpose << 32 | sub])``
  with the counter starting at zero.  Positions within a stream are
  counted in Philox counter *blocks*; one block yields exactly
  ``BLOCK_DRAWS = 4`` float64 uniforms (``Generator.random``'s
  consumption order), and ``Philox.advance(k)`` seeks to block ``k``.
* **ENDPOINT** streams (``purpose=1``, ``sub=r`` for redraw round
  ``r``): trace index ``i`` owns block ``i`` — four uniforms consumed
  as (client-ISP, dest-ISP, client-city, dest-city).  A weighted pick
  maps a uniform ``u`` onto cumulative weights ``cum`` as
  ``bisect_right(cum, u * cum[-1])`` clamped to the last entry — the
  same semantics as contract v1's ``_pick``.  A degenerate draw
  (identical endpoints) or an unreachable pair moves the trace to
  round ``r + 1``; the retry budget is :data:`MAX_ATTEMPTS_PER_TRACE`
  rounds, as in v1.
* The **NOISE** stream (``purpose=2``, ``sub=0``): trace index ``i``
  owns blocks ``[i * 16, (i + 1) * 16)`` — ``HOP_NOISE_BUDGET = 64``
  unit uniforms, of which visible hop ``j`` consumes slot ``j``.  The
  RTT of hop ``j`` is ``double_cum[j] + QUEUE_NOISE_MS * u_j`` exactly
  as in v1's vectorized finish.  A path with more than 64 visible hops
  is a contract violation (raised, never truncated); the deepest path
  in any shipped topology is far below the budget.
* The **GEO** stream (``purpose=3``, ``sub=0``): enumeration index
  ``i`` of the geolocation build (sorted providers, each provider's
  sorted routers) owns block ``i``; slot 0 picks the near-miss city as
  ``pool[floor(u * len(pool))]`` over the sorted candidate pool.

Because positions are absolute, serial and sharded campaigns are
byte-identical at every worker count and batch size by construction —
the property the fault-tolerance ladder (shard replay) and the sweep
layer rely on.

Versioning rules: a change to any stream definition, draw order, pick
semantics, or budget above is a **new contract version**, never an
in-place edit — v1 and v2 artifacts must never collide, so the version
is threaded through ``CampaignConfig``, stage cache keys, shard
manifests, and npz payloads.
"""

from __future__ import annotations

import os
from bisect import bisect
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

import numpy as np
from numpy.random import Generator, Philox

from repro.perf.routing import _NO_PREDECESSOR
from repro.traceroute.columns import TRACE_DTYPE, ColumnSchema, TraceColumns
from repro.traceroute.probe import ACCESS_DELAY_MS, QUEUE_NOISE_MS, ProbeEngine

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.traceroute.campaign import CampaignConfig, _CampaignPlan

#: The supported RNG contract versions.
RNG_CONTRACT_V1 = 1
RNG_CONTRACT_V2 = 2
SUPPORTED_RNG_CONTRACTS = (RNG_CONTRACT_V1, RNG_CONTRACT_V2)

#: Retry budget within one trace's private stream: degenerate draws
#: (same endpoint, unreachable pair) are redrawn — from the same
#: Mersenne stream under v1, from the next round's Philox stream under
#: v2 — which keeps every trace independent of all others.
MAX_ATTEMPTS_PER_TRACE = 128

#: float64 uniforms per Philox counter block (what ``advance(1)`` skips).
BLOCK_DRAWS = 4
#: Noise blocks owned by one trace; ``* BLOCK_DRAWS`` slots of budget.
HOP_NOISE_BLOCKS = 16
#: Per-trace visible-hop budget of the v2 noise stream.
HOP_NOISE_BUDGET = HOP_NOISE_BLOCKS * BLOCK_DRAWS

#: Traces materialized per vectorized batch.  Never affects the column
#: bytes (stream positions are absolute trace indices).
DEFAULT_BATCH_SIZE = 8192

_MASK64 = (1 << 64) - 1
_PURPOSE_ENDPOINT = 1
_PURPOSE_NOISE = 2
_PURPOSE_GEO = 3

_SLOT = np.arange(HOP_NOISE_BUDGET)


def default_rng_contract() -> int:
    """The contract version new configs default to.

    ``REPRO_RNG_CONTRACT`` overrides (the rng-compat CI job runs the
    golden suite under ``REPRO_RNG_CONTRACT=1``); otherwise v2.
    """
    raw = os.environ.get("REPRO_RNG_CONTRACT", "").strip()
    if not raw:
        return RNG_CONTRACT_V2
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_RNG_CONTRACT must be an integer, got {raw!r}"
        ) from None
    if value not in SUPPORTED_RNG_CONTRACTS:
        raise ValueError(
            f"REPRO_RNG_CONTRACT must be one of "
            f"{SUPPORTED_RNG_CONTRACTS}, got {value}"
        )
    return value


def _stream(
    seed: int, purpose: int, sub: int, block_offset: int = 0
) -> Generator:
    """The v2 stream ``(seed, purpose, sub)`` positioned at a block."""
    key = np.array(
        [seed & _MASK64, ((purpose & 0xFFFFFFFF) << 32) | (sub & 0xFFFFFFFF)],
        dtype=np.uint64,
    )
    bits = Philox(key=key)
    if block_offset:
        bits.advance(int(block_offset))
    return Generator(bits)


def _pick_indices(cum: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Vectorized v1 ``_pick``: ``bisect(cum, u * cum[-1])`` clamped."""
    idx = np.searchsorted(cum, u * cum[-1], side="right")
    return np.minimum(idx, len(cum) - 1)


def _pick_index(cum: List[float], u: float) -> int:
    """Scalar twin of :func:`_pick_indices` (same float64 arithmetic)."""
    return bisect(cum, u * cum[-1], 0, len(cum) - 1)


class _PlanTables:
    """The campaign plan's sampling tables as numpy arrays, plus the
    endpoint-pair coding the template store is keyed on.

    Node ``gid``s are global (shared by the client and dest sides), so
    ``client_gid[cn] == dest_gid[dn]`` is exactly v1's degenerate-pair
    test (same city *and* same ISP).
    """

    def __init__(self, plan: "_CampaignPlan"):
        self.client_cum = np.asarray(plan.client_cum, dtype=np.float64)
        self.dest_cum = np.asarray(plan.dest_cum, dtype=np.float64)
        gid_of: Dict[Tuple[str, str], int] = {}

        def build_side(names, tables):
            city_cums: List[np.ndarray] = []
            bases: List[int] = []
            nodes: List[Tuple[str, str]] = []
            gids: List[int] = []
            for isp in names:
                cities, cum = tables[isp]
                bases.append(len(nodes))
                city_cums.append(np.asarray(cum, dtype=np.float64))
                for city in cities:
                    node = (isp, city)
                    nodes.append(node)
                    gids.append(gid_of.setdefault(node, len(gid_of)))
            return city_cums, np.asarray(bases), nodes, np.asarray(gids)

        (self.client_city_cum, self.client_base,
         self.client_nodes, self.client_gid) = build_side(
            plan.client_names, plan.client_cities
        )
        (self.dest_city_cum, self.dest_base,
         self.dest_nodes, self.dest_gid) = build_side(
            plan.dest_names, plan.dest_cities
        )
        self.n_dest_nodes = len(self.dest_nodes)


class _CoreTables:
    """Vectorized views of the routing core for batch template building.

    Per-node schema ids and MPLS flags indexed by core node number, the
    stacked predecessor rows of every campaign destination, and a flat
    sorted ``(u * n + v) -> weight`` edge table, so a whole batch of
    new endpoint pairs becomes a handful of fancy-indexing calls.
    """

    def __init__(self, engine: ProbeEngine, tables: _PlanTables):
        core = engine._core
        topology = engine._topology
        schema = engine.column_schema()
        nodes = core._nodes
        n = len(nodes)
        self.n_nodes = n
        self.router_id = np.empty(n, dtype=np.int32)
        self.isp_id = np.empty(n, dtype=np.int32)
        self.city_id = np.empty(n, dtype=np.int32)
        self.mpls = np.zeros(n, dtype=bool)
        mpls_of: Dict[str, bool] = {}
        for i, (isp, city) in enumerate(nodes):
            self.router_id[i] = schema.router_index[(isp, city)]
            self.isp_id[i] = schema.isp_index[isp]
            self.city_id[i] = schema.city_index[city]
            flag = mpls_of.get(isp)
            if flag is None:
                flag = mpls_of[isp] = topology.uses_mpls(isp)
            self.mpls[i] = flag
        index = core._index

        def core_of(node: Tuple[str, str]) -> int:
            # Mirror the scalar builder's precheck: a node without a
            # router is unreachable even if it appears in the graph.
            if not topology.has_router(*node):
                return -1
            return index.get(node, -1)

        self.client_core = np.array(
            [core_of(node) for node in tables.client_nodes], dtype=np.int64
        )
        self.dest_core = np.array(
            [core_of(node) for node in tables.dest_nodes], dtype=np.int64
        )
        core.prepare(tables.dest_nodes)
        no_pred = np.full(n, _NO_PREDECESSOR, dtype=np.int32)
        self.pred = np.stack(
            [
                np.asarray(core._pred[int(ci)], dtype=np.int32)
                if ci >= 0 else no_pred
                for ci in self.dest_core
            ]
        )
        matrix = core._matrix.tocsr()
        matrix.sort_indices()
        self.edge_key = (
            np.repeat(
                np.arange(n, dtype=np.int64), np.diff(matrix.indptr)
            ) * n + matrix.indices
        )
        self.edge_w = matrix.data.astype(np.float64)


class _TemplateStore:
    """Hop templates as padded 2-D rows, for vectorized assembly.

    Each resolved endpoint pair owns one row: its visible-hop router
    ids and doubled cumulative latencies padded to
    :data:`HOP_NOISE_BUDGET` columns, its hop count (``-1`` marks an
    unreachable pair), and its four schema endpoint ids.  Rows are
    built in vectorized batches against the routing core — or, without
    scipy, one at a time from the engine's per-pair template cache; the
    two builders are bit-identical because a row-wise ``cumsum`` over
    the path's edge weights replays the scalar path's sequential
    left-to-right latency accumulation exactly — and rows persist
    across batches and shards within a worker.
    """

    def __init__(self) -> None:
        self._row_of: Dict[int, int] = {}
        cap = 1024
        self.router_pad = np.zeros((cap, HOP_NOISE_BUDGET), dtype=np.int32)
        self.cum_pad = np.zeros((cap, HOP_NOISE_BUDGET), dtype=np.float64)
        self.counts = np.full(cap, -1, dtype=np.int64)
        self.endpoints = np.zeros((cap, 4), dtype=np.int32)
        self._used = 0

    def _reserve(self, count: int) -> np.ndarray:
        """Row ids for ``count`` new templates, growing the arrays."""
        cap = len(self.counts)
        while self._used + count > cap:
            cap *= 2
        if cap != len(self.counts):
            for name in ("router_pad", "cum_pad", "counts", "endpoints"):
                old = getattr(self, name)
                new = np.zeros((cap,) + old.shape[1:], dtype=old.dtype)
                new[: len(old)] = old
                if name == "counts":
                    new[len(old):] = -1
                setattr(self, name, new)
        rows = np.arange(self._used, self._used + count, dtype=np.int64)
        self._used += count
        return rows

    def _check_budget(self, max_hops: int) -> None:
        if max_hops > HOP_NOISE_BUDGET:
            raise RuntimeError(
                f"a path has {max_hops} visible hops; RNG contract v2 "
                f"budgets {HOP_NOISE_BUDGET} noise slots per trace"
            )

    def _build_rows_scalar(
        self, engine: ProbeEngine, tables: _PlanTables, codes: np.ndarray
    ) -> None:
        """Reference builder (no scipy): one engine template per pair."""
        rows = self._reserve(len(codes))
        for row, code in zip(rows.tolist(), codes.tolist()):
            cn, dn = divmod(code, tables.n_dest_nodes)
            template = engine._hop_template(
                tables.client_nodes[cn], tables.dest_nodes[dn]
            )
            self._row_of[code] = row
            if template is False:
                continue
            k = len(template.router_ids)
            self._check_budget(k)
            self.counts[row] = k
            self.router_pad[row, :k] = template.router_ids
            self.cum_pad[row, :k] = template.double_cum
            self.endpoints[row] = (
                template.src_city_id,
                template.src_isp_id,
                template.dst_city_id,
                template.dst_isp_id,
            )

    def _build_rows_vectorized(
        self, ct: _CoreTables, tables: _PlanTables, codes: np.ndarray
    ) -> None:
        """All of ``codes``' templates in one pass over the core arrays."""
        rows = self._reserve(len(codes))
        self._row_of.update(zip(codes.tolist(), rows.tolist()))
        cn, dn = np.divmod(codes, tables.n_dest_nodes)
        src = ct.client_core[cn]
        dst = ct.dest_core[dn]
        reach = (src >= 0) & (dst >= 0)
        safe_src = np.where(src >= 0, src, 0)
        reach &= ct.pred[dn, safe_src] != _NO_PREDECESSOR
        ridx = np.flatnonzero(reach)
        if not ridx.size:
            return
        src_r, dst_r, drow_r = src[ridx], dst[ridx], dn[ridx]
        # Walk every pair's predecessor chain simultaneously; finished
        # pairs hold at their destination while stragglers keep walking.
        frontier = src_r.copy()
        cols = [frontier]
        done = frontier == dst_r
        for _ in range(ct.n_nodes):
            if done.all():
                break
            frontier = np.where(done, frontier, ct.pred[drow_r, frontier])
            cols.append(frontier)
            done = frontier == dst_r
        else:  # pragma: no cover - cycle guard
            raise RuntimeError("predecessor walk did not terminate")
        paths = np.stack(cols, axis=1)
        length = paths.shape[1]
        # Real steps vs hold-at-destination padding.
        valid = np.ones(paths.shape, dtype=bool)
        valid[:, 1:] = paths[:, 1:] != paths[:, :-1]
        path_len = valid.sum(axis=1)
        # cumsum([access/2, w1, w2, ...]) replays the scalar builder's
        # sequential partial sums bit for bit.
        weights = np.zeros(paths.shape, dtype=np.float64)
        weights[:, 0] = ACCESS_DELAY_MS / 2.0
        if length > 1:
            step = valid[:, 1:]
            keys = paths[:, :-1][step] * ct.n_nodes + paths[:, 1:][step]
            pos = np.searchsorted(ct.edge_key, keys)
            if not np.array_equal(ct.edge_key[pos], keys):
                raise RuntimeError("path step without a graph edge")
            weights[:, 1:][step] = ct.edge_w[pos]
        one_way = np.cumsum(weights, axis=1)
        # MPLS edge visibility: a hop is hidden only strictly inside an
        # MPLS provider's segment (not first/last, same ISP both sides).
        isp = ct.isp_id[paths]
        prev_differs = np.ones(paths.shape, dtype=bool)
        prev_differs[:, 1:] = isp[:, 1:] != isp[:, :-1]
        next_differs = np.ones(paths.shape, dtype=bool)
        next_differs[:, :-1] = isp[:, :-1] != isp[:, 1:]
        position = np.arange(length)
        visible = valid & (
            ~ct.mpls[paths]
            | (position == 0)[None, :]
            | (position[None, :] == (path_len - 1)[:, None])
            | prev_differs
            | next_differs
        )
        counts = visible.sum(axis=1)
        self._check_budget(int(counts.max(initial=0)))
        # Compact the visible hops into the padded store rows.
        vr, vc = np.nonzero(visible)
        starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        slot = np.arange(len(vr)) - np.repeat(starts, counts)
        target = rows[ridx]
        self.counts[target] = counts
        self.router_pad[target[vr], slot] = ct.router_id[paths[vr, vc]]
        self.cum_pad[target[vr], slot] = 2.0 * one_way[vr, vc]
        self.endpoints[target, 0] = ct.city_id[src_r]
        self.endpoints[target, 1] = ct.isp_id[src_r]
        self.endpoints[target, 2] = ct.city_id[dst_r]
        self.endpoints[target, 3] = ct.isp_id[dst_r]

    def rows_for(
        self,
        engine: ProbeEngine,
        tables: _PlanTables,
        core_tables: "_CoreTables | None",
        codes: np.ndarray,
    ) -> np.ndarray:
        uniq, inverse = np.unique(codes, return_inverse=True)
        known = np.array(
            [self._row_of.get(code, -1) for code in uniq.tolist()],
            dtype=np.int64,
        )
        missing = np.flatnonzero(known < 0)
        if missing.size:
            new = uniq[missing]
            if core_tables is not None:
                self._build_rows_vectorized(core_tables, tables, new)
            else:
                self._build_rows_scalar(engine, tables, new)
            lookup = self._row_of
            for j in missing.tolist():
                known[j] = lookup[int(uniq[j])]
        return known[inverse]


def _v2_state(
    engine: ProbeEngine, plan: "_CampaignPlan"
) -> Tuple[_PlanTables, "_CoreTables | None", _TemplateStore]:
    """Per-(engine, plan) vectorization state, cached on the engine so
    it persists across the batches and shards one worker processes."""
    state = getattr(engine, "_rngv2_state", None)
    if state is None or state[0] is not plan:
        tables = _PlanTables(plan)
        core_tables = (
            _CoreTables(engine, tables) if engine._core is not None else None
        )
        state = (plan, tables, core_tables, _TemplateStore())
        engine._rngv2_state = state
    return state[1], state[2], state[3]


def _batch_columns(
    engine: ProbeEngine,
    tables: _PlanTables,
    core_tables: "_CoreTables | None",
    store: _TemplateStore,
    config: "CampaignConfig",
    schema: ColumnSchema,
    b0: int,
    b1: int,
) -> TraceColumns:
    """The columns of traces ``[b0, b1)``, fully vectorized."""
    n = b1 - b0
    seed = config.seed
    rows = np.full(n, -1, dtype=np.int64)
    unresolved = np.arange(n, dtype=np.int64)
    for rnd in range(MAX_ATTEMPTS_PER_TRACE):
        # One contiguous draw covering the unresolved span; round 0
        # covers the whole batch, later rounds shrink to the stragglers.
        lo = int(unresolved[0])
        hi = int(unresolved[-1]) + 1
        u = _stream(seed, _PURPOSE_ENDPOINT, rnd, b0 + lo).random(
            BLOCK_DRAWS * (hi - lo)
        ).reshape(-1, BLOCK_DRAWS)[unresolved - lo]
        ci = _pick_indices(tables.client_cum, u[:, 0])
        di = _pick_indices(tables.dest_cum, u[:, 1])
        cn = np.empty(len(unresolved), dtype=np.int64)
        dn = np.empty(len(unresolved), dtype=np.int64)
        for k, cum in enumerate(tables.client_city_cum):
            m = ci == k
            if m.any():
                cn[m] = tables.client_base[k] + _pick_indices(cum, u[m, 2])
        for k, cum in enumerate(tables.dest_city_cum):
            m = di == k
            if m.any():
                dn[m] = tables.dest_base[k] + _pick_indices(cum, u[m, 3])
        distinct = tables.client_gid[cn] != tables.dest_gid[dn]
        codes = cn[distinct] * tables.n_dest_nodes + dn[distinct]
        cand_rows = store.rows_for(engine, tables, core_tables, codes)
        reached = store.counts[cand_rows] >= 0
        hit = np.flatnonzero(distinct)[reached]
        rows[unresolved[hit]] = cand_rows[reached]
        keep = np.ones(len(unresolved), dtype=bool)
        keep[hit] = False
        unresolved = unresolved[keep]
        if unresolved.size == 0:
            break
    else:
        raise RuntimeError(
            f"traces {b0}..{b1}: no reachable (src, dst) pair after "
            f"{MAX_ATTEMPTS_PER_TRACE} draws; topology too disconnected"
        )
    counts = store.counts[rows]
    noise = _stream(
        seed, _PURPOSE_NOISE, 0, b0 * HOP_NOISE_BLOCKS
    ).random(n * HOP_NOISE_BUDGET).reshape(n, HOP_NOISE_BUDGET)
    # Assembly only touches the first ``width`` slots (the deepest path
    # in the batch); the stream still *owns* all 64 positions per
    # trace, so the bytes are independent of this working-set trim.
    width = int(counts.max(initial=0))
    mask = _SLOT[:width] < counts[:, None]
    # rtt = 2*one_way + noise, slot by slot — float64-identical to the
    # v1 writer's fused ``cum + scale * noise``.
    rtt_pad = np.take(store.cum_pad[:, :width], rows, axis=0)
    rtt_pad += QUEUE_NOISE_MS * noise[:, :width]
    hop_rtt = rtt_pad[mask]
    hop_router = np.take(store.router_pad[:, :width], rows, axis=0)[mask]
    hop_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=hop_offsets[1:])
    traces = np.zeros(n, dtype=TRACE_DTYPE)
    endpoints = store.endpoints[rows]
    traces["src_city"] = endpoints[:, 0]
    traces["src_isp"] = endpoints[:, 1]
    traces["dst_city"] = endpoints[:, 2]
    traces["dst_isp"] = endpoints[:, 3]
    traces["reached"] = True
    return TraceColumns(
        schema, traces, hop_offsets, hop_router, hop_rtt,
        rng_contract=RNG_CONTRACT_V2,
    )


def generate_columns_v2(
    engine: ProbeEngine,
    plan: "_CampaignPlan",
    config: "CampaignConfig",
    start: int,
    stop: int,
) -> TraceColumns:
    """Trace indices ``[start, stop)`` as columns under contract v2.

    The vectorized twin of the v1 per-index writer loop: identical
    output for any split into shards or batches, because every stream
    position derives from the absolute trace index.
    """
    tables, core_tables, store = _v2_state(engine, plan)
    schema = engine.column_schema()
    batch = max(1, config.batch_size)
    parts = [
        _batch_columns(
            engine, tables, core_tables, store, config, schema,
            b0, min(b0 + batch, stop),
        )
        for b0 in range(start, stop, batch)
    ]
    if len(parts) == 1:
        return parts[0]
    if not parts:
        return TraceColumns(
            schema,
            np.zeros(0, dtype=TRACE_DTYPE),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.float64),
            rng_contract=RNG_CONTRACT_V2,
        )
    return TraceColumns.concatenate(schema, parts)


def trace_record_v2(
    engine: ProbeEngine,
    plan: "_CampaignPlan",
    config: "CampaignConfig",
    index: int,
) -> "Any":
    """The v2 record for one trace index — the scalar reference
    implementation of the batch path, draw-compatible by construction
    (used by the legacy object view and the parity tests)."""
    from repro.traceroute.probe import Hop, TracerouteRecord

    seed = config.seed
    for rnd in range(MAX_ATTEMPTS_PER_TRACE):
        u = _stream(seed, _PURPOSE_ENDPOINT, rnd, index).random(BLOCK_DRAWS)
        src_isp = plan.client_names[_pick_index(plan.client_cum, u[0])]
        dst_isp = plan.dest_names[_pick_index(plan.dest_cum, u[1])]
        cities, cum = plan.client_cities[src_isp]
        src_city = cities[_pick_index(cum, u[2])]
        cities, cum = plan.dest_cities[dst_isp]
        dst_city = cities[_pick_index(cum, u[3])]
        if src_city == dst_city and src_isp == dst_isp:
            continue
        template = engine._hop_template(
            (src_isp, src_city), (dst_isp, dst_city)
        )
        if template is False:
            continue
        k = len(template.router_ids)
        noise = _stream(
            seed, _PURPOSE_NOISE, 0, index * HOP_NOISE_BLOCKS
        ).random(HOP_NOISE_BUDGET)[:k]
        rtts = template.double_cum + QUEUE_NOISE_MS * noise
        schema = engine.column_schema()
        hops = tuple(
            Hop(
                ip=schema.router_ips[r],
                dns_name=schema.router_dns[r],
                rtt_ms=float(rtts[j]),
            )
            for j, r in enumerate(template.router_ids.tolist())
        )
        return TracerouteRecord(
            src_city=src_city,
            src_isp=src_isp,
            dst_city=dst_city,
            dst_isp=dst_isp,
            hops=hops,
            reached=True,
        )
    raise RuntimeError(
        f"trace {index}: no reachable (src, dst) pair after "
        f"{MAX_ATTEMPTS_PER_TRACE} draws; topology too disconnected"
    )


def geo_unit_draws(seed: int, count: int) -> np.ndarray:
    """Slot-0 uniforms of the GEO stream for enumeration indices
    ``[0, count)`` (the geolocation database's near-miss picks)."""
    if count == 0:
        return np.zeros(0, dtype=np.float64)
    return _stream(seed, _PURPOSE_GEO, 0).random(
        BLOCK_DRAWS * count
    ).reshape(-1, BLOCK_DRAWS)[:, 0]
