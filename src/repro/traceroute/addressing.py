"""IPv4 address plan for the simulated Internet.

Each provider gets a /8 out of a reserved study range; within it, each
(city, router) pair gets a deterministic host address.  The plan is the
inverse oracle for the geolocation database: it knows the truth, the
database adds noise.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional, Tuple

#: First /8 assigned; providers get consecutive /8s in registration order.
_BASE_OCTET = 20


class AddressPlan:
    """Deterministic provider/city/router → IPv4 mapping."""

    def __init__(self) -> None:
        self._isp_nets: Dict[str, ipaddress.IPv4Network] = {}
        self._city_index: Dict[str, Dict[str, int]] = {}
        self._reverse: Dict[str, Tuple[str, str]] = {}

    def register_isp(self, isp: str) -> ipaddress.IPv4Network:
        """Assign the next /8 to *isp* (idempotent)."""
        if isp in self._isp_nets:
            return self._isp_nets[isp]
        octet = _BASE_OCTET + len(self._isp_nets)
        if octet > 255:
            raise RuntimeError("address space exhausted")
        network = ipaddress.IPv4Network(f"{octet}.0.0.0/8")
        self._isp_nets[isp] = network
        self._city_index[isp] = {}
        return network

    def network_of(self, isp: str) -> ipaddress.IPv4Network:
        return self._isp_nets[isp]

    def isps(self) -> List[str]:
        return sorted(self._isp_nets)

    def address_for(self, isp: str, city_key: str, router: int = 1) -> str:
        """Deterministic interface address for a router in one city."""
        if isp not in self._isp_nets:
            self.register_isp(isp)
        cities = self._city_index[isp]
        if city_key not in cities:
            cities[city_key] = len(cities)
        index = cities[city_key]
        if not 0 <= router <= 255:
            raise ValueError(f"router index out of range: {router}")
        base = int(self._isp_nets[isp].network_address)
        ip = ipaddress.IPv4Address(base + index * 256 + router)
        text = str(ip)
        self._reverse[text] = (isp, city_key)
        return text

    def lookup(self, ip: str) -> Optional[Tuple[str, str]]:
        """Ground-truth (isp, city) for an address issued by this plan."""
        return self._reverse.get(ip)

    def isp_of(self, ip: str) -> Optional[str]:
        """Provider owning *ip*, by prefix (works without prior issue)."""
        try:
            address = ipaddress.IPv4Address(ip)
        except ipaddress.AddressValueError:
            return None
        for isp, network in self._isp_nets.items():
            if address in network:
                return isp
        return None
