"""Overlaying layer-3 traceroute paths onto the physical conduit map.

This is the §4.3 analysis: "By using geolocation information and naming
hints in the traceroute data, we are able to overlay individual layer 3
links onto our underlying physical map of Internet infrastructure."  The
overlay works entirely from observables — hop DNS names, IPs, and the
constructed (not ground-truth) map — so geolocation noise, MPLS gaps,
and unknown providers affect it the same way they affected the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap
from repro.obs.tracer import get_tracer
from repro.perf.routing import RoutingCore, build_routing_core
from repro.traceroute.columns import ColumnSchema, TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase, resolve_hop_city
from repro.traceroute.probe import TracerouteRecord
from repro.traceroute.topology import InternetTopology, _slug

#: Direction labels for the Table 2 / Table 3 split.
WEST_TO_EAST = "west_to_east"
EAST_TO_WEST = "east_to_west"


@dataclass
class ConduitTraffic:
    """Accumulated probe traffic over one conduit."""

    conduit_id: str
    endpoints: Tuple[str, str]
    total: int = 0
    west_to_east: int = 0
    east_to_west: int = 0
    observed_isps: Set[str] = field(default_factory=set)

    def count(self, direction: str) -> None:
        self.total += 1
        if direction == WEST_TO_EAST:
            self.west_to_east += 1
        else:
            self.east_to_west += 1


class TrafficOverlay:
    """Maps traceroute hop pairs onto conduits of a constructed map."""

    def __init__(
        self,
        fiber_map: FiberMap,
        topology: InternetTopology,
        database: GeolocationDatabase,
    ):
        self._map = fiber_map
        self._topology = topology
        self._database = database
        self._slug_to_isp: Dict[str, str] = {
            _slug(name): name for name in topology.providers()
        }
        self._traffic: Dict[str, ConduitTraffic] = {}
        self._generic_graph = fiber_map.simple_conduit_graph()
        self._isp_graphs: Dict[str, nx.Graph] = {}
        #: One compiled array routing core per conduit graph ("*" =
        #: generic); None entries mean scipy is unavailable.
        self._cores: Dict[str, Optional[RoutingCore]] = {}
        self._path_cache: Dict[Tuple[str, str, str], Optional[Tuple[str, ...]]] = {}
        self._traces_processed = 0
        self._hops_unresolved = 0
        #: Per-schema resolution tables for the columnar ingest path
        #: (hop interpretation is deterministic per router, so it is
        #: done once per router instead of once per hop).
        self._schema_tables: Optional[
            Tuple[ColumnSchema, List[Optional[str]], List[Optional[str]],
                  List[float]]
        ] = None

    # ------------------------------------------------------------------
    # Hop interpretation
    # ------------------------------------------------------------------
    def _isp_from_name(self, dns_name: str) -> Optional[str]:
        parts = dns_name.split(".")
        if len(parts) < 2:
            return None
        return self._slug_to_isp.get(parts[-2])

    def _conduit_path(
        self, isp: Optional[str], city_a: str, city_b: str
    ) -> Optional[Tuple[str, ...]]:
        """Conduit ids between two hop cities, using the ISP's footprint
        in the constructed map when it has one, else the generic map."""
        key = (isp or "*", city_a, city_b)
        if key in self._path_cache:
            return self._path_cache[key]
        graph = None
        if isp is not None and isp in self._map.isps():
            graph = self._isp_graphs.get(isp)
            if graph is None:
                graph = self._map.simple_conduit_graph(isp)
                self._isp_graphs[isp] = graph
            if city_a not in graph or city_b not in graph:
                graph = None
        if graph is None:
            graph = self._generic_graph
            core_key = "*"
        else:
            core_key = isp or "*"
        result: Optional[Tuple[str, ...]] = None
        if core_key not in self._cores:
            self._cores[core_key] = build_routing_core(
                graph, weight="length_km"
            )
        core = self._cores[core_key]
        if core is not None:
            path = core.path(city_a, city_b)
            if path is not None and len(path) > 1:
                result = tuple(
                    graph[u][v]["conduit_id"] for u, v in zip(path, path[1:])
                )
        else:  # scipy unavailable: NetworkX reference path
            try:
                path = nx.shortest_path(
                    graph, city_a, city_b, weight="length_km"
                )
                result = tuple(
                    graph[u][v]["conduit_id"] for u, v in zip(path, path[1:])
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                result = None
        self._path_cache[key] = result
        return result

    @staticmethod
    def _direction(src_city: str, dst_city: str) -> str:
        src_lon = city_by_name(src_city).lon
        dst_lon = city_by_name(dst_city).lon
        return WEST_TO_EAST if src_lon <= dst_lon else EAST_TO_WEST

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_trace(self, record: TracerouteRecord) -> None:
        """Overlay one traceroute onto the conduit map."""
        if not record.reached or len(record.hops) < 2:
            return
        self._traces_processed += 1
        direction = self._direction(record.src_city, record.dst_city)
        previous_city: Optional[str] = None
        previous_isp: Optional[str] = None
        for hop in record.hops:
            isp = self._isp_from_name(hop.dns_name)
            city = resolve_hop_city(hop.dns_name, hop.ip, self._database)
            if city is None:
                self._hops_unresolved += 1
                previous_city, previous_isp = None, isp
                continue
            if (
                previous_city is not None
                and previous_isp is not None
                and isp == previous_isp
                and city != previous_city
            ):
                conduits = self._conduit_path(isp, previous_city, city)
                if conduits:
                    for conduit_id in conduits:
                        self._count(conduit_id, direction, isp)
            previous_city, previous_isp = city, isp

    def add_traces(self, records: Iterable[TracerouteRecord]) -> None:
        """Overlay a batch of traceroutes (one ``overlay.add_traces`` span).

        A columnar campaign (:class:`TraceColumns`) streams through
        :meth:`add_columns` instead of reconstructing record objects;
        both ingest paths update exactly the same counters.
        """
        if isinstance(records, TraceColumns):
            self.add_columns(records)
            return
        tracer = get_tracer()
        before_processed = self._traces_processed
        before_unresolved = self._hops_unresolved
        with tracer.span("overlay.add_traces"):
            for record in records:
                self.add_trace(record)
            tracer.annotate(
                traces_added=self._traces_processed - before_processed,
                hops_unresolved=self._hops_unresolved - before_unresolved,
                path_cache_entries=len(self._path_cache),
                conduits_with_traffic=len(self._traffic),
            )

    def _tables_for(
        self, schema: ColumnSchema
    ) -> Tuple[List[Optional[str]], List[Optional[str]], List[float]]:
        """Per-router ISP/city resolution plus per-city longitudes.

        ``_isp_from_name`` and ``resolve_hop_city`` are pure functions
        of one router's published DNS name and IP, so a campaign of
        millions of hops needs them evaluated only once per router in
        the schema — the columnar path then interprets hops with two
        list lookups.
        """
        cached = self._schema_tables
        if cached is not None and cached[0] is schema:
            return cached[1], cached[2], cached[3]
        router_isp = [
            self._isp_from_name(dns) for dns in schema.router_dns
        ]
        router_city = [
            resolve_hop_city(dns, ip, self._database)
            for dns, ip in zip(schema.router_dns, schema.router_ips)
        ]
        city_lon = [city_by_name(c).lon for c in schema.cities]
        self._schema_tables = (schema, router_isp, router_city, city_lon)
        return router_isp, router_city, city_lon

    def add_columns(
        self, columns: TraceColumns, batch_size: int = 8192
    ) -> None:
        """Overlay a columnar campaign without materializing records.

        Streams :meth:`TraceColumns.iter_batches` windows, so memory
        stays bounded by one batch regardless of campaign size; the
        per-hop interpretation (provider from DNS, city from
        geolocation, conduit path between consecutive same-provider
        cities) replicates :meth:`add_trace` decision for decision, and
        the resulting traffic counters are identical.
        """
        tracer = get_tracer()
        before_processed = self._traces_processed
        before_unresolved = self._hops_unresolved
        router_isp, router_city, city_lon = self._tables_for(columns.schema)
        with tracer.span("overlay.add_traces"):
            for batch in columns.iter_batches(batch_size):
                traces = batch.traces
                src_cities = traces["src_city"].tolist()
                dst_cities = traces["dst_city"].tolist()
                reached = traces["reached"].tolist()
                offsets = batch.hop_offsets.tolist()
                routers = batch.hop_router.tolist()
                for i in range(len(batch)):
                    lo = offsets[i]
                    hi = offsets[i + 1]
                    if not reached[i] or hi - lo < 2:
                        continue
                    self._traces_processed += 1
                    direction = (
                        WEST_TO_EAST
                        if city_lon[src_cities[i]] <= city_lon[dst_cities[i]]
                        else EAST_TO_WEST
                    )
                    previous_city: Optional[str] = None
                    previous_isp: Optional[str] = None
                    for h in range(lo, hi):
                        router = routers[h]
                        isp = router_isp[router]
                        city = router_city[router]
                        if city is None:
                            self._hops_unresolved += 1
                            previous_city, previous_isp = None, isp
                            continue
                        if (
                            previous_city is not None
                            and previous_isp is not None
                            and isp == previous_isp
                            and city != previous_city
                        ):
                            conduits = self._conduit_path(
                                isp, previous_city, city
                            )
                            if conduits:
                                for conduit_id in conduits:
                                    self._count(conduit_id, direction, isp)
                        previous_city, previous_isp = city, isp
            tracer.annotate(
                traces_added=self._traces_processed - before_processed,
                hops_unresolved=self._hops_unresolved - before_unresolved,
                path_cache_entries=len(self._path_cache),
                conduits_with_traffic=len(self._traffic),
            )

    def _count(self, conduit_id: str, direction: str, isp: Optional[str]) -> None:
        traffic = self._traffic.get(conduit_id)
        if traffic is None:
            conduit = self._map.conduit(conduit_id)
            traffic = ConduitTraffic(
                conduit_id=conduit_id, endpoints=conduit.edge
            )
            self._traffic[conduit_id] = traffic
        traffic.count(direction)
        if isp is not None:
            traffic.observed_isps.add(isp)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def traces_processed(self) -> int:
        return self._traces_processed

    @property
    def hops_unresolved(self) -> int:
        return self._hops_unresolved

    def traffic(self) -> Dict[str, ConduitTraffic]:
        return dict(self._traffic)

    def top_conduits(
        self, direction: str, top: int = 20
    ) -> List[Tuple[Tuple[str, str], int]]:
        """Tables 2 / 3: most probed conduits in one direction."""
        if direction not in (WEST_TO_EAST, EAST_TO_WEST):
            raise ValueError(f"unknown direction: {direction}")
        rows = [
            (
                t.endpoints,
                t.west_to_east if direction == WEST_TO_EAST else t.east_to_west,
            )
            for t in self._traffic.values()
        ]
        rows = [r for r in rows if r[1] > 0]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[:top]

    def isp_conduit_usage(self) -> List[Tuple[str, int]]:
        """Table 4: providers ranked by conduits observed carrying their
        probe traffic."""
        usage: Dict[str, Set[str]] = {}
        for conduit_id, traffic in self._traffic.items():
            for isp in traffic.observed_isps:
                usage.setdefault(isp, set()).add(conduit_id)
        rows = [(isp, len(conduits)) for isp, conduits in usage.items()]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows

    def effective_tenants(self, conduit_id: str) -> FrozenSet[str]:
        """Constructed-map tenants plus providers observed via traceroute."""
        tenants = set(self._map.conduit(conduit_id).tenants)
        traffic = self._traffic.get(conduit_id)
        if traffic is not None:
            tenants |= traffic.observed_isps
        return frozenset(tenants)

    def inferred_additional_isps(self, conduit_id: str) -> FrozenSet[str]:
        """Providers seen on a conduit that the map did not list as tenants."""
        traffic = self._traffic.get(conduit_id)
        if traffic is None:
            return frozenset()
        return frozenset(
            traffic.observed_isps - self._map.conduit(conduit_id).tenants
        )

    def sharing_cdf_with_traffic(self) -> List[Tuple[int, float]]:
        """Figure 9, dashed line: CDF of effective tenant counts."""
        counts = sorted(
            len(self.effective_tenants(cid)) for cid in self._map.conduits
        )
        total = max(1, len(counts))
        maximum = counts[-1] if counts else 0
        return [
            (k, sum(1 for c in counts if c <= k) / total)
            for k in range(0, maximum + 1)
        ]
