"""Router-level topologies on top of the fiber plant.

Each provider gets one core router per POP city; its router adjacencies
are its fiber links, with edge latency equal to the propagation delay
over the link's conduit path.  Providers interconnect at peering cities
where both have routers.  Two features mirror measurement reality:

* **MPLS opacity** (§4.3: "the prevalent use of MPLS tunnels ... poses
  one potential pitfall"): some providers hide interior hops;
* **phantom providers**: networks like SoftLayer and MFN that ride the
  same conduits but are not among the 20 studied providers — the paper
  *infers* them from traceroute naming, e.g. "we inferred the presence
  of an additional 13 ISPs that also share that conduit".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.fibermap.elements import FiberMap
from repro.fibermap.synthesis import GroundTruth, _stable_unit
from repro.geo.coords import fiber_delay_ms
from repro.perf.routing import RoutingCore, build_routing_core
from repro.traceroute.addressing import AddressPlan
from repro.transport.network import canonical_edge

#: Extra providers visible in traceroute data but outside the 20-ISP
#: study (Table 4 lists SoftLayer and MFN among the top carriers).
PHANTOM_PROVIDERS: Tuple[str, ...] = (
    "SoftLayer",
    "MFN",
    "GTT",
    "Windstream",
    "Frontier",
    "US Signal",
    "FiberLight",
    "Lumos",
    "Fibertech",
    "Unite Private",
    "Crown Castle",
    "Alpheus",
    "Bluebird",
)

#: Providers with heavy MPLS deployment hide interior hops.
MPLS_PROBABILITY = 0.3
#: Fraction of routers published without a geographic naming hint.
NO_HINT_PROBABILITY = 0.12
#: Latency cost of crossing a peering interconnect (processing + metro
#: cross-connect), milliseconds one-way.
PEERING_PENALTY_MS = 1.2
#: Maximum peering cities per provider pair.
MAX_PEERINGS_PER_PAIR = 6


def _slug(isp: str) -> str:
    return (
        isp.lower()
        .replace("&", "")
        .replace(" ", "")
        .replace(".", "")
    )


@dataclass(frozen=True)
class Router:
    """One core router: the unit of traceroute visibility."""

    isp: str
    city_key: str
    ip: str
    dns_name: str
    has_hint: bool

    @property
    def node(self) -> Tuple[str, str]:
        """Graph node key."""
        return (self.isp, self.city_key)


class InternetTopology:
    """The simulated router-level Internet over a fiber map.

    Parameters
    ----------
    ground_truth:
        The synthesized world; real providers' router adjacencies come
        from its fiber links.
    include_phantoms:
        Add the phantom providers (default true).
    seed:
        Drives phantom footprints, MPLS assignment, and naming-hint gaps.
    """

    def __init__(
        self,
        ground_truth: GroundTruth,
        include_phantoms: bool = True,
        seed: int = 23,
    ):
        self._gt = ground_truth
        self._rng = random.Random(seed)
        self._plan = AddressPlan()
        self._graph = nx.Graph()
        self._routers: Dict[Tuple[str, str], Router] = {}
        self._routers_by_ip: Dict[str, Router] = {}
        self._mpls: Set[str] = set()
        self._link_conduits: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}
        self._phantom_names: Tuple[str, ...] = ()
        self._routing_core: Optional[RoutingCore] = None
        self._routing_core_ready = False
        fiber_map = ground_truth.fiber_map
        for isp in fiber_map.isps():
            self._add_provider_from_links(isp, fiber_map)
        if include_phantoms:
            self._phantom_names = PHANTOM_PROVIDERS
            for name in PHANTOM_PROVIDERS:
                self._add_phantom(name, fiber_map)
        self._add_peerings()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _router_for(self, isp: str, city_key: str) -> Router:
        node = (isp, city_key)
        existing = self._routers.get(node)
        if existing is not None:
            return existing
        ip = self._plan.address_for(isp, city_key)
        has_hint = _stable_unit(f"hint|{isp}|{city_key}") >= NO_HINT_PROBABILITY
        code = city_by_name(city_key).code
        slug = _slug(isp)
        if has_hint:
            dns_name = f"ae-1.cr1.{code}.{slug}.net"
        else:
            index = len(self._plan._city_index.get(isp, {}))
            dns_name = f"cr{index}.{slug}.net"
        router = Router(
            isp=isp, city_key=city_key, ip=ip, dns_name=dns_name,
            has_hint=has_hint,
        )
        self._routers[node] = router
        self._routers_by_ip[ip] = router
        self._graph.add_node(node)
        return router

    def _add_provider_from_links(self, isp: str, fiber_map: FiberMap) -> None:
        if _stable_unit(f"mpls|{isp}") < MPLS_PROBABILITY:
            self._mpls.add(isp)
        for link in fiber_map.links_of(isp):
            a, b = link.endpoints
            ra = self._router_for(isp, a)
            rb = self._router_for(isp, b)
            length = sum(
                fiber_map.conduit(cid).length_km for cid in link.conduit_ids
            )
            latency = fiber_delay_ms(length)
            key = (isp, *canonical_edge(a, b))
            existing = self._graph.get_edge_data(ra.node, rb.node)
            if existing is None or latency < existing["ms"]:
                self._graph.add_edge(
                    ra.node, rb.node, ms=latency, kind="intra", isp=isp
                )
                self._link_conduits[key] = tuple(link.conduit_ids)

    def _add_phantom(self, name: str, fiber_map: FiberMap) -> None:
        """A phantom provider rides existing conduits between its POPs."""
        if _stable_unit(f"mpls|{name}") < MPLS_PROBABILITY:
            self._mpls.add(name)
        conduit_graph = fiber_map.simple_conduit_graph()
        cities = sorted(conduit_graph.nodes)
        weights = [city_by_name(c).population for c in cities]
        count = self._rng.randint(10, 36)
        pops = sorted(set(self._rng.choices(cities, weights=weights, k=count)))
        if len(pops) < 2:
            return
        # Spanning skeleton over the conduit graph.
        ordered = sorted(pops, key=lambda c: -city_by_name(c).population)
        connected = [ordered[0]]
        for city in ordered[1:]:
            partner = min(
                connected,
                key=lambda c: city_by_name(city).distance_km(city_by_name(c)),
            )
            try:
                path = nx.shortest_path(
                    conduit_graph, city, partner, weight="length_km"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            connected.append(city)
            conduit_ids = []
            length = 0.0
            for u, v in zip(path, path[1:]):
                data = conduit_graph[u][v]
                conduit_ids.append(data["conduit_id"])
                length += data["length_km"]
            ra = self._router_for(name, city)
            rb = self._router_for(name, partner)
            key = (name, *canonical_edge(city, partner))
            self._graph.add_edge(
                ra.node, rb.node, ms=fiber_delay_ms(length), kind="intra",
                isp=name,
            )
            self._link_conduits[key] = tuple(conduit_ids)

    def _add_peerings(self) -> None:
        """Interconnect provider pairs at their biggest common cities."""
        by_isp: Dict[str, Set[str]] = {}
        for (isp, city_key) in self._routers:
            by_isp.setdefault(isp, set()).add(city_key)
        names = sorted(by_isp)
        for i, isp_a in enumerate(names):
            for isp_b in names[i + 1:]:
                common = by_isp[isp_a] & by_isp[isp_b]
                if not common:
                    continue
                chosen = sorted(
                    common, key=lambda c: -city_by_name(c).population
                )[:MAX_PEERINGS_PER_PAIR]
                for city_key in chosen:
                    self._graph.add_edge(
                        (isp_a, city_key),
                        (isp_b, city_key),
                        ms=PEERING_PENALTY_MS,
                        kind="peering",
                        isp=None,
                    )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def address_plan(self) -> AddressPlan:
        return self._plan

    def routing_core(self) -> Optional[RoutingCore]:
        """One compiled array routing core shared by every probe engine.

        The graph never mutates after construction, so the compiled CSR
        arrays stay valid for the topology's lifetime.  ``None`` when
        scipy is unavailable.
        """
        if not self._routing_core_ready:
            self._routing_core = build_routing_core(self._graph)
            self._routing_core_ready = True
        return self._routing_core

    @property
    def phantom_names(self) -> Tuple[str, ...]:
        return self._phantom_names

    def providers(self) -> List[str]:
        return sorted({isp for isp, _ in self._routers})

    def router(self, isp: str, city_key: str) -> Router:
        return self._routers[(isp, city_key)]

    def router_by_ip(self, ip: str) -> Optional[Router]:
        return self._routers_by_ip.get(ip)

    def routers_of(self, isp: str) -> List[Router]:
        return [
            r for (i, _), r in sorted(self._routers.items()) if i == isp
        ]

    def cities_of(self, isp: str) -> List[str]:
        return sorted(city for (i, city) in self._routers if i == isp)

    def has_router(self, isp: str, city_key: str) -> bool:
        return (isp, city_key) in self._routers

    def uses_mpls(self, isp: str) -> bool:
        return isp in self._mpls

    def conduits_for_hop(
        self, isp: str, city_a: str, city_b: str
    ) -> Tuple[str, ...]:
        """Ground-truth conduit ids under one intra-provider router hop."""
        return self._link_conduits.get((isp, *canonical_edge(city_a, city_b)), ())
