"""Campaign generation: the Edgescope-style measurement workload.

The paper's data come from BitTorrent clients in diverse locations
(Edgescope [80]) probing peers and services: clients sit in residential
access networks (cable MSOs and consumer ISPs) weighted by population,
and destinations concentrate in content cities hosted on transit
backbones — which is why Level 3 dominates the observed conduit usage
(Table 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.cities import city_by_name
from repro.traceroute.probe import ProbeEngine, TracerouteRecord
from repro.traceroute.topology import InternetTopology

#: Residential access providers clients sit behind, with mix weights.
DEFAULT_CLIENT_ISPS: Tuple[Tuple[str, float], ...] = (
    ("Comcast", 4.0),
    ("TWC", 3.0),
    ("Cox", 2.0),
    ("Suddenlink", 1.0),
    ("Verizon", 2.5),
    ("AT&T", 2.5),
)

#: Destination hosting providers, with mix weights.  Level 3's dominance
#: here reflects its role as the largest content-transit backbone.
DEFAULT_DEST_ISPS: Tuple[Tuple[str, float], ...] = (
    ("Level 3", 6.0),
    ("Cogent", 2.0),
    ("SoftLayer", 2.0),
    ("AT&T", 1.5),
    ("Verizon", 1.2),
    ("Comcast", 1.5),
    ("CenturyLink", 1.0),
    ("MFN", 0.8),
    ("XO", 0.8),
    ("Zayo", 0.7),
    ("NTT", 0.6),
    ("Cox", 0.6),
    ("Sprint", 0.6),
    ("GTT", 0.4),
)


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one measurement campaign."""

    num_traces: int = 20000
    seed: int = 41
    client_isps: Tuple[Tuple[str, float], ...] = DEFAULT_CLIENT_ISPS
    dest_isps: Tuple[Tuple[str, float], ...] = DEFAULT_DEST_ISPS
    #: Destination cities are weighted by population to this power
    #: (content concentrates in big metros).
    dest_population_exponent: float = 1.3
    #: Client cities are weighted by population to this power.
    client_population_exponent: float = 0.9


def _weighted_cities(
    topology: InternetTopology, isp: str, exponent: float
) -> Tuple[List[str], List[float]]:
    cities = topology.cities_of(isp)
    weights = [
        max(1.0, float(city_by_name(c).population)) ** exponent for c in cities
    ]
    return cities, weights


def run_campaign(
    topology: InternetTopology,
    config: Optional[CampaignConfig] = None,
    engine: Optional[ProbeEngine] = None,
) -> List[TracerouteRecord]:
    """Generate a full campaign of traceroutes, deterministically.

    Unreachable picks (client provider absent from a city, etc.) are
    skipped and retried, so the result always has ``num_traces`` records
    unless the topology is pathologically disconnected.
    """
    config = config if config is not None else CampaignConfig()
    rng = random.Random(config.seed)
    if engine is None:
        engine = ProbeEngine(topology, seed=config.seed + 1)
    available = set(topology.providers())
    client_isps = [(i, w) for i, w in config.client_isps if i in available]
    dest_isps = [(i, w) for i, w in config.dest_isps if i in available]
    if not client_isps or not dest_isps:
        raise ValueError("no usable client or destination providers")
    client_names = [i for i, _ in client_isps]
    client_weights = [w for _, w in client_isps]
    dest_names = [i for i, _ in dest_isps]
    dest_weights = [w for _, w in dest_isps]
    city_cache: Dict[Tuple[str, float], Tuple[List[str], List[float]]] = {}

    def pick_city(isp: str, exponent: float) -> str:
        key = (isp, exponent)
        if key not in city_cache:
            city_cache[key] = _weighted_cities(topology, isp, exponent)
        cities, weights = city_cache[key]
        return rng.choices(cities, weights=weights, k=1)[0]

    records: List[TracerouteRecord] = []
    attempts = 0
    max_attempts = config.num_traces * 10
    while len(records) < config.num_traces and attempts < max_attempts:
        attempts += 1
        src_isp = rng.choices(client_names, weights=client_weights, k=1)[0]
        dst_isp = rng.choices(dest_names, weights=dest_weights, k=1)[0]
        src_city = pick_city(src_isp, config.client_population_exponent)
        dst_city = pick_city(dst_isp, config.dest_population_exponent)
        if src_city == dst_city and src_isp == dst_isp:
            continue
        record = engine.trace(src_city, src_isp, dst_city, dst_isp)
        if record.reached:
            records.append(record)
    return records
