"""Campaign generation: the Edgescope-style measurement workload.

The paper's data come from BitTorrent clients in diverse locations
(Edgescope [80]) probing peers and services: clients sit in residential
access networks (cable MSOs and consumer ISPs) weighted by population,
and destinations concentrate in content cities hosted on transit
backbones — which is why Level 3 dominates the observed conduit usage
(Table 4).

Every trace index owns a private RNG stream derived from
``(config.seed, index)``, so a campaign is an order-independent map
over trace indices: the serial loop and the sharded
``ProcessPoolExecutor`` path produce byte-identical columns, and any
subrange can be regenerated without replaying the whole campaign.  Two
stream *contracts* implement that property (``config.rng_contract``):

* **v1** — per-trace ``random.Random(blake2b(seed:index))`` streams,
  the historical contract, kept bit-for-bit for every pinned golden;
* **v2** (default) — counter-based Philox streams positioned by the
  absolute trace index (:mod:`repro.traceroute.rngv2`), which lets a
  shard draw thousands of traces per numpy call instead of paying the
  ~14.5 µs/trace Python RNG floor.

A campaign materializes as :class:`~repro.traceroute.columns.TraceColumns`
— numpy columns plus interned string tables — not a list of record
objects; the columns still behave as a sequence of
:class:`~repro.traceroute.probe.TracerouteRecord` for every legacy
consumer.  Pool workers fill a named ``multiprocessing.shared_memory``
segment with their shard's raw column bytes and return only the segment
name and an array manifest; the parent maps each segment, stitches all
shards into the final columns with one pass, and unlinks every segment
(a finally-scoped sweep also covers segments orphaned by crashed
workers or a KeyboardInterrupt, so ``/dev/shm`` never accumulates).

That same per-index property makes the pool path *fault-tolerant for
free*: when a worker process dies (OOM kill, segfault, injected crash)
the broken pool is torn down, re-spawned after a bounded exponential
backoff, and only the incomplete shards are requeued — replaying a
shard cannot change its columns.  After ``max_pool_restarts``
consecutive restarts with no progress the remaining shards degrade to
an in-process serial run, so a campaign always completes with the exact
column stream a fault-free run would have produced.  Recovery is
observable: each restart emits a ``campaign.retry`` tracer event and
the serial fallback emits ``campaign.degraded``, both visible in run
manifests.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import os
import random
import time
from bisect import bisect
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from itertools import accumulate
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

try:  # the POSIX C helper behind SharedMemory; lets the janitor unlink
    import _posixshmem  # segments too malformed to attach to
except ImportError:  # pragma: no cover - non-POSIX platforms
    _posixshmem = None

from repro.data.cities import city_by_name
from repro.obs.faults import FaultInjector, get_fault_injector, set_fault_injector
from repro.obs.tracer import get_tracer
from repro.traceroute.columns import ColumnSchema, TraceColumns, unpack_shard
from repro.traceroute.probe import ProbeEngine, TracerouteRecord
from repro.traceroute.rngv2 import (  # noqa: F401 (re-exports)
    DEFAULT_BATCH_SIZE,
    MAX_ATTEMPTS_PER_TRACE,
    SUPPORTED_RNG_CONTRACTS,
    default_rng_contract,
    generate_columns_v2,
    trace_record_v2,
)
from repro.traceroute.topology import InternetTopology

#: Residential access providers clients sit behind, with mix weights.
DEFAULT_CLIENT_ISPS: Tuple[Tuple[str, float], ...] = (
    ("Comcast", 4.0),
    ("TWC", 3.0),
    ("Cox", 2.0),
    ("Suddenlink", 1.0),
    ("Verizon", 2.5),
    ("AT&T", 2.5),
)

#: Destination hosting providers, with mix weights.  Level 3's dominance
#: here reflects its role as the largest content-transit backbone.
DEFAULT_DEST_ISPS: Tuple[Tuple[str, float], ...] = (
    ("Level 3", 6.0),
    ("Cogent", 2.0),
    ("SoftLayer", 2.0),
    ("AT&T", 1.5),
    ("Verizon", 1.2),
    ("Comcast", 1.5),
    ("CenturyLink", 1.0),
    ("MFN", 0.8),
    ("XO", 0.8),
    ("Zayo", 0.7),
    ("NTT", 0.6),
    ("Cox", 0.6),
    ("Sprint", 0.6),
    ("GTT", 0.4),
)

#: Smallest shard handed to one worker task; keeps task dispatch
#: overhead negligible next to the tracing work.
_MIN_CHUNK = 250

#: Ceiling on the exponential backoff between pool restarts.
_RETRY_BACKOFF_CAP_S = 2.0

#: Distinguishes segment names across campaigns within one process.
_SEGMENT_SEQ = itertools.count()


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one measurement campaign."""

    num_traces: int = 20000
    seed: int = 41
    client_isps: Tuple[Tuple[str, float], ...] = DEFAULT_CLIENT_ISPS
    dest_isps: Tuple[Tuple[str, float], ...] = DEFAULT_DEST_ISPS
    #: Destination cities are weighted by population to this power
    #: (content concentrates in big metros).
    dest_population_exponent: float = 1.3
    #: Client cities are weighted by population to this power.
    client_population_exponent: float = 0.9
    #: Worker processes: 1 runs in-process, 0 auto-detects CPU cores.
    #: The column stream is identical for every worker count.
    workers: int = 1
    #: Consecutive no-progress pool restarts tolerated before the
    #: remaining shards degrade to an in-process serial run.
    max_pool_restarts: int = 3
    #: First retry delay; doubles per consecutive restart, capped at
    #: :data:`_RETRY_BACKOFF_CAP_S`.
    retry_backoff_s: float = 0.05
    #: RNG contract version: 1 = per-trace ``random.Random`` streams
    #: (the historical contract, kept for golden compatibility), 2 =
    #: counter-based vectorized Philox streams (see
    #: :mod:`repro.traceroute.rngv2`).  Defaults from the
    #: ``REPRO_RNG_CONTRACT`` environment, else v2.
    rng_contract: int = field(default_factory=default_rng_contract)
    #: v2 vectorization batch (traces materialized per numpy call);
    #: never affects the column bytes, only peak working-set size.
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.rng_contract not in SUPPORTED_RNG_CONTRACTS:
            raise ValueError(
                f"rng_contract must be one of {SUPPORTED_RNG_CONTRACTS}, "
                f"got {self.rng_contract!r}"
            )
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


def _city_table(
    topology: InternetTopology, isp: str, exponent: float
) -> Tuple[List[str], List[float]]:
    cities = topology.cities_of(isp)
    cum_weights = list(
        accumulate(
            max(1.0, float(city_by_name(c).population)) ** exponent
            for c in cities
        )
    )
    return cities, cum_weights


class _CampaignPlan:
    """Deterministic sampling tables, identical in every worker."""

    def __init__(self, topology: InternetTopology, config: CampaignConfig):
        available = set(topology.providers())
        client = [(i, w) for i, w in config.client_isps if i in available]
        dest = [(i, w) for i, w in config.dest_isps if i in available]
        if not client or not dest:
            raise ValueError("no usable client or destination providers")
        self.client_names = [i for i, _ in client]
        self.client_cum = list(accumulate(w for _, w in client))
        self.dest_names = [i for i, _ in dest]
        self.dest_cum = list(accumulate(w for _, w in dest))
        self.client_cities: Dict[str, Tuple[List[str], List[float]]] = {
            isp: _city_table(topology, isp, config.client_population_exponent)
            for isp in self.client_names
        }
        self.dest_cities: Dict[str, Tuple[List[str], List[float]]] = {
            isp: _city_table(topology, isp, config.dest_population_exponent)
            for isp in self.dest_names
        }
        #: Every router node a campaign trace can target — the batch the
        #: array routing core precomputes in one C Dijkstra call.
        self.dest_nodes: List[Tuple[str, str]] = [
            (isp, city)
            for isp in self.dest_names
            for city in self.dest_cities[isp][0]
        ]


def _trace_seed(seed: int, index: int) -> int:
    """A well-mixed, process-stable seed for one trace's RNG stream."""
    data = f"{seed}:{index}".encode()
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def _pick(rng: random.Random, values: List[str], cum: List[float]) -> str:
    """One weighted draw; same semantics as ``rng.choices`` with
    ``cum_weights`` but without its per-call overhead."""
    return values[bisect(cum, rng.random() * cum[-1], 0, len(values) - 1)]


def _trace_for_index(
    engine: ProbeEngine,
    plan: _CampaignPlan,
    config: CampaignConfig,
    index: int,
) -> TracerouteRecord:
    """The record for one trace index, independent of all other traces.

    Dispatches on ``config.rng_contract``; under v1 this is the
    reference object path whose RNG stream :func:`_columns_for_index`
    consumes draw for draw, under v2 it delegates to the scalar
    reference implementation of the vectorized batch path.
    """
    if config.rng_contract == 2:
        return trace_record_v2(engine, plan, config, index)
    rng = random.Random(_trace_seed(config.seed, index))
    for _ in range(MAX_ATTEMPTS_PER_TRACE):
        src_isp = _pick(rng, plan.client_names, plan.client_cum)
        dst_isp = _pick(rng, plan.dest_names, plan.dest_cum)
        cities, cum = plan.client_cities[src_isp]
        src_city = _pick(rng, cities, cum)
        cities, cum = plan.dest_cities[dst_isp]
        dst_city = _pick(rng, cities, cum)
        if src_city == dst_city and src_isp == dst_isp:
            continue
        record = engine.trace(src_city, src_isp, dst_city, dst_isp, rng=rng)
        if record.reached:
            return record
    raise RuntimeError(
        f"trace {index}: no reachable (src, dst) pair after "
        f"{MAX_ATTEMPTS_PER_TRACE} draws; topology too disconnected"
    )


def _columns_for_index(
    engine: ProbeEngine,
    plan: _CampaignPlan,
    config: CampaignConfig,
    writer,
    index: int,
) -> None:
    """Columnar :func:`_trace_for_index`: append the trace to *writer*.

    Draw-for-draw the same RNG stream — endpoint picks, degenerate
    redraws, per-hop noise — so the columns it produces reconstruct the
    exact records of the object path.
    """
    rng = random.Random(_trace_seed(config.seed, index))
    for _ in range(MAX_ATTEMPTS_PER_TRACE):
        src_isp = _pick(rng, plan.client_names, plan.client_cum)
        dst_isp = _pick(rng, plan.dest_names, plan.dest_cum)
        cities, cum = plan.client_cities[src_isp]
        src_city = _pick(rng, cities, cum)
        cities, cum = plan.dest_cities[dst_isp]
        dst_city = _pick(rng, cities, cum)
        if src_city == dst_city and src_isp == dst_isp:
            continue
        if engine.trace_into(
            writer, src_city, src_isp, dst_city, dst_isp, rng
        ):
            return
    raise RuntimeError(
        f"trace {index}: no reachable (src, dst) pair after "
        f"{MAX_ATTEMPTS_PER_TRACE} draws; topology too disconnected"
    )


def _shard_columns(
    engine: ProbeEngine,
    plan: _CampaignPlan,
    config: CampaignConfig,
    start: int,
    stop: int,
) -> TraceColumns:
    """Columns of trace indices ``[start, stop)`` under the active
    contract — the one code path serial runs, pool workers, and the
    serial fallback all share, so every execution mode is identical by
    construction."""
    if config.rng_contract == 2:
        return generate_columns_v2(engine, plan, config, start, stop)
    writer = engine.begin_columns(stop - start)
    for index in range(start, stop):
        _columns_for_index(engine, plan, config, writer, index)
    return writer.finish()


def resolve_workers(workers: int) -> int:
    """Worker count with 0 meaning one per CPU core."""
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, workers)


# ----------------------------------------------------------------------
# Shared-memory shard transport
# ----------------------------------------------------------------------
def _segment_name(token: str, start: int) -> str:
    """Predictable segment name: the parent can sweep a crashed
    worker's segment without ever having heard back from it."""
    return f"repro-{token}-{start:x}"


def _unlink_stale_segment(name: str) -> None:
    """Remove a leftover segment that may not be attachable.

    A worker killed between ``shm_open`` and ``ftruncate`` (e.g. by the
    executor tearing down its siblings after another worker crashed)
    leaves a zero-size segment that ``SharedMemory(name=...)`` refuses
    to map ("cannot mmap an empty file").  Attach-and-unlink handles
    the well-formed case — and keeps the resource tracker's register/
    unregister ledger balanced — while the raw ``shm_unlink`` fallback
    removes unmappable stales (which died before the tracker ever
    registered them).
    """
    try:
        stale = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    except (ValueError, OSError):
        if _posixshmem is not None:
            with contextlib.suppress(OSError):
                _posixshmem.shm_unlink("/" + name)
        return
    stale.unlink()
    with contextlib.suppress(BufferError):
        stale.close()


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create a named segment, displacing any stale leftover.

    A worker killed between creating its segment and returning leaves
    the name behind; the shard's replay (same name, derived from the
    shard start) unlinks the leftover and starts clean.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        _unlink_stale_segment(name)
        return shared_memory.SharedMemory(name=name, create=True, size=size)


class _ShardSegments:
    """Parent-side ownership of every segment one campaign can create.

    Workers create segments under predictable names; the parent attaches
    to harvest and — in a ``finally`` — closes and unlinks everything it
    expected, whether or not the worker that owned a name ever reported
    back.  This is the guard against ``/dev/shm`` leaks on pool crashes
    and KeyboardInterrupt.
    """

    def __init__(self, token: str):
        self.token = token
        self._expected: set = set()
        self._attached: List[shared_memory.SharedMemory] = []

    def expect(self, start: int) -> None:
        self._expected.add(_segment_name(self.token, start))

    def attach(self, name: str) -> shared_memory.SharedMemory:
        segment = shared_memory.SharedMemory(name=name)
        self._expected.add(name)
        self._attached.append(segment)
        return segment

    def cleanup(self) -> None:
        for segment in self._attached:
            # A close can fail only while numpy views into the buffer
            # are still alive (error paths); the unlink sweep below
            # still removes the name, and the mapping dies with the
            # process.
            with contextlib.suppress(BufferError):
                segment.close()
        self._attached.clear()
        for name in self._expected:
            _unlink_stale_segment(name)
        self._expected.clear()


# ----------------------------------------------------------------------
# Worker-process state.  Populated once per worker by the pool
# initializer; under the default ``fork`` start method the topology
# (and its compiled routing core) is inherited copy-on-write.
_WORKER_STATE: Optional[
    Tuple[ProbeEngine, _CampaignPlan, CampaignConfig, str]
] = None


def _init_worker(
    topology: InternetTopology,
    config: CampaignConfig,
    fault_injector: Optional[FaultInjector] = None,
    segment_token: str = "",
) -> None:
    global _WORKER_STATE
    # Explicit initargs plumbing (rather than relying on fork
    # inheritance) keeps injection working under any start method and
    # across pool respawns.
    set_fault_injector(fault_injector)
    engine = ProbeEngine(topology, seed=config.seed + 1)
    plan = _CampaignPlan(topology, config)
    engine.prepare_destinations(plan.dest_nodes)
    _WORKER_STATE = (engine, plan, config, segment_token)


def _run_chunk(
    bounds: Tuple[int, int]
) -> Tuple[str, Dict[str, Any], float]:
    """One shard's columns, delivered through shared memory.

    The shard is traced into a :class:`ColumnWriter`, packed into a
    named segment as raw array bytes, and only ``(segment name, array
    manifest, wall time)`` crosses the ``ProcessPoolExecutor`` result
    pipe — no pickling of records, no copy of the columns.  The wall
    time is measured inside the worker and attributed to a
    ``campaign.shard`` span in the parent, which is how per-shard
    observability crosses the process boundary.
    """
    start, stop = bounds
    injector = get_fault_injector()
    if injector is not None:
        injector.maybe_crash_worker(start)
    engine, plan, config, token = _WORKER_STATE
    started = time.perf_counter()
    columns = _shard_columns(engine, plan, config, start, stop)
    elapsed = time.perf_counter() - started
    name = _segment_name(token, start)
    segment = _create_segment(name, columns.transport_size())
    try:
        manifest = columns.pack_into(segment.buf)
    finally:
        segment.close()
    return name, manifest, elapsed


def run_campaign(
    topology: InternetTopology,
    config: Optional[CampaignConfig] = None,
    engine: Optional[ProbeEngine] = None,
    workers: Optional[int] = None,
) -> TraceColumns:
    """Generate a full campaign of traceroutes, deterministically.

    Returns :class:`~repro.traceroute.columns.TraceColumns` — the
    columnar campaign store, which still reads as a sequence of
    :class:`TracerouteRecord` for legacy consumers.  Degenerate picks
    (identical endpoints, client provider absent from a city, etc.) are
    redrawn within the trace's own RNG stream, so the result always has
    exactly ``num_traces`` reached records unless the topology is
    pathologically disconnected.

    *workers* overrides ``config.workers`` (0 auto-detects cores).  The
    column stream is byte-identical for every worker count; *engine* is
    only used by the in-process path — shards build their own engines.
    """
    config = config if config is not None else CampaignConfig()
    plan = _CampaignPlan(topology, config)
    n_workers = resolve_workers(
        config.workers if workers is None else workers
    )
    if n_workers > 1 and config.num_traces < 2 * _MIN_CHUNK:
        n_workers = 1  # not worth forking for a tiny campaign
    tracer = get_tracer()
    if n_workers <= 1:
        with tracer.span(
            "campaign.run", traces=config.num_traces, workers=1,
            mode="serial", rng_contract=config.rng_contract,
            batch_size=config.batch_size,
        ):
            if engine is None:
                engine = ProbeEngine(topology, seed=config.seed + 1)
            engine.prepare_destinations(plan.dest_nodes)
            columns = _shard_columns(
                engine, plan, config, 0, config.num_traces
            )
            tracer.count("records", len(columns))
            return columns
    with tracer.span(
        "campaign.run", traces=config.num_traces, workers=n_workers,
        mode="pool", rng_contract=config.rng_contract,
        batch_size=config.batch_size,
    ):
        # Warm the shared routing core before forking so every worker
        # inherits the batched predecessor arrays instead of recomputing.
        core_factory = getattr(topology, "routing_core", None)
        if core_factory is not None:
            core = core_factory()
            if core is not None:
                core.prepare(plan.dest_nodes)
        chunk = max(_MIN_CHUNK, -(-config.num_traces // (n_workers * 4)))
        bounds = [
            (start, min(start + chunk, config.num_traces))
            for start in range(0, config.num_traces, chunk)
        ]
        columns = _run_sharded(topology, plan, config, n_workers, bounds)
        if tracer.enabled:
            tracer.annotate(shards=len(bounds))
        tracer.count("records", len(columns))
        return columns


def _run_sharded(
    topology: InternetTopology,
    plan: _CampaignPlan,
    config: CampaignConfig,
    n_workers: int,
    bounds: List[Tuple[int, int]],
) -> TraceColumns:
    """Run every shard to completion, surviving worker-process deaths.

    A dead worker breaks the whole ``ProcessPoolExecutor``; shard
    segments harvested before the break are kept, the pool is
    re-spawned after an exponentially backed-off delay, and only
    incomplete shards are requeued.  Requeueing is safe because each
    trace index owns a private RNG stream: replaying a shard reproduces
    its columns exactly.  Consecutive no-progress restarts beyond
    ``config.max_pool_restarts`` degrade the remaining shards to an
    in-process serial run (a pool that cannot hold workers — fork bomb
    protection, rlimits, cgroup OOM — must not make the campaign
    unfinishable).

    Every shared-memory segment the campaign can have created is closed
    and unlinked in the ``finally`` sweep, including segments orphaned
    by crashed workers and segments in flight when a KeyboardInterrupt
    lands.
    """
    tracer = get_tracer()
    injector = get_fault_injector()
    schema = ColumnSchema.from_topology(topology)
    # One tracker process shared (via fork) by parent and workers, so a
    # worker-registered segment is the same tracked resource the parent
    # unlinks — no spurious leak warnings at interpreter exit.
    resource_tracker.ensure_running()
    token = f"{os.getpid():x}-{next(_SEGMENT_SEQ):x}"
    segments = _ShardSegments(token)
    results: Dict[Tuple[int, int], TraceColumns] = {}
    parts: List[TraceColumns] = []
    pending = list(bounds)
    restarts = 0
    backoff = max(0.0, config.retry_backoff_s)
    try:
        while pending:
            harvested = 0
            try:
                with ProcessPoolExecutor(
                    max_workers=min(n_workers, len(pending)),
                    initializer=_init_worker,
                    initargs=(topology, config, injector, token),
                ) as pool:
                    futures = {}
                    for b in pending:
                        segments.expect(b[0])
                        futures[pool.submit(_run_chunk, b)] = b
                    for future in as_completed(futures):
                        start, stop = futures[future]
                        name, manifest, elapsed = future.result()
                        # No local binding of the unpacked shard: its
                        # arrays view the segment buffer, and every
                        # view must be droppable (results.clear) before
                        # the cleanup sweep closes the mappings.
                        results[(start, stop)] = unpack_shard(
                            schema, segments.attach(name).buf, manifest,
                            expect_rng_contract=config.rng_contract,
                        )
                        harvested += 1
                        tracer.record_span(
                            "campaign.shard", elapsed,
                            start=start, stop=stop,
                            records=int(manifest["num_traces"]),
                        )
            except BrokenProcessPool:
                pending = [b for b in pending if b not in results]
                restarts = restarts + 1 if harvested == 0 else 1
                if restarts > config.max_pool_restarts:
                    tracer.event(
                        "campaign.degraded", mode="serial",
                        shards_remaining=len(pending),
                        restarts=restarts - 1,
                    )
                    _run_serial_fallback(
                        topology, plan, config, pending, results
                    )
                    break
                tracer.event(
                    "campaign.retry", attempt=restarts,
                    shards_remaining=len(pending), backoff_s=backoff,
                )
                if backoff > 0.0:
                    time.sleep(backoff)
                backoff = min(
                    max(backoff, config.retry_backoff_s) * 2,
                    _RETRY_BACKOFF_CAP_S,
                )
            else:
                pending = [b for b in pending if b not in results]
        parts.extend(results[b] for b in bounds)
        return TraceColumns.concatenate(schema, parts)
    finally:
        # Drop every view into the segments (even when an exception is
        # propagating) before the cleanup sweep closes the mappings.
        results.clear()
        parts.clear()
        segments.cleanup()


def _run_serial_fallback(
    topology: InternetTopology,
    plan: _CampaignPlan,
    config: CampaignConfig,
    pending: List[Tuple[int, int]],
    results: Dict[Tuple[int, int], TraceColumns],
) -> None:
    """Finish *pending* shards in-process (same columns as any worker)."""
    engine = ProbeEngine(topology, seed=config.seed + 1)
    engine.prepare_destinations(plan.dest_nodes)
    tracer = get_tracer()
    for start, stop in pending:
        started = time.perf_counter()
        results[(start, stop)] = _shard_columns(
            engine, plan, config, start, stop
        )
        tracer.record_span(
            "campaign.shard", time.perf_counter() - started,
            start=start, stop=stop, records=stop - start, degraded=True,
        )
