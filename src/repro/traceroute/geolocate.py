"""IP geolocation and DNS naming-hint decoding.

The paper resolves traceroute hops to places "by using geolocation
information and naming hints in the traceroute data [78, 92]".  Naming
hints (airport/city codes embedded in router names) are authoritative
when present; the geolocation database is right most of the time but
occasionally snaps to a nearby city or fails — the standard error modes
of commercial IP geolocation.
"""

from __future__ import annotations

import random
import re
from typing import Dict, Optional

from repro.data.cities import CITIES, city_by_code, city_by_name, nearest_city
from repro.fibermap.synthesis import _stable_unit
from repro.traceroute.rngv2 import (
    RNG_CONTRACT_V1,
    SUPPORTED_RNG_CONTRACTS,
    default_rng_contract,
    geo_unit_draws,
)
from repro.traceroute.topology import InternetTopology

#: Probability the database returns the correct city.
DEFAULT_ACCURACY = 0.85
#: Probability it returns a nearby (wrong) city; the remainder is "unknown".
DEFAULT_NEAR_MISS = 0.10

_HINT_RE = re.compile(r"^ae-\d+\.cr\d+\.([a-z0-9]+)\.")


def decode_naming_hint(dns_name: str) -> Optional[str]:
    """City key encoded in a router DNS name, if any.

    Implements the DRoP-style decoding of [92]: the third label of
    ``ae-1.cr1.<code>.<provider>.net`` is a city code.
    """
    match = _HINT_RE.match(dns_name)
    if not match:
        return None
    code = match.group(1)
    try:
        return city_by_code(code).key
    except KeyError:
        return None


class GeolocationDatabase:
    """A noisy commercial-style IP geolocation database.

    Built once against a topology's address plan; per-IP results are
    deterministic (the same IP always geolocates to the same answer).

    Near-miss city picks follow the configured RNG contract: under v1
    (the historical behavior) a single sequential ``random.Random(seed)``
    feeds ``choice``; under v2 the build consumes the GEO stream of the
    counter-based contract (:func:`repro.traceroute.rngv2.geo_unit_draws`)
    — every router owns the slot-0 uniform of its enumeration index
    (sorted providers, each provider's sorted routers), so each answer
    is independent of every other router's error mode.
    """

    def __init__(
        self,
        topology: InternetTopology,
        accuracy: float = DEFAULT_ACCURACY,
        near_miss: float = DEFAULT_NEAR_MISS,
        seed: int = 57,
        rng_contract: Optional[int] = None,
    ):
        if accuracy + near_miss > 1.0:
            raise ValueError("accuracy + near_miss must be <= 1")
        if rng_contract is None:
            rng_contract = default_rng_contract()
        if rng_contract not in SUPPORTED_RNG_CONTRACTS:
            raise ValueError(
                f"rng_contract must be one of {SUPPORTED_RNG_CONTRACTS}, "
                f"got {rng_contract!r}"
            )
        self.rng_contract = rng_contract
        self._entries: Dict[str, Optional[str]] = {}
        routers = [
            router
            for isp in topology.providers()
            for router in topology.routers_of(isp)
        ]
        if rng_contract == RNG_CONTRACT_V1:
            rng = random.Random(seed)
            pick = lambda pool, index: rng.choice(pool)  # noqa: E731
        else:
            draws = geo_unit_draws(seed, len(routers))
            pick = lambda pool, index: pool[  # noqa: E731
                int(draws[index] * len(pool))
            ]
        for index, router in enumerate(routers):
            u = _stable_unit(f"geo|{router.ip}|{seed}")
            if u < accuracy:
                answer: Optional[str] = router.city_key
            elif u < accuracy + near_miss:
                true_city = city_by_name(router.city_key)
                pool = [
                    c
                    for c in CITIES
                    if c.key != true_city.key
                    and true_city.distance_km(c) < 150.0
                ]
                if pool:
                    answer = pick(sorted(pool, key=lambda c: c.key), index).key
                else:
                    answer = router.city_key
            else:
                answer = None
            self._entries[router.ip] = answer

    def locate(self, ip: str) -> Optional[str]:
        """City key for *ip*, or ``None`` when the database has no answer."""
        return self._entries.get(ip)

    def __len__(self) -> int:
        return len(self._entries)


def resolve_hop_city(
    dns_name: str, ip: str, database: GeolocationDatabase
) -> Optional[str]:
    """Best-effort hop location: naming hint first, then geolocation."""
    hint = decode_naming_hint(dns_name)
    if hint is not None:
        return hint
    return database.locate(ip)
