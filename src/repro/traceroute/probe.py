"""The traceroute simulator.

Routes a probe across the router-level topology (intra-provider fiber
latencies plus peering penalties), then renders what a measurement host
would actually observe: per-hop IP, reverse-DNS name, and RTT, with MPLS
providers hiding their interior hops and per-hop queueing noise on the
timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.perf.routing import RoutingCore, build_routing_core
from repro.traceroute.topology import InternetTopology

#: Client access-network delay added to every RTT sample, milliseconds.
ACCESS_DELAY_MS = 4.0
#: Upper bound of uniform per-hop queueing noise, milliseconds.
QUEUE_NOISE_MS = 0.8


@dataclass(frozen=True)
class Hop:
    """One observed traceroute hop."""

    ip: str
    dns_name: str
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteRecord:
    """One complete traceroute observation."""

    src_city: str
    src_isp: str
    dst_city: str
    dst_isp: str
    hops: Tuple[Hop, ...]
    reached: bool

    @property
    def num_hops(self) -> int:
        return len(self.hops)


class ProbeEngine:
    """Simulates traceroutes over an :class:`InternetTopology`.

    Shortest paths come from the compiled array routing core
    (:mod:`repro.perf.routing`) when scipy is available; the original
    per-destination NetworkX Dijkstra stays as the reference
    implementation (``use_array_core=False``) and either way the
    per-destination computation is cached, so large campaigns re-use it
    across thousands of traces.
    """

    def __init__(
        self,
        topology: InternetTopology,
        seed: int = 31,
        use_array_core: Optional[bool] = None,
    ):
        self._topology = topology
        self._rng = random.Random(seed)
        # Per-destination shortest-path predecessor maps (reference
        # implementation): campaigns probe few destinations from many
        # sources, so one Dijkstra per destination amortizes.
        self._pred_cache: Dict[Tuple[str, str], Dict] = {}
        # Flat both-direction latency table: hop rendering touches one
        # edge per hop, and a plain dict lookup beats building a
        # NetworkX adjacency view every time.
        self._edge_ms: Dict[Tuple[Tuple[str, str], Tuple[str, str]], float] = {}
        for u, v, ms in topology.graph.edges(data="ms", default=0.0):
            self._edge_ms[(u, v)] = ms
            self._edge_ms[(v, u)] = ms
        core: Optional[RoutingCore] = None
        if use_array_core is not False:
            # InternetTopology shares one compiled core per topology;
            # duck-typed stand-ins (e.g. DegradedTopology) get a fresh
            # compile of their own graph.
            factory = getattr(topology, "routing_core", None)
            core = (
                factory()
                if factory is not None
                else build_routing_core(topology.graph)
            )
            if core is None and use_array_core is True:
                raise RuntimeError(
                    "array routing core requested but scipy is unavailable"
                )
        self._core = core

    @property
    def uses_array_core(self) -> bool:
        return self._core is not None

    # ------------------------------------------------------------------
    def prepare_destinations(self, dst_nodes) -> int:
        """Batch one Dijkstra over every new destination (array core)."""
        if self._core is None:
            return 0
        return self._core.prepare(dst_nodes)

    def _predecessors(self, dst_node: Tuple[str, str]) -> Dict:
        pred = self._pred_cache.get(dst_node)
        if pred is None:
            pred, _dist = nx.dijkstra_predecessor_and_distance(
                self._topology.graph, dst_node, weight="ms"
            )
            self._pred_cache[dst_node] = pred
        return pred

    def _route_reference(
        self, src_node: Tuple[str, str], dst_node: Tuple[str, str]
    ):
        """The NetworkX reference path (cross-checked against the core)."""
        graph = self._topology.graph
        if src_node not in graph or dst_node not in graph:
            return None
        pred = self._predecessors(dst_node)
        if src_node not in pred:
            return None
        # Walk from source toward the Dijkstra root (the destination).
        path = [src_node]
        node = src_node
        while node != dst_node:
            nexts = pred[node]
            if not nexts:
                break
            node = nexts[0]
            path.append(node)
        return path if path[-1] == dst_node else None

    def _route(self, src_node: Tuple[str, str], dst_node: Tuple[str, str]):
        if self._core is not None:
            return self._core.path(src_node, dst_node)
        return self._route_reference(src_node, dst_node)

    def router_path(
        self, src_city: str, src_isp: str, dst_city: str, dst_isp: str
    ) -> Optional[List[Tuple[str, str]]]:
        """The underlying router-node path, or ``None`` if unreachable."""
        if not self._topology.has_router(src_isp, src_city):
            return None
        if not self._topology.has_router(dst_isp, dst_city):
            return None
        return self._route((src_isp, src_city), (dst_isp, dst_city))

    # ------------------------------------------------------------------
    def trace(
        self,
        src_city: str,
        src_isp: str,
        dst_city: str,
        dst_isp: str,
        rng: Optional[random.Random] = None,
    ) -> TracerouteRecord:
        """Run one traceroute and render its observable hops.

        *rng* overrides the engine's own noise stream; the campaign
        engine passes a per-trace RNG so that records are independent of
        execution order (serial vs. sharded workers).
        """
        if rng is None:
            rng = self._rng
        path = self.router_path(src_city, src_isp, dst_city, dst_isp)
        if path is None:
            return TracerouteRecord(
                src_city=src_city,
                src_isp=src_isp,
                dst_city=dst_city,
                dst_isp=dst_isp,
                hops=(),
                reached=False,
            )
        edge_ms = self._edge_ms
        hops: List[Hop] = []
        one_way = ACCESS_DELAY_MS / 2.0
        previous = None
        for index, node in enumerate(path):
            if previous is not None:
                one_way += edge_ms[(previous, node)]
            previous = node
            isp, _city = node
            # MPLS providers reveal only their ingress and egress routers.
            if self._topology.uses_mpls(isp):
                is_edge_of_isp = (
                    index == 0
                    or index == len(path) - 1
                    or path[index - 1][0] != isp
                    or path[index + 1][0] != isp
                )
                if not is_edge_of_isp:
                    continue
            router = self._topology.router(*node)
            rtt = 2.0 * one_way + rng.uniform(0.0, QUEUE_NOISE_MS)
            hops.append(Hop(ip=router.ip, dns_name=router.dns_name, rtt_ms=rtt))
        return TracerouteRecord(
            src_city=src_city,
            src_isp=src_isp,
            dst_city=dst_city,
            dst_isp=dst_isp,
            hops=tuple(hops),
            reached=True,
        )
