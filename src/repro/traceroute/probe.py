"""The traceroute simulator.

Routes a probe across the router-level topology (intra-provider fiber
latencies plus peering penalties), then renders what a measurement host
would actually observe: per-hop IP, reverse-DNS name, and RTT, with MPLS
providers hiding their interior hops and per-hop queueing noise on the
timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.perf.routing import RoutingCore, build_routing_core
from repro.traceroute.columns import ColumnSchema, ColumnWriter
from repro.traceroute.topology import InternetTopology

#: Client access-network delay added to every RTT sample, milliseconds.
ACCESS_DELAY_MS = 4.0
#: Upper bound of uniform per-hop queueing noise, milliseconds.
QUEUE_NOISE_MS = 0.8


@dataclass(frozen=True)
class Hop:
    """One observed traceroute hop."""

    ip: str
    dns_name: str
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteRecord:
    """One complete traceroute observation."""

    src_city: str
    src_isp: str
    dst_city: str
    dst_isp: str
    hops: Tuple[Hop, ...]
    reached: bool

    @property
    def num_hops(self) -> int:
        return len(self.hops)


@dataclass(frozen=True)
class _HopTemplate:
    """The deterministic part of every trace between one endpoint pair.

    For a fixed (source node, destination node) the router path, MPLS
    visibility, and accumulated one-way latencies never change — only
    the per-hop queueing noise does.  Caching them as arrays turns the
    per-trace work of the columnar path into endpoint draws plus one
    noise draw per visible hop; the doubled cumulative latencies are
    accumulated in exactly :meth:`ProbeEngine.trace`'s order, so
    ``double_cum[j] + noise_j`` is bit-for-bit the scalar RTT.
    """

    src_city_id: int
    src_isp_id: int
    dst_city_id: int
    dst_isp_id: int
    #: Schema router ids of the *visible* hops.
    router_ids: np.ndarray
    #: ``2.0 * one_way`` at each visible hop (float64).
    double_cum: np.ndarray


class ProbeEngine:
    """Simulates traceroutes over an :class:`InternetTopology`.

    Shortest paths come from the compiled array routing core
    (:mod:`repro.perf.routing`) when scipy is available; the original
    per-destination NetworkX Dijkstra stays as the reference
    implementation (``use_array_core=False``) and either way the
    per-destination computation is cached, so large campaigns re-use it
    across thousands of traces.
    """

    def __init__(
        self,
        topology: InternetTopology,
        seed: int = 31,
        use_array_core: Optional[bool] = None,
    ):
        self._topology = topology
        self._rng = random.Random(seed)
        # Per-destination shortest-path predecessor maps (reference
        # implementation): campaigns probe few destinations from many
        # sources, so one Dijkstra per destination amortizes.
        self._pred_cache: Dict[Tuple[str, str], Dict] = {}
        # Flat both-direction latency table, built lazily on the first
        # hop rendering: campaign pool workers construct an engine per
        # process, and walking every graph edge up front is startup
        # cost they may never repay (the columnar path reads latencies
        # out of cached hop templates instead).
        self._edge_ms_table: Optional[
            Dict[Tuple[Tuple[str, str], Tuple[str, str]], float]
        ] = None
        #: (src_node, dst_node) -> template, or False when unreachable.
        self._hop_templates: Dict[
            Tuple[Tuple[str, str], Tuple[str, str]],
            Union[_HopTemplate, bool],
        ] = {}
        self._schema: Optional[ColumnSchema] = None
        core: Optional[RoutingCore] = None
        if use_array_core is not False:
            # InternetTopology shares one compiled core per topology;
            # duck-typed stand-ins (e.g. DegradedTopology) get a fresh
            # compile of their own graph.
            factory = getattr(topology, "routing_core", None)
            core = (
                factory()
                if factory is not None
                else build_routing_core(topology.graph)
            )
            if core is None and use_array_core is True:
                raise RuntimeError(
                    "array routing core requested but scipy is unavailable"
                )
        self._core = core

    @property
    def uses_array_core(self) -> bool:
        return self._core is not None

    @property
    def _edge_ms(
        self,
    ) -> Dict[Tuple[Tuple[str, str], Tuple[str, str]], float]:
        table = self._edge_ms_table
        if table is None:
            table = {}
            graph = self._topology.graph
            for u, v, ms in graph.edges(data="ms", default=0.0):
                table[(u, v)] = ms
                table[(v, u)] = ms
            self._edge_ms_table = table
        return table

    # ------------------------------------------------------------------
    def prepare_destinations(self, dst_nodes) -> int:
        """Batch one Dijkstra over every new destination (array core)."""
        if self._core is None:
            return 0
        return self._core.prepare(dst_nodes)

    def _predecessors(self, dst_node: Tuple[str, str]) -> Dict:
        pred = self._pred_cache.get(dst_node)
        if pred is None:
            pred, _dist = nx.dijkstra_predecessor_and_distance(
                self._topology.graph, dst_node, weight="ms"
            )
            self._pred_cache[dst_node] = pred
        return pred

    def _route_reference(
        self, src_node: Tuple[str, str], dst_node: Tuple[str, str]
    ):
        """The NetworkX reference path (cross-checked against the core)."""
        graph = self._topology.graph
        if src_node not in graph or dst_node not in graph:
            return None
        pred = self._predecessors(dst_node)
        if src_node not in pred:
            return None
        # Walk from source toward the Dijkstra root (the destination).
        path = [src_node]
        node = src_node
        while node != dst_node:
            nexts = pred[node]
            if not nexts:
                break
            node = nexts[0]
            path.append(node)
        return path if path[-1] == dst_node else None

    def _route(self, src_node: Tuple[str, str], dst_node: Tuple[str, str]):
        if self._core is not None:
            return self._core.path(src_node, dst_node)
        return self._route_reference(src_node, dst_node)

    def router_path(
        self, src_city: str, src_isp: str, dst_city: str, dst_isp: str
    ) -> Optional[List[Tuple[str, str]]]:
        """The underlying router-node path, or ``None`` if unreachable."""
        if not self._topology.has_router(src_isp, src_city):
            return None
        if not self._topology.has_router(dst_isp, dst_city):
            return None
        return self._route((src_isp, src_city), (dst_isp, dst_city))

    # ------------------------------------------------------------------
    def trace(
        self,
        src_city: str,
        src_isp: str,
        dst_city: str,
        dst_isp: str,
        rng: Optional[random.Random] = None,
    ) -> TracerouteRecord:
        """Run one traceroute and render its observable hops.

        *rng* overrides the engine's own noise stream; the campaign
        engine passes a per-trace RNG so that records are independent of
        execution order (serial vs. sharded workers).
        """
        if rng is None:
            rng = self._rng
        path = self.router_path(src_city, src_isp, dst_city, dst_isp)
        if path is None:
            return TracerouteRecord(
                src_city=src_city,
                src_isp=src_isp,
                dst_city=dst_city,
                dst_isp=dst_isp,
                hops=(),
                reached=False,
            )
        edge_ms = self._edge_ms
        hops: List[Hop] = []
        one_way = ACCESS_DELAY_MS / 2.0
        previous = None
        for index, node in enumerate(path):
            if previous is not None:
                one_way += edge_ms[(previous, node)]
            previous = node
            isp, _city = node
            # MPLS providers reveal only their ingress and egress routers.
            if self._topology.uses_mpls(isp):
                is_edge_of_isp = (
                    index == 0
                    or index == len(path) - 1
                    or path[index - 1][0] != isp
                    or path[index + 1][0] != isp
                )
                if not is_edge_of_isp:
                    continue
            router = self._topology.router(*node)
            rtt = 2.0 * one_way + rng.uniform(0.0, QUEUE_NOISE_MS)
            hops.append(Hop(ip=router.ip, dns_name=router.dns_name, rtt_ms=rtt))
        return TracerouteRecord(
            src_city=src_city,
            src_isp=src_isp,
            dst_city=dst_city,
            dst_isp=dst_isp,
            hops=tuple(hops),
            reached=True,
        )

    # ------------------------------------------------------------------
    # Columnar batch path
    # ------------------------------------------------------------------
    def column_schema(self) -> ColumnSchema:
        """The interned string tables of this engine's topology."""
        if self._schema is None:
            self._schema = ColumnSchema.from_topology(self._topology)
        return self._schema

    def begin_columns(self, expected_traces: int = 0) -> ColumnWriter:
        """A fresh shard writer bound to this topology's schema."""
        return ColumnWriter(
            self.column_schema(), expected_traces,
            noise_scale=QUEUE_NOISE_MS,
        )

    def _hop_template(
        self, src_node: Tuple[str, str], dst_node: Tuple[str, str]
    ) -> Union[_HopTemplate, bool]:
        """Cached per-endpoint-pair hop arrays (False = unreachable).

        Replays :meth:`trace`'s loop once per endpoint pair — same path,
        same MPLS visibility rule, same float accumulation order — and
        freezes the result as arrays.  Campaigns revisit pairs heavily
        (a 20k campaign already has fewer distinct pairs than traces),
        so at paper scale almost every trace is a cache hit.
        """
        key = (src_node, dst_node)
        template = self._hop_templates.get(key)
        if template is not None:
            return template
        topology = self._topology
        src_isp, src_city = src_node
        dst_isp, dst_city = dst_node
        path = None
        if topology.has_router(*src_node) and topology.has_router(*dst_node):
            path = self._route(src_node, dst_node)
        if path is None:
            self._hop_templates[key] = False
            return False
        schema = self.column_schema()
        edge_ms = self._edge_ms
        router_ids: List[int] = []
        double_cum: List[float] = []
        one_way = ACCESS_DELAY_MS / 2.0
        previous = None
        for index, node in enumerate(path):
            if previous is not None:
                one_way += edge_ms[(previous, node)]
            previous = node
            isp, _city = node
            if topology.uses_mpls(isp):
                is_edge_of_isp = (
                    index == 0
                    or index == len(path) - 1
                    or path[index - 1][0] != isp
                    or path[index + 1][0] != isp
                )
                if not is_edge_of_isp:
                    continue
            router_ids.append(schema.router_index[node])
            double_cum.append(2.0 * one_way)
        template = _HopTemplate(
            src_city_id=schema.city_index[src_city],
            src_isp_id=schema.isp_index[src_isp],
            dst_city_id=schema.city_index[dst_city],
            dst_isp_id=schema.isp_index[dst_isp],
            router_ids=np.asarray(router_ids, dtype=np.int32),
            double_cum=np.asarray(double_cum, dtype=np.float64),
        )
        self._hop_templates[key] = template
        return template

    def trace_into(
        self,
        writer: ColumnWriter,
        src_city: str,
        src_isp: str,
        dst_city: str,
        dst_isp: str,
        rng: random.Random,
    ) -> bool:
        """Columnar :meth:`trace`: append one trace's columns to *writer*.

        Returns whether the destination was reached; an unreachable pair
        appends nothing and draws nothing, exactly like :meth:`trace`'s
        empty record.  The RNG consumption (one draw per visible hop,
        in hop order) matches :meth:`trace` draw for draw — raw
        ``random()`` values here, scaled by ``QUEUE_NOISE_MS`` in the
        writer's vectorized finish, equal ``uniform(0.0,
        QUEUE_NOISE_MS)`` bit for bit — which is what keeps columnar
        campaigns byte-identical to the object path.
        """
        template = self._hop_template(
            (src_isp, src_city), (dst_isp, dst_city)
        )
        if template is False:
            return False
        draw = rng.random
        writer.append(
            template.src_city_id,
            template.src_isp_id,
            template.dst_city_id,
            template.dst_isp_id,
            template.router_ids,
            template.double_cum,
            [draw() for _ in template.router_ids],
        )
        return True
