"""The traceroute simulator.

Routes a probe across the router-level topology (intra-provider fiber
latencies plus peering penalties), then renders what a measurement host
would actually observe: per-hop IP, reverse-DNS name, and RTT, with MPLS
providers hiding their interior hops and per-hop queueing noise on the
timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.traceroute.topology import InternetTopology

#: Client access-network delay added to every RTT sample, milliseconds.
ACCESS_DELAY_MS = 4.0
#: Upper bound of uniform per-hop queueing noise, milliseconds.
QUEUE_NOISE_MS = 0.8


@dataclass(frozen=True)
class Hop:
    """One observed traceroute hop."""

    ip: str
    dns_name: str
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteRecord:
    """One complete traceroute observation."""

    src_city: str
    src_isp: str
    dst_city: str
    dst_isp: str
    hops: Tuple[Hop, ...]
    reached: bool

    @property
    def num_hops(self) -> int:
        return len(self.hops)


class ProbeEngine:
    """Simulates traceroutes over an :class:`InternetTopology`.

    Router-level paths are cached per (source, destination) router pair,
    so large campaigns re-use the expensive shortest-path computation.
    """

    def __init__(self, topology: InternetTopology, seed: int = 31):
        self._topology = topology
        self._rng = random.Random(seed)
        # Per-destination shortest-path predecessor maps: campaigns probe
        # few destinations from many sources, so one Dijkstra per
        # destination amortizes over thousands of traces.
        self._pred_cache: Dict[Tuple[str, str], Dict] = {}

    # ------------------------------------------------------------------
    def _predecessors(self, dst_node: Tuple[str, str]) -> Dict:
        pred = self._pred_cache.get(dst_node)
        if pred is None:
            pred, _dist = nx.dijkstra_predecessor_and_distance(
                self._topology.graph, dst_node, weight="ms"
            )
            self._pred_cache[dst_node] = pred
        return pred

    def _route(self, src_node: Tuple[str, str], dst_node: Tuple[str, str]):
        graph = self._topology.graph
        if src_node not in graph or dst_node not in graph:
            return None
        pred = self._predecessors(dst_node)
        if src_node not in pred:
            return None
        # Walk from source toward the Dijkstra root (the destination).
        path = [src_node]
        node = src_node
        while node != dst_node:
            nexts = pred[node]
            if not nexts:
                break
            node = nexts[0]
            path.append(node)
        return path if path[-1] == dst_node else None

    def router_path(
        self, src_city: str, src_isp: str, dst_city: str, dst_isp: str
    ) -> Optional[List[Tuple[str, str]]]:
        """The underlying router-node path, or ``None`` if unreachable."""
        if not self._topology.has_router(src_isp, src_city):
            return None
        if not self._topology.has_router(dst_isp, dst_city):
            return None
        return self._route((src_isp, src_city), (dst_isp, dst_city))

    # ------------------------------------------------------------------
    def trace(
        self, src_city: str, src_isp: str, dst_city: str, dst_isp: str
    ) -> TracerouteRecord:
        """Run one traceroute and render its observable hops."""
        path = self.router_path(src_city, src_isp, dst_city, dst_isp)
        if path is None:
            return TracerouteRecord(
                src_city=src_city,
                src_isp=src_isp,
                dst_city=dst_city,
                dst_isp=dst_isp,
                hops=(),
                reached=False,
            )
        graph = self._topology.graph
        hops: List[Hop] = []
        one_way = ACCESS_DELAY_MS / 2.0
        previous = None
        for index, node in enumerate(path):
            if previous is not None:
                one_way += graph[previous][node]["ms"]
            previous = node
            isp, _city = node
            # MPLS providers reveal only their ingress and egress routers.
            if self._topology.uses_mpls(isp):
                is_edge_of_isp = (
                    index == 0
                    or index == len(path) - 1
                    or path[index - 1][0] != isp
                    or path[index + 1][0] != isp
                )
                if not is_edge_of_isp:
                    continue
            router = self._topology.router(*node)
            rtt = 2.0 * one_way + self._rng.uniform(0.0, QUEUE_NOISE_MS)
            hops.append(Hop(ip=router.ip, dns_name=router.dns_name, rtt_ms=rtt))
        return TracerouteRecord(
            src_city=src_city,
            src_isp=src_isp,
            dst_city=dst_city,
            dst_isp=dst_isp,
            hops=tuple(hops),
            reached=True,
        )
