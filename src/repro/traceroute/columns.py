"""Columnar record store for traceroute campaigns.

The paper's §4.3 overlay consumed ~4.9M Edgescope traceroutes.  At that
scale the frozen :class:`~repro.traceroute.probe.TracerouteRecord` /
``Hop`` dataclasses stop being a storage format and become the
bottleneck: millions of small Python objects dominate memory, and
pickling them through the worker pool dominates IPC.  This module keeps
the *records* as the public contract but stores a campaign as columns:

* per-trace fields live in one numpy **structured array**
  (:data:`TRACE_DTYPE`): endpoint city/ISP ids and the reached flag;
* hops live in **CSR layout** — ``hop_offsets`` (``N+1`` int64) indexes
  flat per-hop columns ``hop_router`` (int32 router ids) and ``hop_rtt``
  (float64 milliseconds);
* strings are interned once in a :class:`ColumnSchema` — arena-style
  tables for city keys, provider names, and per-router IP/DNS strings —
  so no string is stored per trace.

A 4.9M-trace campaign is ~25 bytes of trace columns plus ~12 bytes per
hop, i.e. a few hundred MB instead of tens of GB of objects.

Everything downstream keeps working because :class:`TraceColumns` *is*
a sequence of :class:`TracerouteRecord`: indexing, slicing, and
iteration reconstruct records lazily (:meth:`TraceColumns.record`), and
:meth:`TraceColumns.records` exposes that view explicitly.  Columnar
consumers (the §4.3 overlay, benchmarks) instead stream
:meth:`TraceColumns.iter_batches` and never materialize objects.

The layout is deliberately pickle-free on disk: :meth:`to_npz_bytes` /
:func:`columns_from_npz_bytes` round-trip through ``np.savez`` with
``allow_pickle=False``, and :meth:`pack_into` / :func:`unpack_shard`
move shards through ``multiprocessing.shared_memory`` segments as raw
array bytes (see :mod:`repro.traceroute.campaign`).
"""

from __future__ import annotations

import hashlib
import io
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.traceroute.probe import TracerouteRecord
    from repro.traceroute.topology import InternetTopology

#: Per-trace structured layout.  City/ISP fields are indices into the
#: schema's string tables; int32 leaves headroom far past any realistic
#: city or provider count while keeping a trace at 17 bytes.
TRACE_DTYPE = np.dtype(
    [
        ("src_city", np.int32),
        ("src_isp", np.int32),
        ("dst_city", np.int32),
        ("dst_isp", np.int32),
        ("reached", np.bool_),
    ]
)

#: Serialization format version (stored in npz payloads).  Version 1 is
#: the historical RNG-contract-v1 layout; version 2 adds the
#: ``rng_contract`` field.  Contract-v1 columns still serialize as
#: version 1, so artifacts cached before the contract existed remain
#: byte-compatible with artifacts written today.
COLUMNS_FORMAT_VERSION = 2


def _as_str_tuple(values) -> Tuple[str, ...]:
    """Plain-``str`` tuple (numpy ``str_`` reprs would poison golden
    hashes of reconstructed records)."""
    return tuple(str(v) for v in values)


class ColumnSchema:
    """Interned string tables shared by every trace of one topology.

    Built deterministically (sorted providers, each provider's sorted
    router cities), so the parent process and every pool worker derive
    byte-identical tables from the same topology — the property that
    lets shards ship pure numeric arrays.
    """

    def __init__(
        self,
        cities: Sequence[str],
        isps: Sequence[str],
        router_ips: Sequence[str],
        router_dns: Sequence[str],
        router_nodes: Sequence[Tuple[str, str]],
    ):
        self.cities = _as_str_tuple(cities)
        self.isps = _as_str_tuple(isps)
        self.router_ips = _as_str_tuple(router_ips)
        self.router_dns = _as_str_tuple(router_dns)
        self.router_nodes = tuple(
            (str(isp), str(city)) for isp, city in router_nodes
        )
        self.city_index: Dict[str, int] = {
            c: i for i, c in enumerate(self.cities)
        }
        self.isp_index: Dict[str, int] = {
            p: i for i, p in enumerate(self.isps)
        }
        self.router_index: Dict[Tuple[str, str], int] = {
            node: i for i, node in enumerate(self.router_nodes)
        }

    @classmethod
    def from_topology(cls, topology: "InternetTopology") -> "ColumnSchema":
        """The canonical schema of one router-level topology."""
        isps = topology.providers()  # sorted
        nodes: List[Tuple[str, str]] = []
        ips: List[str] = []
        dns: List[str] = []
        cities = set()
        for isp in isps:
            for router in topology.routers_of(isp):  # sorted by city
                nodes.append((router.isp, router.city_key))
                ips.append(router.ip)
                dns.append(router.dns_name)
                cities.add(router.city_key)
        return cls(
            cities=sorted(cities),
            isps=isps,
            router_ips=ips,
            router_dns=dns,
            router_nodes=nodes,
        )

    def digest(self, rng_contract: Optional[int] = None) -> str:
        """Content hash used to cross-check worker/parent agreement.

        *rng_contract* mixes the campaign's RNG contract version into
        the hash so v1 and v2 shard manifests can never be confused for
        one another; contract 1 (and ``None``) reproduce the historical
        pure-schema digest.
        """
        h = hashlib.blake2b(digest_size=8)
        for table in (self.cities, self.isps, self.router_ips,
                      self.router_dns):
            for item in table:
                h.update(item.encode())
                h.update(b"\0")
            h.update(b"\1")
        if rng_contract is not None and rng_contract != 1:
            h.update(b"rng%d" % rng_contract)
        return h.hexdigest()


class TraceBatch:
    """One bounded window of a :class:`TraceColumns` (a streaming unit).

    Column slices are views, not copies; ``hop_offsets`` is rebased so
    ``hop_offsets[i] .. hop_offsets[i+1]`` indexes the batch-local hop
    columns directly.
    """

    __slots__ = ("schema", "start", "traces", "hop_offsets", "hop_router",
                 "hop_rtt")

    def __init__(self, schema, start, traces, hop_offsets, hop_router,
                 hop_rtt):
        self.schema = schema
        self.start = start
        self.traces = traces
        self.hop_offsets = hop_offsets
        self.hop_router = hop_router
        self.hop_rtt = hop_rtt

    def __len__(self) -> int:
        return len(self.traces)


class _RecordsView(Sequence):
    """Lazy ``Sequence[TracerouteRecord]`` over a :class:`TraceColumns`.

    The legacy object API: every access reconstructs records on the
    fly, so holding the view costs nothing beyond the columns.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: "TraceColumns"):
        self._columns = columns

    def __len__(self) -> int:
        return len(self._columns)

    def __getitem__(self, item):
        return self._columns[item]

    def __iter__(self):
        return self._columns.__iter__()


class TraceColumns:
    """A whole campaign as columns; also a lazy sequence of records."""

    def __init__(
        self,
        schema: ColumnSchema,
        traces: np.ndarray,
        hop_offsets: np.ndarray,
        hop_router: np.ndarray,
        hop_rtt: np.ndarray,
        rng_contract: int = 1,
    ):
        if traces.dtype != TRACE_DTYPE:
            raise ValueError(f"traces dtype must be {TRACE_DTYPE}")
        if len(hop_offsets) != len(traces) + 1:
            raise ValueError("hop_offsets must have num_traces + 1 entries")
        self.schema = schema
        self.traces = traces
        self.hop_offsets = hop_offsets
        self.hop_router = hop_router
        self.hop_rtt = hop_rtt
        #: The RNG contract the campaign was drawn under (provenance;
        #: threaded through shard manifests and npz payloads so v1 and
        #: v2 columns can never be silently mixed or mislabeled).
        self.rng_contract = int(rng_contract)

    # -- sizing --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.traces)

    @property
    def num_hops(self) -> int:
        return len(self.hop_router)

    @property
    def nbytes(self) -> int:
        """Bytes held by the numeric columns (string tables excluded)."""
        return (
            self.traces.nbytes + self.hop_offsets.nbytes
            + self.hop_router.nbytes + self.hop_rtt.nbytes
        )

    # -- the legacy record view ----------------------------------------
    def record(self, index: int) -> "TracerouteRecord":
        """Reconstruct one :class:`TracerouteRecord` (lazily, on demand)."""
        from repro.traceroute.probe import Hop, TracerouteRecord

        schema = self.schema
        row = self.traces[index]
        lo = int(self.hop_offsets[index])
        hi = int(self.hop_offsets[index + 1])
        ips = schema.router_ips
        dns = schema.router_dns
        routers = self.hop_router
        rtts = self.hop_rtt
        hops = tuple(
            Hop(
                ip=ips[routers[h]],
                dns_name=dns[routers[h]],
                rtt_ms=float(rtts[h]),
            )
            for h in range(lo, hi)
        )
        return TracerouteRecord(
            src_city=schema.cities[row["src_city"]],
            src_isp=schema.isps[row["src_isp"]],
            dst_city=schema.cities[row["dst_city"]],
            dst_isp=schema.isps[row["dst_isp"]],
            hops=hops,
            reached=bool(row["reached"]),
        )

    def records(self) -> _RecordsView:
        """The lazy legacy view: a ``Sequence[TracerouteRecord]``."""
        return _RecordsView(self)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self.record(i) for i in range(*item.indices(len(self)))]
        index = item if item >= 0 else len(self) + item
        if not 0 <= index < len(self):
            raise IndexError(item)
        return self.record(index)

    def __iter__(self) -> Iterator["TracerouteRecord"]:
        for i in range(len(self)):
            yield self.record(i)

    # -- streaming -----------------------------------------------------
    def iter_batches(self, batch_size: int = 8192) -> Iterator[TraceBatch]:
        """Stream the campaign as bounded column windows.

        This is how large-scale consumers (the §4.3 overlay) walk a
        campaign: memory per step is one batch of column views, never a
        materialized record list.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        offsets = self.hop_offsets
        for start in range(0, len(self), batch_size):
            stop = min(start + batch_size, len(self))
            lo = int(offsets[start])
            hi = int(offsets[stop])
            yield TraceBatch(
                schema=self.schema,
                start=start,
                traces=self.traces[start:stop],
                hop_offsets=offsets[start:stop + 1] - lo,
                hop_router=self.hop_router[lo:hi],
                hop_rtt=self.hop_rtt[lo:hi],
            )

    # -- equality (used by the chaos/byte-identity tests) --------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (
            self.schema.cities == other.schema.cities
            and self.schema.isps == other.schema.isps
            and self.schema.router_ips == other.schema.router_ips
            and self.schema.router_dns == other.schema.router_dns
            and np.array_equal(self.traces, other.traces)
            and np.array_equal(self.hop_offsets, other.hop_offsets)
            and np.array_equal(self.hop_router, other.hop_router)
            and np.array_equal(self.hop_rtt, other.hop_rtt)
        )

    __hash__ = None  # type: ignore[assignment]

    # -- concatenation (shard stitching) -------------------------------
    @classmethod
    def concatenate(
        cls, schema: ColumnSchema, parts: Sequence["TraceColumns"]
    ) -> "TraceColumns":
        """Stitch shard columns (in shard order) into one campaign."""
        contracts = {p.rng_contract for p in parts}
        if len(contracts) > 1:
            raise ValueError(
                f"cannot concatenate columns of mixed RNG contracts "
                f"{sorted(contracts)}"
            )
        rng_contract = contracts.pop() if contracts else 1
        n = sum(len(p) for p in parts)
        h = sum(p.num_hops for p in parts)
        traces = np.empty(n, dtype=TRACE_DTYPE)
        hop_offsets = np.empty(n + 1, dtype=np.int64)
        hop_router = np.empty(h, dtype=np.int32)
        hop_rtt = np.empty(h, dtype=np.float64)
        hop_offsets[0] = 0
        t = 0
        k = 0
        for part in parts:
            pn, ph = len(part), part.num_hops
            traces[t:t + pn] = part.traces
            hop_offsets[t + 1:t + pn + 1] = part.hop_offsets[1:] + k
            hop_router[k:k + ph] = part.hop_router
            hop_rtt[k:k + ph] = part.hop_rtt
            t += pn
            k += ph
        return cls(
            schema, traces, hop_offsets, hop_router, hop_rtt,
            rng_contract=rng_contract,
        )

    # -- flat-buffer transport (shared-memory shards) ------------------
    def _transport_arrays(self) -> Tuple[Tuple[str, np.ndarray], ...]:
        return (
            ("traces", self.traces),
            ("hop_offsets", self.hop_offsets),
            ("hop_router", self.hop_router),
            ("hop_rtt", self.hop_rtt),
        )

    def transport_size(self) -> int:
        """Bytes a shared-memory segment needs to hold these columns."""
        return max(1, sum(a.nbytes for _, a in self._transport_arrays()))

    def pack_into(self, buffer) -> Dict[str, Any]:
        """Write the numeric columns into *buffer* (a shm view), back to
        back, and return the manifest the parent needs to map them."""
        layout = []
        offset = 0
        for name, array in self._transport_arrays():
            flat = np.frombuffer(
                buffer, dtype=np.uint8, count=array.nbytes, offset=offset
            )
            flat[:] = np.frombuffer(
                np.ascontiguousarray(array), dtype=np.uint8
            )
            layout.append(
                {
                    "name": name,
                    "dtype": array.dtype.str if array.dtype.names is None
                    else TRACE_DTYPE.str,
                    "structured": array.dtype.names is not None,
                    "count": len(array),
                    "offset": offset,
                }
            )
            offset += array.nbytes
        return {
            "format": COLUMNS_FORMAT_VERSION,
            "num_traces": len(self),
            "num_hops": self.num_hops,
            "rng_contract": self.rng_contract,
            "schema_digest": self.schema.digest(
                rng_contract=self.rng_contract
            ),
            "arrays": layout,
        }


def unpack_shard(
    schema: ColumnSchema,
    buffer,
    manifest: Dict[str, Any],
    expect_rng_contract: Optional[int] = None,
) -> TraceColumns:
    """Map a shard's columns out of a shared-memory *buffer*.

    The returned arrays are **views into the segment** (zero-copy); the
    caller must copy (e.g. via :meth:`TraceColumns.concatenate`) before
    the segment is closed and unlinked.  *expect_rng_contract* rejects
    a shard drawn under a different RNG contract than the campaign that
    is stitching it (a worker/parent disagreement that must never be
    silently absorbed).
    """
    shard_contract = int(manifest.get("rng_contract", 1))
    if (
        expect_rng_contract is not None
        and shard_contract != expect_rng_contract
    ):
        raise ValueError(
            f"shard was drawn under RNG contract {shard_contract}, "
            f"campaign expects contract {expect_rng_contract}"
        )
    expected_digest = schema.digest(rng_contract=shard_contract)
    if manifest.get("schema_digest") != expected_digest:
        raise ValueError(
            "shard schema digest does not match the parent topology"
        )
    arrays: Dict[str, np.ndarray] = {}
    for spec in manifest["arrays"]:
        dtype = TRACE_DTYPE if spec["structured"] else np.dtype(spec["dtype"])
        arrays[spec["name"]] = np.frombuffer(
            buffer, dtype=dtype, count=spec["count"], offset=spec["offset"]
        )
    return TraceColumns(
        schema,
        traces=arrays["traces"],
        hop_offsets=arrays["hop_offsets"],
        hop_router=arrays["hop_router"],
        hop_rtt=arrays["hop_rtt"],
        rng_contract=shard_contract,
    )


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class ColumnWriter:
    """Accumulates one shard's traces and finishes into columns.

    ``append`` stays allocation-light on purpose: per-hop router ids and
    precomputed doubled cumulative latencies arrive as small arrays
    (shared hop-template rows — appended by reference, not copied), and
    the per-hop queueing noise arrives as raw unit draws.  ``finish``
    performs the only vectorized work: one concatenate per hop column
    and a single fused scale-and-add for the RTTs (*noise_scale* maps
    unit draws onto milliseconds; ``scale * r`` is bit-identical to the
    scalar path's ``uniform(0.0, scale)``).
    """

    __slots__ = ("schema", "_rows", "_counts", "_router_parts",
                 "_cum_parts", "_noise", "_noise_scale")

    def __init__(
        self,
        schema: ColumnSchema,
        expected_traces: int = 0,
        noise_scale: float = 1.0,
    ):
        self.schema = schema
        self._noise_scale = noise_scale
        self._rows: List[Tuple[int, int, int, int]] = []
        self._counts: List[int] = []
        self._router_parts: List[np.ndarray] = []
        self._cum_parts: List[np.ndarray] = []
        self._noise: List[float] = []

    def append(
        self,
        src_city: int,
        src_isp: int,
        dst_city: int,
        dst_isp: int,
        router_ids: np.ndarray,
        double_cum: np.ndarray,
        noise: List[float],
    ) -> None:
        """One reached trace: endpoint ids, its hop-template rows, and
        the per-hop unit noise draws from the trace's private RNG
        stream (scaled by ``noise_scale`` at :meth:`finish`)."""
        self._rows.append((src_city, src_isp, dst_city, dst_isp))
        self._counts.append(len(router_ids))
        self._router_parts.append(router_ids)
        self._cum_parts.append(double_cum)
        self._noise.extend(noise)

    def __len__(self) -> int:
        return len(self._rows)

    def finish(self) -> TraceColumns:
        n = len(self._rows)
        traces = np.zeros(n, dtype=TRACE_DTYPE)
        if n:
            rows = np.array(self._rows, dtype=np.int32)
            traces["src_city"] = rows[:, 0]
            traces["src_isp"] = rows[:, 1]
            traces["dst_city"] = rows[:, 2]
            traces["dst_isp"] = rows[:, 3]
            traces["reached"] = True
        hop_offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(self._counts, out=hop_offsets[1:])
        if self._router_parts:
            hop_router = np.concatenate(self._router_parts).astype(
                np.int32, copy=False
            )
            # rtt = 2*one_way + noise, hop by hop: the doubled cumulative
            # latencies come from the templates, the noise from each
            # trace's own RNG stream — one fused vector op per shard.
            hop_rtt = np.concatenate(self._cum_parts) + (
                self._noise_scale
                * np.asarray(self._noise, dtype=np.float64)
            )
        else:
            hop_router = np.zeros(0, dtype=np.int32)
            hop_rtt = np.zeros(0, dtype=np.float64)
        return TraceColumns(
            self.schema, traces, hop_offsets, hop_router, hop_rtt
        )


# ----------------------------------------------------------------------
# Pickle-free disk serialization (np.save-style, used by the artifact
# cache: a campaign artifact must never round-trip through pickle).
# ----------------------------------------------------------------------
def columns_to_npz_bytes(columns: TraceColumns) -> bytes:
    """Serialize columns (and their string tables) as an npz payload.

    Contract-v1 columns write the historical version-1 layout (no
    ``rng_contract`` field), so artifacts cached before the RNG
    contract existed read back — and hash — identically to artifacts
    written today.  Contract-v2 columns write version 2 with an
    explicit ``rng_contract`` field.
    """
    buf = io.BytesIO()
    extra: Dict[str, np.ndarray] = {}
    version = 1
    if columns.rng_contract != 1:
        version = COLUMNS_FORMAT_VERSION
        extra["rng_contract"] = np.array(
            [columns.rng_contract], dtype=np.int64
        )
    np.savez(
        buf,
        version=np.array([version], dtype=np.int64),
        **extra,
        traces=columns.traces,
        hop_offsets=columns.hop_offsets,
        hop_router=columns.hop_router,
        hop_rtt=columns.hop_rtt,
        cities=np.array(columns.schema.cities, dtype=np.str_),
        isps=np.array(columns.schema.isps, dtype=np.str_),
        router_ips=np.array(columns.schema.router_ips, dtype=np.str_),
        router_dns=np.array(columns.schema.router_dns, dtype=np.str_),
        router_isps=np.array(
            [isp for isp, _ in columns.schema.router_nodes], dtype=np.str_
        ),
        router_cities=np.array(
            [city for _, city in columns.schema.router_nodes], dtype=np.str_
        ),
    )
    return buf.getvalue()


def columns_from_npz_bytes(payload: bytes) -> TraceColumns:
    """Inverse of :func:`columns_to_npz_bytes` (``allow_pickle=False``)."""
    with np.load(io.BytesIO(payload), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version not in (1, COLUMNS_FORMAT_VERSION):
            raise ValueError(f"unsupported columns format {version}")
        rng_contract = (
            int(data["rng_contract"][0]) if "rng_contract" in data else 1
        )
        schema = ColumnSchema(
            cities=data["cities"].tolist(),
            isps=data["isps"].tolist(),
            router_ips=data["router_ips"].tolist(),
            router_dns=data["router_dns"].tolist(),
            router_nodes=list(
                zip(data["router_isps"].tolist(),
                    data["router_cities"].tolist())
            ),
        )
        return TraceColumns(
            schema,
            traces=data["traces"],
            hop_offsets=data["hop_offsets"],
            hop_router=data["hop_router"],
            hop_rtt=data["hop_rtt"],
            rng_contract=rng_contract,
        )
