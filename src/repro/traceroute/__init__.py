"""Traceroute substrate (§4.3): simulate Edgescope-style campaigns.

The paper overlays 4.9M traceroutes (Edgescope, Jan-Mar 2014) onto its
conduit map using geolocation and DNS naming hints.  This subpackage
provides the equivalent machinery end-to-end:

* :mod:`repro.traceroute.addressing` — per-provider IPv4 address plan;
* :mod:`repro.traceroute.topology` — router-level topologies over the
  fiber footprints, inter-provider peering, MPLS opacity, and the
  *phantom providers* (SoftLayer, MFN, ...) whose presence the paper
  could only infer from traceroute data;
* :mod:`repro.traceroute.probe` — the traceroute simulator;
* :mod:`repro.traceroute.columns` — the columnar campaign record store
  (structured arrays + string tables) that holds paper-scale campaigns;
* :mod:`repro.traceroute.campaign` — client/destination workload
  generation and the sharded shared-memory campaign runner;
* :mod:`repro.traceroute.geolocate` — noisy IP geolocation plus DRoP-
  style DNS naming-hint decoding;
* :mod:`repro.traceroute.overlay` — mapping layer-3 hops onto physical
  conduits and inferring additional tenants.
"""

from repro.traceroute.addressing import AddressPlan
from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.columns import ColumnSchema, ColumnWriter, TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase, decode_naming_hint
from repro.traceroute.overlay import ConduitTraffic, TrafficOverlay
from repro.traceroute.probe import Hop, ProbeEngine, TracerouteRecord
from repro.traceroute.topology import InternetTopology, Router

__all__ = [
    "AddressPlan",
    "InternetTopology",
    "Router",
    "ProbeEngine",
    "Hop",
    "TracerouteRecord",
    "ColumnSchema",
    "ColumnWriter",
    "TraceColumns",
    "CampaignConfig",
    "run_campaign",
    "GeolocationDatabase",
    "decode_naming_hint",
    "TrafficOverlay",
    "ConduitTraffic",
]
