"""The typed query layer: the service's single public API surface.

Requests and responses are frozen dataclasses with a versioned JSON
encoding.  Every frontend — the HTTP server, the CLI verbs, and
:meth:`Scenario.query` — speaks exactly these types, so a what-if
answered over HTTP is byte-identical to the same what-if answered from
the command line.

Encoding
--------
A request encodes as ``{"v": 1, "kind": "<kind>", ...fields}``; a
response as ``{"v": 1, "kind": "<kind>.result", ...}``.  ``v`` is the
schema version: :func:`parse_request` rejects any other version, so a
future incompatible change bumps :data:`SCHEMA_VERSION` and old clients
fail loudly instead of silently misparsing.

Validation
----------
:func:`parse_request` checks the envelope (version, kind), field
presence, field types, and rejects unknown fields; semantic checks
(positive counts, known cities/ISPs) live in the handlers.  All
failures raise :class:`QueryError`, which carries a machine-readable
``code``, the offending ``field`` when there is one, and an HTTP status
— the server renders it as a structured 4xx payload, the CLI as a
stderr line.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.obs.serialize import to_jsonable

#: The wire-format version; bump on any incompatible encoding change.
SCHEMA_VERSION = 1


class QueryError(Exception):
    """A structured request failure (validation, lookup, dispatch).

    ``code`` is a stable machine-readable slug, ``status`` the HTTP
    status the server responds with, ``field`` the offending request
    field when the failure is tied to one.
    """

    def __init__(
        self,
        code: str,
        message: str,
        field: Optional[str] = None,
        status: int = 400,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    def to_json(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"v": SCHEMA_VERSION, "kind": "error", "error": error}


def encode_json(payload: Any) -> str:
    """The one canonical JSON rendering, shared by the CLI emitter and
    the HTTP server so their bytes can be compared verbatim."""
    return json.dumps(to_jsonable(payload), indent=2, sort_keys=False)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """Base class: every request kind declares ``kind`` and its fields."""

    kind: ClassVar[str] = ""

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"v": SCHEMA_VERSION, "kind": self.kind}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


@dataclass(frozen=True)
class CutRequest(QueryRequest):
    """What-if: sever every conduit between two cities (§7 threat model)."""

    kind: ClassVar[str] = "cut"
    city_a: str
    city_b: str
    #: Campaign traces re-traced over the degraded topology (the CLI's
    #: historical sample size).
    max_traces: int = 800


@dataclass(frozen=True)
class AddConduitRequest(QueryRequest):
    """What-if: lay a new conduit between two cities (§5 augmentation)."""

    kind: ClassVar[str] = "add"
    city_a: str
    city_b: str
    #: Conduit length; ``None`` uses the line-of-sight distance.
    length_km: Optional[float] = None


@dataclass(frozen=True)
class AuditRequest(QueryRequest):
    """Shared-risk audit of one provider: ranking plus the §5.1
    robustness suggestion (PI / SRR)."""

    kind: ClassVar[str] = "audit"
    isp: str


@dataclass(frozen=True)
class LatencyRequest(QueryRequest):
    """Shortest-path propagation delay between two cities over the
    collapsed conduit graph.  Distance-type: concurrent requests are
    micro-batched into one Dijkstra solve."""

    kind: ClassVar[str] = "latency"
    city_a: str
    city_b: str


@dataclass(frozen=True)
class RiskSliceRequest(QueryRequest):
    """A slice of the §4 risk matrix: the most-shared conduits, or one
    provider's row statistics."""

    kind: ClassVar[str] = "risk"
    isp: Optional[str] = None
    top: int = 10


@dataclass(frozen=True)
class ExchangeRequest(QueryRequest):
    """The §6.3 jointly funded conduit-exchange plan."""

    kind: ClassVar[str] = "exchange"
    num_conduits: int = 5


@dataclass(frozen=True)
class ExperimentRequest(QueryRequest):
    """Run one registered experiment's declared stage subgraph."""

    kind: ClassVar[str] = "experiment"
    experiment_id: str


REQUEST_TYPES: Dict[str, Type[QueryRequest]] = {
    cls.kind: cls
    for cls in (
        CutRequest,
        AddConduitRequest,
        AuditRequest,
        LatencyRequest,
        RiskSliceRequest,
        ExchangeRequest,
        ExperimentRequest,
    )
}

#: Python types accepted per annotated field type (bool is checked
#: before int: ``True`` is not a valid count).
_FIELD_TYPES: Dict[str, Tuple[type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "Optional[str]": (str, type(None)),
    "Optional[float]": (int, float, type(None)),
}


def _check_field(name: str, value: Any, annotation: str) -> Any:
    accepted = _FIELD_TYPES[annotation]
    if isinstance(value, bool) and bool not in accepted:
        raise QueryError(
            "invalid_field",
            f"field {name!r} must be {annotation}, got a bool",
            field=name,
        )
    if not isinstance(value, accepted):
        raise QueryError(
            "invalid_field",
            f"field {name!r} must be {annotation}, "
            f"got {type(value).__name__}",
            field=name,
        )
    return value


def parse_request(payload: Any) -> QueryRequest:
    """Decode and validate one request payload (see module doc).

    The reserved envelope keys ``v`` and ``kind`` — plus ``scenario``,
    which the server consumes for routing before dispatch — are not
    request fields.  Anything else must match the kind's declared
    fields exactly.
    """
    if not isinstance(payload, Mapping):
        raise QueryError(
            "bad_request",
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    version = payload.get("v", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise QueryError(
            "unsupported_version",
            f"schema version {version!r} not supported "
            f"(this server speaks v{SCHEMA_VERSION})",
            field="v",
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        raise QueryError(
            "bad_request", "request is missing the 'kind' field",
            field="kind",
        )
    request_type = REQUEST_TYPES.get(kind)
    if request_type is None:
        raise QueryError(
            "unknown_kind",
            f"unknown query kind {kind!r}; known: "
            f"{', '.join(sorted(REQUEST_TYPES))}",
            field="kind",
        )
    fields = {f.name: f for f in dataclasses.fields(request_type)}
    unknown = sorted(
        set(payload) - set(fields) - {"v", "kind", "scenario"}
    )
    if unknown:
        raise QueryError(
            "invalid_field",
            f"unknown field(s) for kind {kind!r}: {', '.join(unknown)}",
            field=unknown[0],
        )
    kwargs: Dict[str, Any] = {}
    for name, field in fields.items():
        if name in payload:
            kwargs[name] = _check_field(name, payload[name], field.type)
        elif (
            field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        ):
            raise QueryError(
                "missing_field",
                f"kind {kind!r} requires field {name!r}",
                field=name,
            )
    return request_type(**kwargs)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResponse:
    """Base class; every response renders a versioned JSON document."""

    kind: ClassVar[str] = ""

    def to_json(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IspCutRow:
    """Per-provider impact of a cut (only providers actually hit)."""

    isp: str
    links_hit: int
    pairs_disconnected: int
    mean_reroute_delay_ms: float


@dataclass(frozen=True)
class CutResponse(QueryResponse):
    kind: ClassVar[str] = "cut.result"

    description: str
    conduits_severed: int
    isps_affected: int
    total_links_hit: int
    total_pairs_disconnected: int
    probes_affected: int
    per_isp: Tuple[IspCutRow, ...]
    affected_fraction: float
    mean_inflation_ms: float
    traces_blackholed: int

    def to_json(self) -> Dict[str, Any]:
        # The nested shape is the CLI's historical `cut --json` body;
        # the envelope (v/kind) is additive.
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "event": {
                "description": self.description,
                "conduits_severed": self.conduits_severed,
            },
            "impact": {
                "isps_affected": self.isps_affected,
                "total_links_hit": self.total_links_hit,
                "total_pairs_disconnected": self.total_pairs_disconnected,
                "probes_affected": self.probes_affected,
                "per_isp": [
                    {
                        "isp": item.isp,
                        "links_hit": item.links_hit,
                        "pairs_disconnected": item.pairs_disconnected,
                        "mean_reroute_delay_ms": item.mean_reroute_delay_ms,
                    }
                    for item in self.per_isp
                ],
            },
            "traffic_shift": {
                "affected_fraction": self.affected_fraction,
                "mean_inflation_ms": self.mean_inflation_ms,
                "traces_blackholed": self.traces_blackholed,
            },
        }


@dataclass(frozen=True)
class AddConduitResponse(QueryResponse):
    kind: ClassVar[str] = "add.result"

    city_a: str
    city_b: str
    length_km: float
    delay_ms: float
    #: Shortest-path delay between the endpoints before the new conduit
    #: (``None`` when previously disconnected).
    baseline_delay_ms: Optional[float]
    #: False when an existing direct conduit is already at least as good.
    improves_map: bool
    #: Cities whose shortest-path distance from ``city_a`` strictly
    #: improves with the new conduit in place.
    cities_improved: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "conduit": {
                "city_a": self.city_a,
                "city_b": self.city_b,
                "length_km": self.length_km,
                "delay_ms": self.delay_ms,
            },
            "baseline_delay_ms": self.baseline_delay_ms,
            "improves_map": self.improves_map,
            "cities_improved": self.cities_improved,
        }


@dataclass(frozen=True)
class AuditResponse(QueryResponse):
    kind: ClassVar[str] = "audit.result"

    isp: str
    average_sharing: float
    rank: int
    ranked_isps: int
    num_conduits: int
    reroutes: int
    avg_path_inflation: float
    avg_shared_risk_reduction: float

    def to_json(self) -> Dict[str, Any]:
        # Historical `audit --json` body plus the envelope.
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "isp": self.isp,
            "average_sharing": self.average_sharing,
            "rank": self.rank,
            "ranked_isps": self.ranked_isps,
            "num_conduits": self.num_conduits,
            "robustness": {
                "reroutes": self.reroutes,
                "avg_path_inflation": self.avg_path_inflation,
                "avg_shared_risk_reduction": self.avg_shared_risk_reduction,
            },
        }


@dataclass(frozen=True)
class LatencyResponse(QueryResponse):
    kind: ClassVar[str] = "latency.result"

    city_a: str
    city_b: str
    reachable: bool
    delay_ms: Optional[float]
    length_km: Optional[float]
    hops: int
    path: Tuple[str, ...]
    conduit_ids: Tuple[str, ...]

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "city_a": self.city_a,
            "city_b": self.city_b,
            "reachable": self.reachable,
            "delay_ms": self.delay_ms,
            "length_km": self.length_km,
            "hops": self.hops,
            "path": list(self.path),
            "conduit_ids": list(self.conduit_ids),
        }


@dataclass(frozen=True)
class RiskConduitRow:
    conduit_id: str
    tenants: int
    city_a: str
    city_b: str


@dataclass(frozen=True)
class RiskSliceResponse(QueryResponse):
    kind: ClassVar[str] = "risk.result"

    #: ``None`` for the whole-matrix slice.
    isp: Optional[str]
    num_conduits: int
    num_isps: int
    top_conduits: Tuple[RiskConduitRow, ...]
    #: Fraction of conduits shared by >= k ISPs (whole-matrix slice).
    sharing_fractions: Tuple[Tuple[int, float], ...] = ()
    #: Provider-row statistics (ISP slice).
    average: Optional[float] = None
    std_error: Optional[float] = None
    p25: Optional[float] = None
    p75: Optional[float] = None
    rank: Optional[int] = None
    ranked_isps: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "isp": self.isp,
            "num_conduits": self.num_conduits,
            "num_isps": self.num_isps,
            "top_conduits": [
                {
                    "conduit_id": row.conduit_id,
                    "tenants": row.tenants,
                    "city_a": row.city_a,
                    "city_b": row.city_b,
                }
                for row in self.top_conduits
            ],
        }
        if self.isp is None:
            payload["sharing_fractions"] = {
                str(k): fraction for k, fraction in self.sharing_fractions
            }
        else:
            payload["row"] = {
                "average": self.average,
                "std_error": self.std_error,
                "p25": self.p25,
                "p75": self.p75,
                "rank": self.rank,
                "ranked_isps": self.ranked_isps,
            }
        return payload


@dataclass(frozen=True)
class ExchangeConduitRow:
    city_a: str
    city_b: str
    length_km: float
    num_members: int
    best_savings_factor: float
    total_gain: float


@dataclass(frozen=True)
class ExchangeResponse(QueryResponse):
    kind: ClassVar[str] = "exchange.result"

    conduits: Tuple[ExchangeConduitRow, ...]

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "conduits": [
                {
                    "city_a": row.city_a,
                    "city_b": row.city_b,
                    "length_km": row.length_km,
                    "num_members": row.num_members,
                    "best_savings_factor": row.best_savings_factor,
                    "total_gain": row.total_gain,
                }
                for row in self.conduits
            ],
        }


@dataclass(frozen=True)
class ExperimentResponse(QueryResponse):
    kind: ClassVar[str] = "experiment.result"

    experiment_id: str
    title: str
    extension: bool
    data: Any
    text: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "kind": self.kind,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "extension": self.extension,
            "data": to_jsonable(self.data),
            "text": self.text,
        }
