"""The always-on what-if service: one typed query API, three frontends.

This package turns the batch analyses into an interactive tool (the
Xaminer direction in PAPERS.md): a long-lived server holds warm
:class:`~repro.scenario.Scenario` objects — stage graph plus compiled
:class:`~repro.perf.substrate.RoutingSubstrate` — resident in memory
and answers what-if queries in milliseconds instead of re-running a
cold script per question.

The layers, bottom-up:

* :mod:`repro.service.schema` — frozen request/response dataclasses
  with a versioned JSON encoding and structured validation errors.
  This is the single public query API: the same typed request answers
  identically whether it arrives over HTTP, from the CLI (``repro cut``
  / ``audit`` / ``latency`` / ``exchange``), or programmatically via
  :meth:`Scenario.query`.
* :mod:`repro.service.handlers` — the dispatcher mapping each request
  kind to its analysis, including the micro-batcher that folds
  concurrent city-pair latency queries into **one** batched Dijkstra
  solve against the substrate.
* :mod:`repro.service.render` — the human-readable renderings the CLI
  prints (byte-identical to the pre-service output).
* :mod:`repro.service.registry` — named scenarios (seed/config
  variants) served side by side, each with its own lock, warm-up state,
  and latency batcher.
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  frontend (``python -m repro serve``) with ``/healthz``, a manifest
  endpoint, and ``/v1/query`` / ``/v1/batch``.
* :mod:`repro.service.smoke` — the self-contained CI smoke run.
"""

from repro.service.handlers import QUERY_KINDS, handle_query, solve_latency_batch
from repro.service.registry import ScenarioEntry, ScenarioRegistry
from repro.service.schema import (
    SCHEMA_VERSION,
    AddConduitRequest,
    AddConduitResponse,
    AuditRequest,
    AuditResponse,
    CutRequest,
    CutResponse,
    ExchangeRequest,
    ExchangeResponse,
    ExperimentRequest,
    ExperimentResponse,
    LatencyRequest,
    LatencyResponse,
    QueryError,
    RiskSliceRequest,
    RiskSliceResponse,
    encode_json,
    parse_request,
)
from repro.service.server import ServiceApp, make_server

__all__ = [
    "SCHEMA_VERSION",
    "QUERY_KINDS",
    "QueryError",
    "parse_request",
    "encode_json",
    "handle_query",
    "solve_latency_batch",
    "CutRequest",
    "CutResponse",
    "AddConduitRequest",
    "AddConduitResponse",
    "AuditRequest",
    "AuditResponse",
    "LatencyRequest",
    "LatencyResponse",
    "RiskSliceRequest",
    "RiskSliceResponse",
    "ExchangeRequest",
    "ExchangeResponse",
    "ExperimentRequest",
    "ExperimentResponse",
    "ScenarioRegistry",
    "ScenarioEntry",
    "ServiceApp",
    "make_server",
]
