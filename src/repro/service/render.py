"""Human-readable renderings of typed query responses.

The CLI prints exactly these strings.  For the verbs that predate the
service layer (``cut``, ``audit``, ``exchange``) the output is
byte-identical to the historical ad-hoc formatting — the redesign moved
the *data path* onto the shared handlers without moving a single glyph
of the text contract.
"""

from __future__ import annotations

from repro.service.schema import (
    AddConduitResponse,
    AuditResponse,
    CutResponse,
    ExchangeResponse,
    LatencyResponse,
    QueryResponse,
    RiskSliceResponse,
)


def render_cut(response: CutResponse) -> str:
    lines = [
        f"{response.description}: "
        f"{response.conduits_severed} conduit(s) severed",
        f"providers affected: {response.isps_affected}; links hit: "
        f"{response.total_links_hit}; POP pairs disconnected: "
        f"{response.total_pairs_disconnected}; probes crossing: "
        f"{response.probes_affected}",
    ]
    for item in response.per_isp:
        lines.append(
            f"  {item.isp}: {item.links_hit} links, "
            f"{item.pairs_disconnected} disconnected, reroute "
            f"+{item.mean_reroute_delay_ms:.2f} ms avg"
        )
    lines.append(
        f"traffic shift: {response.affected_fraction:.1%} of traces "
        f"affected, mean +{response.mean_inflation_ms:.2f} ms, "
        f"{response.traces_blackholed} black-holed"
    )
    return "\n".join(lines)


def render_audit(response: AuditResponse) -> str:
    return "\n".join([
        f"{response.isp}: average sharing {response.average_sharing:.2f} "
        f"(rank {response.rank}/{response.ranked_isps}), "
        f"{response.num_conduits} conduits",
        f"robustness suggestion: {response.reroutes} reroutes, "
        f"avg PI {response.avg_path_inflation:.1f}, "
        f"avg SRR {response.avg_shared_risk_reduction:.1f}",
    ])


def render_latency(response: LatencyResponse) -> str:
    if not response.reachable:
        return f"no path between {response.city_a} and {response.city_b}"
    via = " - ".join(response.path)
    return "\n".join([
        f"{response.city_a} <-> {response.city_b}: "
        f"{response.delay_ms:.2f} ms ({response.length_km:.0f} km, "
        f"{response.hops} conduit hops)",
        f"  via: {via}",
    ])


def render_add(response: AddConduitResponse) -> str:
    lines = [
        f"new conduit {response.city_a} - {response.city_b}: "
        f"{response.length_km:.0f} km, {response.delay_ms:.2f} ms"
    ]
    if response.baseline_delay_ms is None:
        lines.append("baseline: endpoints currently disconnected")
    else:
        lines.append(
            f"baseline shortest path: {response.baseline_delay_ms:.2f} ms"
        )
    if response.improves_map:
        lines.append(
            f"improves shortest paths from {response.city_a} to "
            f"{response.cities_improved} city(ies)"
        )
    else:
        lines.append("no improvement: an equal-or-better conduit exists")
    return "\n".join(lines)


def render_risk(response: RiskSliceResponse) -> str:
    from repro.analysis.report import format_table

    rows = [
        (row.conduit_id, f"{row.city_a} - {row.city_b}", row.tenants)
        for row in response.top_conduits
    ]
    if response.isp is None:
        table = format_table(
            ("conduit", "edge", "tenants"),
            rows,
            title="most shared conduits",
        )
        fractions = "; ".join(
            f">={k}: {fraction:.1%}"
            for k, fraction in response.sharing_fractions
        )
        return "\n".join([
            table,
            f"{response.num_conduits} conduits x {response.num_isps} "
            f"ISPs; shared {fractions}",
        ])
    table = format_table(
        ("conduit", "edge", "tenants"),
        rows,
        title=f"most shared conduits of {response.isp}",
    )
    return "\n".join([
        table,
        f"{response.isp}: average sharing {response.average:.2f} "
        f"(rank {response.rank}/{response.ranked_isps}), "
        f"{response.num_conduits} conduits",
    ])


def render_exchange(response: ExchangeResponse) -> str:
    from repro.analysis.report import format_table

    return format_table(
        ("conduit", "km", "members", "best savings"),
        [
            (
                f"{row.city_a} - {row.city_b}",
                f"{row.length_km:.0f}",
                row.num_members,
                f"x{row.best_savings_factor:.0f}",
            )
            for row in response.conduits
        ],
        title="conduit exchange plan",
    )


_RENDERERS = {
    "cut.result": render_cut,
    "add.result": render_add,
    "audit.result": render_audit,
    "latency.result": render_latency,
    "risk.result": render_risk,
    "exchange.result": render_exchange,
}


def render_response(response: QueryResponse) -> str:
    """The human-readable form of any response (experiments carry their
    own formatted text)."""
    renderer = _RENDERERS.get(response.kind)
    if renderer is not None:
        return renderer(response)
    text = getattr(response, "text", None)
    if text is not None:
        return text
    return str(response.to_json())  # pragma: no cover - no such kind yet
