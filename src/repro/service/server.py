"""The HTTP frontend: stdlib ``ThreadingHTTPServer``, no new deps.

:class:`ServiceApp` is the transport-free application object — route
methods take parsed JSON and return ``(status, payload)`` — so tests
exercise dispatch, batching, and health without sockets.
:func:`make_server` binds it to a ``ThreadingHTTPServer``; each
connection runs on its own thread, which is exactly what lets the
latency micro-batcher observe *concurrent* queries and fold them into
one Dijkstra solve.

Routes
------
``GET  /healthz``       200 once every scenario is warm, 503 before
``GET  /v1/manifest``   service manifest: schema version, query kinds,
                        per-scenario states and counters
``GET  /v1/scenarios``  the scenario table alone
``POST /v1/query``      one typed request; ``"scenario"`` selects the
                        named scenario (default ``"default"``)
``POST /v1/batch``      ``{"requests": [...]}`` — latency requests are
                        solved as one explicit batch per scenario

Response bodies are rendered by the same canonical encoder the CLI
uses, so an HTTP answer is byte-identical to ``repro ... --json``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.tracer import Tracer
from repro.service.handlers import handle_query, solve_latency_batch
from repro.service.registry import ScenarioRegistry
from repro.service.schema import (
    SCHEMA_VERSION,
    LatencyRequest,
    QueryError,
    encode_json,
    parse_request,
)

#: HTTP status -> reason used for error payloads the app itself builds.
_Result = Tuple[int, Dict[str, Any]]


def _scenario_of(payload: Mapping) -> str:
    name = payload.get("scenario", "default")
    if not isinstance(name, str) or not name:
        raise QueryError(
            "invalid_field", "field 'scenario' must be a non-empty string",
            field="scenario",
        )
    return name


class ServiceApp:
    """Transport-free application: routes over a scenario registry."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry
        #: Optional service-level tracer: one recorded span per HTTP
        #: request (``record_span`` is append-only, hence thread-safe
        #: under concurrent handler threads, unlike nested spans).
        self.tracer = tracer
        self.requests = 0
        self.errors = 0

    # -- routes --------------------------------------------------------
    def healthz(self) -> _Result:
        ready = self.registry.ready
        return (200 if ready else 503), {
            "v": SCHEMA_VERSION,
            "kind": "health",
            "status": "ok" if ready else "warming",
            "scenarios": {
                entry.name: entry.state
                for entry in self.registry.entries()
            },
        }

    def manifest(self) -> _Result:
        from repro.service.handlers import QUERY_KINDS

        return 200, {
            "v": SCHEMA_VERSION,
            "kind": "manifest",
            "service": "repro",
            "schema_version": SCHEMA_VERSION,
            "query_kinds": list(QUERY_KINDS),
            "scenarios": self.registry.describe(),
            "requests": self.requests,
            "errors": self.errors,
        }

    def scenarios(self) -> _Result:
        return 200, {
            "v": SCHEMA_VERSION,
            "kind": "scenarios",
            "scenarios": self.registry.describe(),
        }

    def query(self, payload: Any) -> _Result:
        """One typed query, micro-batched when it is distance-type."""
        request = parse_request(payload)
        entry = self.registry.get(_scenario_of(payload))
        if isinstance(request, LatencyRequest):
            response = entry.batcher.submit(request)
        else:
            with entry.lock:
                response = handle_query(entry.scenario, request)
        entry.queries += 1
        return 200, response.to_json()

    def batch(self, payload: Any) -> _Result:
        """A client-assembled batch: one Dijkstra solve per scenario
        for its latency members, sequential dispatch for the rest.

        Always 200; each slot carries its own result or structured
        error, so one malformed member never fails the batch.
        """
        if not isinstance(payload, Mapping) or not isinstance(
            payload.get("requests"), list
        ):
            raise QueryError(
                "bad_request",
                "batch body must be {\"requests\": [...]}",
                field="requests",
            )
        items = payload["requests"]
        results: List[Optional[Dict[str, Any]]] = [None] * len(items)
        parsed: Dict[int, LatencyRequest] = {}
        latency: Dict[str, List[int]] = {}
        for i, item in enumerate(items):
            try:
                request = parse_request(item)
                name = _scenario_of(item)
                entry = self.registry.get(name)
            except QueryError as error:
                results[i] = error.to_json()
                continue
            if isinstance(request, LatencyRequest):
                parsed[i] = request
                latency.setdefault(name, []).append(i)
            else:
                try:
                    with entry.lock:
                        results[i] = handle_query(
                            entry.scenario, request
                        ).to_json()
                except QueryError as error:
                    results[i] = error.to_json()
                entry.queries += 1
        for name, slots in sorted(latency.items()):
            entry = self.registry.get(name)
            requests = [parsed[i] for i in slots]
            with entry.batcher._lock:
                entry.batcher.batches += 1
                entry.batcher.requests += len(requests)
            outcomes = solve_latency_batch(entry.scenario, requests)
            for slot, outcome in zip(slots, outcomes):
                results[slot] = outcome.to_json()
                entry.queries += 1
        return 200, {
            "v": SCHEMA_VERSION,
            "kind": "batch.result",
            "results": results,
        }

    # -- dispatch ------------------------------------------------------
    def handle(
        self, method: str, path: str, body: Optional[bytes]
    ) -> _Result:
        """Route one HTTP request; never raises."""
        started = time.perf_counter()
        self.requests += 1
        try:
            status, payload = self._route(method, path, body)
        except QueryError as error:
            status, payload = error.status, error.to_json()
        except Exception as error:  # noqa: BLE001 - boundary
            status = 500
            payload = QueryError(
                "internal", f"{type(error).__name__}: {error}", status=500
            ).to_json()
        if status >= 400:
            self.errors += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record_span(
                f"service.http.{method} {path}",
                time.perf_counter() - started,
                status=status,
            )
        return status, payload

    def _route(
        self, method: str, path: str, body: Optional[bytes]
    ) -> _Result:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                return self.healthz()
            if path in ("/manifest", "/v1/manifest"):
                return self.manifest()
            if path == "/v1/scenarios":
                return self.scenarios()
            raise QueryError(
                "not_found", f"no such endpoint: GET {path}", status=404
            )
        if method == "POST":
            try:
                payload = json.loads((body or b"").decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise QueryError(
                    "bad_request", f"request body is not JSON: {error}"
                )
            if path == "/v1/query":
                return self.query(payload)
            if path == "/v1/batch":
                return self.batch(payload)
            raise QueryError(
                "not_found", f"no such endpoint: POST {path}", status=404
            )
        raise QueryError(
            "method_not_allowed", f"method {method} not supported",
            status=405,
        )


class _Handler(BaseHTTPRequestHandler):
    """Thin byte shuffler around :meth:`ServiceApp.handle`."""

    app: ServiceApp  # injected by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        # Same bytes as the CLI's --json output (plus trailing newline).
        body = (encode_json(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._respond(*self.app.handle("GET", self.path, None))

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._respond(*self.app.handle("POST", self.path, body))

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)


def make_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A bound (not yet serving) threading HTTP server for *app*.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.  Call ``serve_forever()`` (blocking) or
    drive it from a thread; ``shutdown()`` + ``server_close()`` stop it
    cleanly.
    """
    handler = type("ReproServiceHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server
