"""Named scenarios served side by side, each warm and locked.

The server can hold many :class:`~repro.scenario.Scenario` instances —
different seeds, campaign sizes, cache settings — under client-chosen
names.  Each entry carries:

* its own re-entrant lock, serializing non-batchable queries per
  scenario (the stage graph is itself single-flight per stage, but
  handlers that compose several stages should not interleave);
* its own :class:`~repro.service.handlers.LatencyBatcher`, so
  micro-batching never mixes scenarios;
* a warm-up state machine (``cold -> warming -> ready | failed``):
  :meth:`ScenarioRegistry.warm_all_async` materializes each entry's
  warm stages on a background thread, and ``/healthz`` reports 503
  until every entry is ready.  Queries are answered during warm-up —
  they simply pay the remaining build cost themselves.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.scenario import Scenario, ScenarioConfig
from repro.service.handlers import LatencyBatcher
from repro.service.schema import QueryError

#: Stages materialized at warm-up: everything the query kinds touch.
#: ``overlay`` transitively pulls the campaign, topology, and
#: geolocation, so a ready scenario answers every kind from memory.
DEFAULT_WARM_STAGES: Tuple[str, ...] = (
    "constructed_map",
    "risk_matrix",
    "substrate",
    "overlay",
)

#: Warm-up states, in lifecycle order.
COLD, WARMING, READY, FAILED = "cold", "warming", "ready", "failed"


class ScenarioEntry:
    """One named scenario plus its serving apparatus."""

    def __init__(
        self,
        name: str,
        scenario: Scenario,
        warm_stages: Tuple[str, ...] = DEFAULT_WARM_STAGES,
        batch_window_s: float = 0.002,
    ):
        self.name = name
        self.scenario = scenario
        self.warm_stages = tuple(
            s for s in warm_stages if s in scenario.graph
        )
        self.lock = threading.RLock()
        self.batcher = LatencyBatcher(scenario, window_s=batch_window_s)
        self.state = COLD
        self.error: Optional[str] = None
        #: Queries answered for this scenario (all kinds).
        self.queries = 0

    def warm(self) -> None:
        """Materialize the warm stages; flips state to ready/failed."""
        self.state = WARMING
        try:
            with self.lock:
                self.scenario.graph.materialize_many(self.warm_stages)
        except Exception as error:  # noqa: BLE001 - reported via /healthz
            self.state = FAILED
            self.error = f"{type(error).__name__}: {error}"
        else:
            self.state = READY

    def describe(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "name": self.name,
            "state": self.state,
            "config": self.scenario.config.to_dict(),
            "warm_stages": list(self.warm_stages),
            "queries": self.queries,
            "latency_batches": self.batcher.batches,
            "latency_batched_requests": self.batcher.requests,
        }
        if self.error is not None:
            info["error"] = self.error
        return info


class ScenarioRegistry:
    """The named-scenario table the server dispatches against."""

    def __init__(self, batch_window_s: float = 0.002):
        self.batch_window_s = batch_window_s
        self._entries: Dict[str, ScenarioEntry] = {}
        self._threads: List[threading.Thread] = []

    def add(
        self,
        name: str,
        scenario: Optional[Scenario] = None,
        config: Optional[ScenarioConfig] = None,
        warm_stages: Tuple[str, ...] = DEFAULT_WARM_STAGES,
    ) -> ScenarioEntry:
        """Register a scenario under *name* (instance or config)."""
        if name in self._entries:
            raise ValueError(f"scenario {name!r} already registered")
        if scenario is None:
            scenario = Scenario(config=config or ScenarioConfig())
        entry = ScenarioEntry(
            name,
            scenario,
            warm_stages=warm_stages,
            batch_window_s=self.batch_window_s,
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ScenarioEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise QueryError(
                "unknown_scenario",
                f"unknown scenario {name!r}; known: "
                f"{', '.join(sorted(self._entries))}",
                field="scenario",
                status=404,
            )
        return entry

    def names(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> List[ScenarioEntry]:
        return [self._entries[name] for name in self.names()]

    @property
    def ready(self) -> bool:
        return all(e.state == READY for e in self._entries.values())

    def describe(self) -> Dict[str, Any]:
        return {e.name: e.describe() for e in self.entries()}

    def warm_all_async(self) -> List[threading.Thread]:
        """Warm every cold entry on background threads (one each)."""
        threads = []
        for entry in self.entries():
            if entry.state != COLD:
                continue
            thread = threading.Thread(
                target=entry.warm,
                name=f"repro-warm-{entry.name}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        self._threads.extend(threads)
        return threads

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until background warm-up threads finish; True if all
        entries ended ready."""
        for thread in self._threads:
            thread.join(timeout)
        return self.ready
