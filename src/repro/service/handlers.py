"""Query dispatch: one handler per request kind, shared by every frontend.

:func:`handle_query` is the single code path behind the HTTP server,
the CLI verbs, and :meth:`Scenario.query`: it opens a tracer span,
dispatches on the request's kind, and returns the typed response (or
raises :class:`~repro.service.schema.QueryError`).

Distance-type queries additionally support **micro-batching**: the
substrate's multi-source Dijkstra answers every source of a batch in
one scipy call, so :func:`solve_latency_batch` takes N latency
requests, deduplicates their source cities, runs one solve, and walks
each request's path out of the shared predecessor matrix.  The
:class:`LatencyBatcher` wraps that in a leader/follower window for
concurrent server threads: the first thread in collects stragglers for
a few milliseconds, solves the combined batch, and hands each waiter
its slot — with answers identical to N serial solves, because Dijkstra
rows are independent.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.geo.coords import fiber_delay_ms
from repro.obs.tracer import get_tracer
from repro.service.schema import (
    AddConduitRequest,
    AddConduitResponse,
    AuditRequest,
    AuditResponse,
    CutRequest,
    CutResponse,
    ExchangeConduitRow,
    ExchangeRequest,
    ExchangeResponse,
    ExperimentRequest,
    ExperimentResponse,
    IspCutRow,
    LatencyRequest,
    LatencyResponse,
    QueryError,
    QueryRequest,
    QueryResponse,
    RiskConduitRow,
    RiskSliceRequest,
    RiskSliceResponse,
)

#: One latency answer slot: the response, or the per-request failure.
LatencyOutcome = Union[LatencyResponse, QueryError]


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------
def _handle_cut(scenario, request: CutRequest) -> CutResponse:
    from repro.resilience import assess_cut, edge_cut, traffic_shift

    if request.max_traces <= 0:
        raise QueryError(
            "invalid_field", "max_traces must be positive",
            field="max_traces",
        )
    fiber_map = scenario.constructed_map
    try:
        event = edge_cut(fiber_map, request.city_a, request.city_b)
    except KeyError as error:
        # str(KeyError) keeps the historical CLI stderr line verbatim.
        raise QueryError("unknown_edge", str(error), status=404)
    impact = assess_cut(fiber_map, event, scenario.overlay)
    shift = traffic_shift(
        scenario.topology, event, scenario.campaign,
        max_traces=request.max_traces,
    )
    return CutResponse(
        description=event.description,
        conduits_severed=event.size,
        isps_affected=impact.isps_affected,
        total_links_hit=impact.total_links_hit,
        total_pairs_disconnected=impact.total_pairs_disconnected,
        probes_affected=impact.probes_affected,
        per_isp=tuple(
            IspCutRow(
                isp=item.isp,
                links_hit=item.links_hit,
                pairs_disconnected=item.pairs_disconnected,
                mean_reroute_delay_ms=item.mean_reroute_delay_ms,
            )
            for item in impact.per_isp
            if item.links_hit > 0
        ),
        affected_fraction=shift.affected_fraction,
        mean_inflation_ms=shift.mean_inflation_ms,
        traces_blackholed=shift.traces_blackholed,
    )


def _handle_audit(scenario, request: AuditRequest) -> AuditResponse:
    from repro.mitigation.robustness import optimize_isp_around_conduits
    from repro.risk.metrics import isp_ranking

    matrix = scenario.risk_matrix
    if request.isp not in matrix.isps:
        raise QueryError(
            "unknown_isp",
            f"unknown ISP {request.isp!r}; known: "
            f"{', '.join(matrix.isps)}",
            field="isp",
            status=404,
        )
    ranking = isp_ranking(matrix)
    position = next(
        i for i, r in enumerate(ranking) if r.isp == request.isp
    )
    row = ranking[position]
    suggestion = optimize_isp_around_conduits(
        scenario.constructed_map, matrix, request.isp
    )
    return AuditResponse(
        isp=request.isp,
        average_sharing=row.average,
        rank=position + 1,
        ranked_isps=len(ranking),
        num_conduits=row.num_conduits,
        reroutes=len(suggestion.outcomes),
        avg_path_inflation=suggestion.avg_pi,
        avg_shared_risk_reduction=suggestion.avg_srr,
    )


def _require_city(fiber_map, key: str, field: str) -> None:
    if key not in fiber_map.nodes:
        raise QueryError(
            "unknown_city",
            f"unknown city {key!r}",
            field=field,
            status=404,
        )


def _nx_latency(scenario, request: LatencyRequest) -> LatencyResponse:
    """NetworkX reference path (no scipy): same collapse, same answer."""
    import networkx as nx

    graph = scenario.constructed_map.simple_conduit_graph()
    unreachable = LatencyResponse(
        city_a=request.city_a, city_b=request.city_b,
        reachable=False, delay_ms=None, length_km=None,
        hops=0, path=(), conduit_ids=(),
    )
    if request.city_a not in graph or request.city_b not in graph:
        return unreachable
    try:
        path = nx.shortest_path(
            graph, request.city_a, request.city_b, weight="length_km"
        )
    except nx.NetworkXNoPath:
        return unreachable
    km = 0.0
    conduit_ids = []
    for u, v in zip(path, path[1:]):
        km += graph[u][v]["length_km"]
        conduit_ids.append(graph[u][v]["conduit_id"])
    return LatencyResponse(
        city_a=request.city_a,
        city_b=request.city_b,
        reachable=True,
        delay_ms=fiber_delay_ms(km),
        length_km=km,
        hops=len(conduit_ids),
        path=tuple(path),
        conduit_ids=tuple(conduit_ids),
    )


def solve_latency_batch(
    scenario, requests: Sequence[LatencyRequest]
) -> List[LatencyOutcome]:
    """Answer N latency requests with **one** batched Dijkstra solve.

    Sources are deduplicated across the batch, solved in a single
    multi-source call against the collapsed conduit view, and each
    request's path is walked out of the shared predecessor matrix.
    Slot *i* of the result is request *i*'s response — or its
    :class:`QueryError` for per-request failures (unknown city), so one
    bad request never poisons its batch-mates.  A batch of one is
    exactly the serial answer.
    """
    fiber_map = scenario.constructed_map
    outcomes: List[Optional[LatencyOutcome]] = [None] * len(requests)
    valid: List[int] = []
    for i, request in enumerate(requests):
        try:
            _require_city(fiber_map, request.city_a, "city_a")
            _require_city(fiber_map, request.city_b, "city_b")
        except QueryError as error:
            outcomes[i] = error
            continue
        valid.append(i)
    substrate = scenario.substrate
    if substrate is None:
        for i in valid:
            outcomes[i] = _nx_latency(scenario, requests[i])
        return outcomes  # type: ignore[return-value]
    view = substrate.conduits.conduit_view()
    sources = [requests[i].city_a for i in valid]
    dist, pred, row_of = view.dijkstra(sources, "length_km")
    for i in valid:
        request = requests[i]
        unreachable = LatencyResponse(
            city_a=request.city_a, city_b=request.city_b,
            reachable=False, delay_ms=None, length_km=None,
            hops=0, path=(), conduit_ids=(),
        )
        row = row_of.get(request.city_a)
        bi = view.index.get(request.city_b)
        ai = view.index.get(request.city_a)
        if row is None or ai is None or bi is None:
            outcomes[i] = unreachable
            continue
        path = view.walk(pred[row], ai, bi)
        if path is None and ai != bi:
            outcomes[i] = unreachable
            continue
        path = path or [ai]
        km = view.path_length(path, "length_km")
        conduit_ids = []
        for u, v in zip(path, path[1:]):
            edge = view.edge_index(view.nodes[u], view.nodes[v])
            conduit_ids.append(
                substrate.conduits.cids[int(view.payload["conduit"][edge])]
            )
        outcomes[i] = LatencyResponse(
            city_a=request.city_a,
            city_b=request.city_b,
            reachable=True,
            delay_ms=fiber_delay_ms(km),
            length_km=km,
            hops=len(conduit_ids),
            path=tuple(view.nodes[n] for n in path),
            conduit_ids=tuple(conduit_ids),
        )
    return outcomes  # type: ignore[return-value]


def _handle_latency(scenario, request: LatencyRequest) -> LatencyResponse:
    outcome = solve_latency_batch(scenario, [request])[0]
    if isinstance(outcome, QueryError):
        raise outcome
    return outcome


def _handle_add(scenario, request: AddConduitRequest) -> AddConduitResponse:
    fiber_map = scenario.constructed_map
    _require_city(fiber_map, request.city_a, "city_a")
    _require_city(fiber_map, request.city_b, "city_b")
    if request.city_a == request.city_b:
        raise QueryError(
            "invalid_field", "city_a and city_b must differ", field="city_b"
        )
    if request.length_km is not None and request.length_km <= 0:
        raise QueryError(
            "invalid_field", "length_km must be positive", field="length_km"
        )
    substrate = scenario.substrate
    if substrate is None:
        raise QueryError(
            "unsupported",
            "the 'add' what-if requires the scipy routing substrate",
            status=501,
        )
    if request.length_km is not None:
        length_km = float(request.length_km)
    else:
        length_km = scenario.network.los_km(
            request.city_a, request.city_b
        )
    base = substrate.conduits.conduit_view()
    ai = base.index[request.city_a]
    dist_before, _, row_of = base.dijkstra([request.city_a], "length_km")
    before = dist_before[row_of[request.city_a]]
    bi = base.index[request.city_b]
    baseline = float(before[bi])
    patched = base.clone()
    improves = patched.upsert_edge(
        request.city_a,
        request.city_b,
        order_weight="length_km",
        weights={
            "risk": 1.0,  # a private new conduit has one tenant
            "length_km": length_km,
        },
        payload={"conduit": -1},
    )
    if improves:
        dist_after, _, row_of = patched.dijkstra(
            [request.city_a], "length_km"
        )
        after = dist_after[row_of[request.city_a]]
        cities_improved = int((after < before).sum())
    else:
        cities_improved = 0
    return AddConduitResponse(
        city_a=request.city_a,
        city_b=request.city_b,
        length_km=length_km,
        delay_ms=fiber_delay_ms(length_km),
        baseline_delay_ms=(
            fiber_delay_ms(baseline) if baseline != float("inf") else None
        ),
        improves_map=improves,
        cities_improved=cities_improved,
    )


def _handle_risk(scenario, request: RiskSliceRequest) -> RiskSliceResponse:
    from repro.risk.metrics import (
        isp_ranking,
        most_shared_conduits,
        sharing_fractions,
    )

    if request.top <= 0:
        raise QueryError(
            "invalid_field", "top must be positive", field="top"
        )
    matrix = scenario.risk_matrix
    fiber_map = scenario.constructed_map

    def conduit_rows(pairs) -> tuple:
        rows = []
        for conduit_id, tenants in pairs:
            a, b = fiber_map.conduits[conduit_id].edge
            rows.append(
                RiskConduitRow(
                    conduit_id=conduit_id,
                    tenants=int(tenants),
                    city_a=a,
                    city_b=b,
                )
            )
        return tuple(rows)

    if request.isp is None:
        return RiskSliceResponse(
            isp=None,
            num_conduits=len(matrix.conduit_ids),
            num_isps=len(matrix.isps),
            top_conduits=conduit_rows(
                most_shared_conduits(matrix, top=request.top)
            ),
            sharing_fractions=tuple(
                sorted(sharing_fractions(matrix).items())
            ),
        )
    if request.isp not in matrix.isps:
        raise QueryError(
            "unknown_isp",
            f"unknown ISP {request.isp!r}; known: "
            f"{', '.join(matrix.isps)}",
            field="isp",
            status=404,
        )
    ranking = isp_ranking(matrix)
    position = next(
        i for i, r in enumerate(ranking) if r.isp == request.isp
    )
    row = ranking[position]
    occupied = sorted(
        matrix.conduits_of(request.isp),
        key=lambda cid: (-matrix.sharing_count(cid), cid),
    )
    return RiskSliceResponse(
        isp=request.isp,
        num_conduits=row.num_conduits,
        num_isps=len(matrix.isps),
        top_conduits=conduit_rows(
            (cid, matrix.sharing_count(cid))
            for cid in occupied[: request.top]
        ),
        average=row.average,
        std_error=row.std_error,
        p25=row.p25,
        p75=row.p75,
        rank=position + 1,
        ranked_isps=len(ranking),
    )


def _handle_exchange(scenario, request: ExchangeRequest) -> ExchangeResponse:
    from repro.mitigation.exchange import plan_exchange

    if request.num_conduits <= 0:
        raise QueryError(
            "invalid_field", "num_conduits must be positive",
            field="num_conduits",
        )
    conduits = plan_exchange(
        scenario.constructed_map,
        scenario.network,
        list(scenario.isps),
        num_conduits=request.num_conduits,
    )
    return ExchangeResponse(
        conduits=tuple(
            ExchangeConduitRow(
                city_a=conduit.edge[0],
                city_b=conduit.edge[1],
                length_km=conduit.length_km,
                num_members=conduit.num_members,
                best_savings_factor=max(
                    member.savings_factor for member in conduit.members
                ),
                total_gain=conduit.total_gain,
            )
            for conduit in conduits
        )
    )


def _handle_experiment(
    scenario, request: ExperimentRequest
) -> ExperimentResponse:
    from repro.experiments import EXPERIMENTS, run_experiment

    if request.experiment_id not in EXPERIMENTS:
        raise QueryError(
            "unknown_experiment",
            f"unknown experiment {request.experiment_id!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            field="experiment_id",
            status=404,
        )
    result = run_experiment(request.experiment_id, scenario)
    return ExperimentResponse(
        experiment_id=result.experiment_id,
        title=result.title,
        extension=result.extension,
        data=result.data,
        text=result.text,
    )


_HANDLERS: Dict[str, Callable[[Any, Any], QueryResponse]] = {
    "cut": _handle_cut,
    "add": _handle_add,
    "audit": _handle_audit,
    "latency": _handle_latency,
    "risk": _handle_risk,
    "exchange": _handle_exchange,
    "experiment": _handle_experiment,
}

#: Every dispatchable query kind (the manifest endpoint publishes this).
QUERY_KINDS = tuple(sorted(_HANDLERS))


def handle_query(scenario, request: QueryRequest) -> QueryResponse:
    """Dispatch one typed request against a scenario (any frontend).

    Raises :class:`QueryError` for validation/lookup failures; any
    other exception is a bug, not a client error.  Each query runs in a
    ``service.query.<kind>`` tracer span, so a traced run attributes
    wall time per query kind.
    """
    handler = _HANDLERS.get(request.kind)
    if handler is None:
        raise QueryError(
            "unknown_kind", f"unknown query kind {request.kind!r}",
            field="kind",
        )
    tracer = get_tracer()
    with tracer.span(f"service.query.{request.kind}"):
        return handler(scenario, request)


# ----------------------------------------------------------------------
# The micro-batcher
# ----------------------------------------------------------------------
class _Batch:
    __slots__ = ("requests", "outcomes", "error", "closed", "done")

    def __init__(self):
        self.requests: List[LatencyRequest] = []
        self.outcomes: Optional[List[LatencyOutcome]] = None
        self.error: Optional[BaseException] = None
        self.closed = False
        self.done = threading.Event()


class LatencyBatcher:
    """Leader/follower micro-batching of concurrent latency queries.

    The first thread to submit into an open batch becomes its leader:
    it waits ``window_s`` for concurrent threads to pile in, closes the
    batch, runs :func:`solve_latency_batch` once, and wakes every
    follower with its slot.  Because each Dijkstra row is independent,
    the batched answers are identical to serial ones — batching changes
    latency and throughput, never results.
    """

    def __init__(self, scenario, window_s: float = 0.002):
        self._scenario = scenario
        self.window_s = window_s
        self._lock = threading.Lock()
        self._open: Optional[_Batch] = None
        #: Lifetime counters (served by the manifest endpoint).
        self.batches = 0
        self.requests = 0

    def submit(self, request: LatencyRequest) -> LatencyResponse:
        """Answer one request, possibly batched with concurrent ones."""
        with self._lock:
            batch = self._open
            leader = batch is None
            if leader:
                batch = self._open = _Batch()
            slot = len(batch.requests)
            batch.requests.append(request)
        if leader:
            if self.window_s > 0:
                time.sleep(self.window_s)
            with self._lock:
                batch.closed = True
                if self._open is batch:
                    self._open = None
                self.batches += 1
                self.requests += len(batch.requests)
            tracer = get_tracer()
            try:
                with tracer.span(
                    "service.latency_batch", size=len(batch.requests)
                ):
                    batch.outcomes = solve_latency_batch(
                        self._scenario, batch.requests
                    )
            except BaseException as error:  # pragma: no cover - defensive
                batch.error = error
            finally:
                batch.done.set()
        else:
            batch.done.wait()
        if batch.error is not None:  # pragma: no cover - defensive
            raise batch.error
        outcome = batch.outcomes[slot]
        if isinstance(outcome, QueryError):
            raise outcome
        return outcome
