"""CI smoke test for the what-if service: ``python -m repro.service.smoke``.

Boots the real HTTP stack on an ephemeral port (warm-up included),
issues cut, latency, and risk-slice queries over actual sockets, and
checks three properties:

1. **Pinned goldens** — the canonical seed-2015 answers (conduit
   counts, top shared conduits, the Denver-Chicago shortest path) match
   exactly; any drift in the scenario pipeline or the query layer
   fails the job.
2. **Frontend identity** — every HTTP response body is byte-identical
   to what the CLI's ``--json`` path produces for the same typed
   request (both render through one canonical encoder).
3. **Lifecycle** — ``/healthz`` reports 503 before warm-up and 200
   after; the server shuts down cleanly.

Exits non-zero with a diagnostic on any mismatch.  The scenario is
intentionally small (1000 traces) so the whole job runs in CI time.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request
from typing import Any, Dict, Tuple

#: Smoke scenario shape: small but big enough for stable orderings.
SEED = 2015
TRACES = 1000

#: Pinned golden facts for (seed=2015, traces=1000).  These are exact:
#: every value derives deterministically from the scenario seed.
GOLDEN_RISK = {
    "num_conduits": 598,
    "num_isps": 20,
    "top_conduit": "C0060",
    "top_conduit_tenants": 15,
}
GOLDEN_CUT = {
    "conduits_severed": 1,
    "isps_affected": 14,
}
GOLDEN_LATENCY = {
    "reachable": True,
    "hops": 7,
    "path_starts": "Denver, CO",
    "path_ends": "Chicago, IL",
    "delay_ms_rounded": 7.51,
}


def _request(
    url: str, payload: Any = None
) -> Tuple[int, bytes]:
    req = urllib.request.Request(
        url,
        data=(
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        ),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _check(condition: bool, message: str) -> None:
    if not condition:
        _fail(message)


def main() -> int:
    from repro.scenario import ScenarioConfig, us2015
    from repro.service.registry import ScenarioRegistry
    from repro.service.schema import encode_json, parse_request
    from repro.service.server import ServiceApp, make_server

    scenario = us2015(
        config=ScenarioConfig(seed=SEED, campaign_traces=TRACES)
    )
    registry = ScenarioRegistry()
    registry.add("default", scenario=scenario)
    app = ServiceApp(registry, tracer=None)
    server = make_server(app, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"smoke: service on {base}")

    try:
        # Lifecycle: cold registry -> 503, warmed -> 200.
        status, _ = _request(f"{base}/healthz")
        _check(status == 503, f"healthz before warm-up: {status} != 503")
        registry.warm_all_async()
        _check(registry.wait_ready(timeout=600), "warm-up did not finish")
        status, body = _request(f"{base}/healthz")
        _check(status == 200, f"healthz after warm-up: {status} != 200")
        print("smoke: warm-up lifecycle ok")

        queries = {
            "cut": {
                "v": 1, "kind": "cut",
                "city_a": "Phoenix, AZ", "city_b": "Tucson, AZ",
            },
            "latency": {
                "v": 1, "kind": "latency",
                "city_a": "Denver, CO", "city_b": "Chicago, IL",
            },
            "risk": {"v": 1, "kind": "risk", "top": 5},
        }
        answers: Dict[str, Dict[str, Any]] = {}
        for name, payload in queries.items():
            status, body = _request(f"{base}/v1/query", payload)
            _check(status == 200, f"{name} query: HTTP {status}")
            # Frontend identity: the HTTP body must be byte-for-byte
            # what the CLI --json path emits for the same request.
            local = scenario.query(parse_request(payload))
            expected = (encode_json(local.to_json()) + "\n").encode()
            _check(
                body == expected,
                f"{name}: HTTP body differs from the CLI --json bytes",
            )
            answers[name] = json.loads(body)
            print(f"smoke: {name} query ok ({len(body)} bytes)")

        risk = answers["risk"]
        _check(
            risk["num_conduits"] == GOLDEN_RISK["num_conduits"],
            f"risk.num_conduits {risk['num_conduits']} != "
            f"{GOLDEN_RISK['num_conduits']}",
        )
        _check(
            risk["num_isps"] == GOLDEN_RISK["num_isps"],
            f"risk.num_isps {risk['num_isps']} != {GOLDEN_RISK['num_isps']}",
        )
        top = risk["top_conduits"][0]
        _check(
            top["conduit_id"] == GOLDEN_RISK["top_conduit"]
            and top["tenants"] == GOLDEN_RISK["top_conduit_tenants"],
            f"risk top conduit {top} != {GOLDEN_RISK}",
        )

        latency = answers["latency"]
        _check(
            latency["reachable"] is GOLDEN_LATENCY["reachable"]
            and latency["hops"] == GOLDEN_LATENCY["hops"]
            and latency["path"][0] == GOLDEN_LATENCY["path_starts"]
            and latency["path"][-1] == GOLDEN_LATENCY["path_ends"]
            and round(latency["delay_ms"], 2)
            == GOLDEN_LATENCY["delay_ms_rounded"],
            f"latency answer drifted: {latency}",
        )

        cut = answers["cut"]
        _check(
            cut["kind"] == "cut.result"
            and cut["event"]["conduits_severed"]
            == GOLDEN_CUT["conduits_severed"],
            f"cut answer drifted: {cut.get('event')}",
        )
        _check(
            cut["impact"]["isps_affected"] == GOLDEN_CUT["isps_affected"]
            and cut["impact"]["total_links_hit"] >= 1,
            f"cut impact drifted: {cut['impact']['isps_affected']} ISPs, "
            f"{cut['impact']['total_links_hit']} links",
        )
        print("smoke: pinned goldens ok")

        # Structured errors: unknown city -> 404 with a typed payload.
        status, body = _request(
            f"{base}/v1/query",
            {"v": 1, "kind": "latency",
             "city_a": "Denver, CO", "city_b": "Nowhere, XX"},
        )
        error = json.loads(body)
        _check(
            status == 404 and error["error"]["code"] == "unknown_city",
            f"error path: HTTP {status}, {error}",
        )
        print("smoke: structured error path ok")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    _check(not thread.is_alive(), "server thread did not stop")
    print("smoke: clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
