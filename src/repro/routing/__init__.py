"""Risk-aware routing: SRLG-disjoint primary/backup path planning.

§6.1 points out that "widespread and sometimes significant conduit
sharing complicates the task of identifying and configuring backup
paths since these critical details are often opaque to higher layers".
With the conduit map those details stop being opaque: this subpackage
treats each right-of-way as a shared-risk link group (SRLG) and plans
backup paths that avoid the primary's risk groups.
"""

from repro.routing.backup import BackupPlan, plan_backup, protection_report
from repro.routing.opacity import OpacityCase, OpacityStudy, check_pair, opacity_study
from repro.routing.pareto import ParetoPath, best_under_risk_budget, pareto_paths
from repro.routing.srlg import (
    path_srlgs,
    shared_srlgs,
    srlg_of_conduit,
)

__all__ = [
    "srlg_of_conduit",
    "path_srlgs",
    "shared_srlgs",
    "plan_backup",
    "protection_report",
    "BackupPlan",
    "pareto_paths",
    "best_under_risk_budget",
    "ParetoPath",
    "check_pair",
    "opacity_study",
    "OpacityCase",
    "OpacityStudy",
]
