"""Shared-risk link groups over the conduit map.

Two layer-3 links that look disjoint can die together if their fiber
shares a trench.  The SRLG of a conduit is its city-pair edge: parallel
conduits between the same cities usually follow the same or an adjacent
trench (§2.2), so a serious physical event correlates them.  A truly
diverse backup path therefore avoids the *edges* of the primary, not
just its conduits.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.fibermap.elements import FiberMap
from repro.transport.network import EdgeKey

Srlg = EdgeKey


def srlg_of_conduit(fiber_map: FiberMap, conduit_id: str) -> Srlg:
    """The shared-risk group of one conduit (its city-pair edge)."""
    return fiber_map.conduit(conduit_id).edge


def path_srlgs(fiber_map: FiberMap, conduit_ids: Iterable[str]) -> FrozenSet[Srlg]:
    """All risk groups a conduit path traverses."""
    return frozenset(
        srlg_of_conduit(fiber_map, cid) for cid in conduit_ids
    )


def shared_srlgs(
    fiber_map: FiberMap,
    path_a: Iterable[str],
    path_b: Iterable[str],
) -> FrozenSet[Srlg]:
    """Risk groups common to two conduit paths (ideally empty)."""
    return path_srlgs(fiber_map, path_a) & path_srlgs(fiber_map, path_b)


def srlg_diversity(
    fiber_map: FiberMap,
    path_a: Iterable[str],
    path_b: Iterable[str],
) -> float:
    """1.0 when fully risk-disjoint, 0.0 when one path's groups are all
    shared with the other."""
    groups_a = path_srlgs(fiber_map, path_a)
    groups_b = path_srlgs(fiber_map, path_b)
    if not groups_a or not groups_b:
        return 1.0
    overlap = len(groups_a & groups_b)
    smaller = min(len(groups_a), len(groups_b))
    return 1.0 - overlap / smaller
