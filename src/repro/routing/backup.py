"""Primary/backup path planning with SRLG avoidance.

For a provider and a city pair: the primary is its minimum-delay path
over its own footprint; the backup minimizes delay subject to avoiding
the primary's shared-risk groups — strictly when possible, otherwise
with a heavy penalty per shared group (the practical compromise when a
provider's footprint cannot offer full diversity, which, per §4.2, is
exactly Suddenlink's situation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.routing.srlg import path_srlgs, shared_srlgs
from repro.transport.network import EdgeKey

#: Penalty (km-equivalent) per shared risk group when strict disjointness
#: is impossible.
SRLG_PENALTY_KM = 5000.0


@dataclass(frozen=True)
class BackupPlan:
    """A primary/backup pair for one provider and city pair."""

    isp: str
    endpoints: EdgeKey
    primary_conduits: Tuple[str, ...]
    backup_conduits: Optional[Tuple[str, ...]]
    primary_delay_ms: float
    backup_delay_ms: Optional[float]
    shared_groups: FrozenSet[EdgeKey]

    @property
    def fully_diverse(self) -> bool:
        """True when the backup shares no risk group with the primary."""
        return self.backup_conduits is not None and not self.shared_groups

    @property
    def protected(self) -> bool:
        """True when any backup exists at all."""
        return self.backup_conduits is not None


def _footprint_graph(fiber_map: FiberMap, isp: str) -> nx.Graph:
    graph = nx.Graph()
    for cid, conduit in sorted(fiber_map.conduits.items()):
        if isp not in conduit.tenants:
            continue
        a, b = conduit.edge
        data = graph.get_edge_data(a, b)
        if data is None or conduit.length_km < data["length_km"]:
            graph.add_edge(
                a, b, conduit_id=cid, length_km=conduit.length_km
            )
    return graph


def _path_conduits(graph: nx.Graph, path: List[str]) -> Tuple[str, ...]:
    return tuple(graph[u][v]["conduit_id"] for u, v in zip(path, path[1:]))


def _path_km(graph: nx.Graph, path: List[str]) -> float:
    return sum(graph[u][v]["length_km"] for u, v in zip(path, path[1:]))


def plan_backup(
    fiber_map: FiberMap,
    isp: str,
    a_key: str,
    b_key: str,
) -> Optional[BackupPlan]:
    """Plan a primary and an SRLG-diverse backup path.

    Returns ``None`` when the provider cannot connect the pair at all.
    The backup is ``None`` (unprotected) when removing the primary's
    risk groups disconnects the pair *and* no penalized alternative
    distinct from the primary exists.
    """
    graph = _footprint_graph(fiber_map, isp)
    try:
        primary_path = nx.shortest_path(graph, a_key, b_key, weight="length_km")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    primary = _path_conduits(graph, primary_path)
    primary_km = _path_km(graph, primary_path)
    primary_groups = path_srlgs(fiber_map, primary)

    # Strict attempt: remove every edge in a primary risk group.
    strict = graph.copy()
    for edge in primary_groups:
        if strict.has_edge(*edge):
            strict.remove_edge(*edge)
    backup: Optional[Tuple[str, ...]] = None
    backup_km: Optional[float] = None
    try:
        backup_path = nx.shortest_path(strict, a_key, b_key, weight="length_km")
        backup = _path_conduits(strict, backup_path)
        backup_km = _path_km(strict, backup_path)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        # Penalized attempt: allow overlap at a steep price.
        penalized = graph.copy()
        for edge in primary_groups:
            if penalized.has_edge(*edge):
                penalized[edge[0]][edge[1]]["length_km"] += SRLG_PENALTY_KM
        try:
            backup_path = nx.shortest_path(
                penalized, a_key, b_key, weight="length_km"
            )
            candidate = _path_conduits(graph, backup_path)
            if candidate != primary:
                backup = candidate
                backup_km = _path_km(graph, backup_path)
        except (nx.NetworkXNoPath, nx.NodeNotFound):  # pragma: no cover
            backup = None
    shared = (
        shared_srlgs(fiber_map, primary, backup)
        if backup is not None
        else frozenset()
    )
    return BackupPlan(
        isp=isp,
        endpoints=(primary_path[0], primary_path[-1]),
        primary_conduits=primary,
        backup_conduits=backup,
        primary_delay_ms=fiber_delay_ms(primary_km),
        backup_delay_ms=fiber_delay_ms(backup_km) if backup_km is not None else None,
        shared_groups=shared,
    )


def protection_report(
    fiber_map: FiberMap,
    isp: str,
    max_pairs: Optional[int] = 100,
) -> Tuple[int, int, int]:
    """(fully diverse, protected-but-shared, unprotected) counts over the
    provider's link pairs."""
    pairs = sorted({l.endpoints for l in fiber_map.links_of(isp)})
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    diverse = shared = unprotected = 0
    for a, b in pairs:
        plan = plan_backup(fiber_map, isp, a, b)
        if plan is None or not plan.protected:
            unprotected += 1
        elif plan.fully_diverse:
            diverse += 1
        else:
            shared += 1
    return diverse, shared, unprotected
