"""Logical diversity vs physical reality (§6.1's punchline).

"The fact that there is widespread and sometimes significant conduit
sharing complicates the task of identifying and configuring backup
paths since these critical details are often opaque to higher layers."
An operator buying transit from two *different providers* believes the
paths are diverse; the conduit map says otherwise.  For a city pair and
a pair of providers, this module computes each provider's path and the
trenches they secretly share.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.routing.srlg import shared_srlgs
from repro.transport.network import EdgeKey


@dataclass(frozen=True)
class OpacityCase:
    """One (city pair, provider pair) logical-diversity check."""

    endpoints: EdgeKey
    isp_a: str
    isp_b: str
    path_a: Tuple[str, ...]
    path_b: Tuple[str, ...]
    shared_groups: FrozenSet[EdgeKey]
    #: Trenches where both providers ride the *same physical conduit*.
    shared_conduits: FrozenSet[str]

    @property
    def logically_diverse(self) -> bool:
        """What the layer-3 view believes: different providers = diverse."""
        return self.isp_a != self.isp_b

    @property
    def physically_diverse(self) -> bool:
        """What the conduit map knows."""
        return not self.shared_groups

    @property
    def deceived(self) -> bool:
        """Logical diversity that physical reality contradicts."""
        return self.logically_diverse and not self.physically_diverse


def _isp_path(
    fiber_map: FiberMap, isp: str, a_key: str, b_key: str
) -> Optional[Tuple[str, ...]]:
    graph = nx.Graph()
    for cid, conduit in sorted(fiber_map.conduits.items()):
        if isp not in conduit.tenants:
            continue
        u, v = conduit.edge
        data = graph.get_edge_data(u, v)
        if data is None or conduit.length_km < data["length_km"]:
            graph.add_edge(u, v, conduit_id=cid, length_km=conduit.length_km)
    try:
        path = nx.shortest_path(graph, a_key, b_key, weight="length_km")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return tuple(
        graph[u][v]["conduit_id"] for u, v in zip(path, path[1:])
    )


def check_pair(
    fiber_map: FiberMap,
    a_key: str,
    b_key: str,
    isp_a: str,
    isp_b: str,
) -> Optional[OpacityCase]:
    """Compare two providers' paths between one city pair.

    Returns ``None`` when either provider cannot connect the pair.
    """
    path_a = _isp_path(fiber_map, isp_a, a_key, b_key)
    path_b = _isp_path(fiber_map, isp_b, a_key, b_key)
    if path_a is None or path_b is None:
        return None
    return OpacityCase(
        endpoints=(a_key, b_key),
        isp_a=isp_a,
        isp_b=isp_b,
        path_a=path_a,
        path_b=path_b,
        shared_groups=shared_srlgs(fiber_map, path_a, path_b),
        shared_conduits=frozenset(path_a) & frozenset(path_b),
    )


@dataclass(frozen=True)
class OpacityStudy:
    """Aggregate logical-vs-physical diversity over many cases."""

    cases: Tuple[OpacityCase, ...]

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def deceived_count(self) -> int:
        return sum(1 for c in self.cases if c.deceived)

    @property
    def deceived_fraction(self) -> float:
        return self.deceived_count / self.total if self.total else 0.0

    @property
    def same_conduit_count(self) -> int:
        """Cases where the two providers share an actual conduit."""
        return sum(1 for c in self.cases if c.shared_conduits)

    def mean_shared_groups(self) -> float:
        if not self.cases:
            return 0.0
        return sum(len(c.shared_groups) for c in self.cases) / self.total


def opacity_study(
    fiber_map: FiberMap,
    isps: Sequence[str],
    max_pairs: int = 40,
) -> OpacityStudy:
    """Check every provider pair over the busiest shared city pairs.

    City pairs are the endpoints both providers can connect, sampled
    deterministically from their common link endpoints.
    """
    cases: List[OpacityCase] = []
    for isp_a, isp_b in combinations(sorted(isps), 2):
        pairs_a = {l.endpoints for l in fiber_map.links_of(isp_a)}
        pairs_b = {l.endpoints for l in fiber_map.links_of(isp_b)}
        common = sorted(pairs_a & pairs_b)[:max_pairs]
        for a_key, b_key in common:
            case = check_pair(fiber_map, a_key, b_key, isp_a, isp_b)
            if case is not None:
                cases.append(case)
    return OpacityStudy(cases=tuple(cases))
