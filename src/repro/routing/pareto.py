"""Risk-latency Pareto routing (RiskRoute-style, paper reference [84]).

A path between two cities trades propagation delay against shared risk:
the fastest route usually rides the busiest trunk conduits.  This module
enumerates the Pareto frontier of (delay, risk) for a provider and a
city pair, so an operator can pick the exact trade-off — e.g. "the
fastest path whose worst conduit has at most 8 tenants".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.fibermap.elements import FiberMap
from repro.geo.coords import fiber_delay_ms
from repro.transport.network import EdgeKey


@dataclass(frozen=True)
class ParetoPath:
    """One non-dominated (delay, risk) routing option."""

    conduit_ids: Tuple[str, ...]
    delay_ms: float
    #: Worst tenant count along the path (bottleneck risk).
    max_risk: int
    #: Total tenant count along the path (additive risk).
    total_risk: int

    @property
    def num_hops(self) -> int:
        return len(self.conduit_ids)


def _footprint_graph(fiber_map: FiberMap, isp: Optional[str]) -> nx.Graph:
    graph = nx.Graph()
    for cid, conduit in sorted(fiber_map.conduits.items()):
        if isp is not None and isp not in conduit.tenants:
            continue
        a, b = conduit.edge
        data = graph.get_edge_data(a, b)
        if data is None or conduit.num_tenants < data["risk"]:
            graph.add_edge(
                a, b,
                conduit_id=cid,
                length_km=conduit.length_km,
                risk=conduit.num_tenants,
            )
    return graph


def pareto_paths(
    fiber_map: FiberMap,
    a_key: str,
    b_key: str,
    isp: Optional[str] = None,
) -> List[ParetoPath]:
    """The (delay, bottleneck-risk) Pareto frontier between two cities.

    Sweeps the bottleneck threshold: for each feasible maximum tenant
    count, the shortest-delay path using only conduits at or below it.
    Dominated options are discarded; the result is sorted fastest first.
    Restricting to *isp* uses only that provider's footprint.
    """
    graph = _footprint_graph(fiber_map, isp)
    if a_key not in graph or b_key not in graph:
        return []
    levels = sorted({d["risk"] for _, _, d in graph.edges(data=True)})
    options: List[ParetoPath] = []
    for level in levels:
        sub = nx.Graph()
        for u, v, d in graph.edges(data=True):
            if d["risk"] <= level:
                sub.add_edge(u, v, **d)
        if a_key not in sub or b_key not in sub:
            continue
        try:
            path = nx.shortest_path(sub, a_key, b_key, weight="length_km")
        except nx.NetworkXNoPath:
            continue
        km = sum(sub[u][v]["length_km"] for u, v in zip(path, path[1:]))
        risks = [sub[u][v]["risk"] for u, v in zip(path, path[1:])]
        option = ParetoPath(
            conduit_ids=tuple(
                sub[u][v]["conduit_id"] for u, v in zip(path, path[1:])
            ),
            delay_ms=fiber_delay_ms(km),
            max_risk=max(risks),
            total_risk=sum(risks),
        )
        options.append(option)
    # Keep the non-dominated set over (delay, max_risk).
    options.sort(key=lambda o: (o.delay_ms, o.max_risk))
    frontier: List[ParetoPath] = []
    best_risk = None
    for option in options:
        if best_risk is None or option.max_risk < best_risk:
            frontier.append(option)
            best_risk = option.max_risk
    return frontier


def best_under_risk_budget(
    fiber_map: FiberMap,
    a_key: str,
    b_key: str,
    max_tenants: int,
    isp: Optional[str] = None,
) -> Optional[ParetoPath]:
    """Fastest path whose worst conduit has at most *max_tenants*."""
    for option in pareto_paths(fiber_map, a_key, b_key, isp):
        if option.max_risk <= max_tenants:
            return option
    return None
