"""Build corridor geometry and assemble the transportation network.

Real corridors are not great circles: highways and rail lines meander
around terrain, which is why deployed fiber routes are longer than the
line of sight (the paper's Figure 12 contrasts deployed routes, best
rights-of-way, and LOS).  We synthesize that meander deterministically:
each corridor leg is densified and offset perpendicular to its bearing
by a low-frequency sinusoid whose phase is derived from the corridor
name, giving stable, reproducible geometry whose length runs a few
percent over the great circle.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional

from repro.data.cities import city_by_name
from repro.data.corridors import CORRIDORS, Corridor, secondary_road_corridors
from repro.geo.coords import (
    GeoPoint,
    bearing_deg,
    destination_point,
    great_circle_interpolate,
    haversine_km,
)
from repro.geo.polyline import Polyline
from repro.transport.network import TransportationNetwork

#: Default meander amplitude and wavelength, kilometers.
DEFAULT_MEANDER_AMP_KM = 7.0
DEFAULT_MEANDER_WAVELENGTH_KM = 90.0
#: Densification spacing along each leg.
DEFAULT_POINT_SPACING_KM = 20.0


def _corridor_phase(name: str) -> float:
    """Stable per-corridor phase in [0, 2*pi) derived from its name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return (digest[0] * 256 + digest[1]) / 65536.0 * 2.0 * math.pi


def _meander_leg(
    a: GeoPoint,
    b: GeoPoint,
    phase: float,
    amp_km: float,
    wavelength_km: float,
    spacing_km: float,
) -> List[GeoPoint]:
    """Points of one meandered leg from *a* (inclusive) to *b* (exclusive)."""
    leg_km = haversine_km(a, b)
    points = [a]
    if leg_km < spacing_km * 1.5 or amp_km <= 0.0:
        return points
    n = max(2, int(leg_km / spacing_km))
    for i in range(1, n):
        fraction = i / n
        base = great_circle_interpolate(a, b, fraction)
        # Offset perpendicular to the instantaneous bearing.  The sine
        # vanishes at the endpoints so legs join continuously at cities.
        along_km = fraction * leg_km
        offset = (
            amp_km
            * math.sin(math.pi * fraction)
            * math.sin(2.0 * math.pi * along_km / wavelength_km + phase)
        )
        if abs(offset) > 1e-9:
            heading = bearing_deg(a, b) + 90.0
            base = destination_point(base, heading, offset)
        points.append(base)
    return points


def corridor_polyline(
    corridor: Corridor,
    amp_km: float = DEFAULT_MEANDER_AMP_KM,
    wavelength_km: float = DEFAULT_MEANDER_WAVELENGTH_KM,
    spacing_km: float = DEFAULT_POINT_SPACING_KM,
) -> Polyline:
    """Full meandered geometry of *corridor* through all its waypoints."""
    phase = _corridor_phase(corridor.name)
    points: List[GeoPoint] = []
    locations = [city_by_name(key).location for key in corridor.waypoints]
    for a, b in zip(locations, locations[1:]):
        points.extend(_meander_leg(a, b, phase, amp_km, wavelength_km, spacing_km))
    points.append(locations[-1])
    return Polyline(points)


def corridor_leg_polyline(
    corridor: Corridor,
    a_key: str,
    b_key: str,
    amp_km: float = DEFAULT_MEANDER_AMP_KM,
    wavelength_km: float = DEFAULT_MEANDER_WAVELENGTH_KM,
    spacing_km: float = DEFAULT_POINT_SPACING_KM,
) -> Polyline:
    """Geometry of the single corridor leg from *a_key* to *b_key*.

    The pair must be consecutive waypoints of *corridor* (in either
    order); the returned polyline runs a_key -> b_key.
    """
    edges = corridor.edges()
    if (a_key, b_key) in edges:
        forward = True
    elif (b_key, a_key) in edges:
        forward = False
    else:
        raise ValueError(
            f"({a_key!r}, {b_key!r}) is not a leg of corridor {corridor.name}"
        )
    start_key, end_key = (a_key, b_key) if forward else (b_key, a_key)
    a = city_by_name(start_key).location
    b = city_by_name(end_key).location
    phase = _corridor_phase(corridor.name)
    points = _meander_leg(a, b, phase, amp_km, wavelength_km, spacing_km)
    points.append(b)
    line = Polyline(points)
    return line if forward else line.reversed()


def build_transport_network(
    corridors: Optional[Iterable[Corridor]] = None,
    amp_km: float = DEFAULT_MEANDER_AMP_KM,
    wavelength_km: float = DEFAULT_MEANDER_WAVELENGTH_KM,
    spacing_km: float = DEFAULT_POINT_SPACING_KM,
    include_secondary: bool = True,
) -> TransportationNetwork:
    """Assemble the full transportation network from corridor definitions.

    Every consecutive waypoint pair of every corridor becomes one edge;
    edges covered by multiple corridors carry one geometry per corridor.
    With ``include_secondary`` (the default), the deterministic US-route /
    state-highway grid is added alongside the named primary corridors;
    secondary roads meander more than interstates.
    """
    network = TransportationNetwork()
    if corridors is not None:
        pool = list(corridors)
    else:
        pool = list(CORRIDORS)
        if include_secondary:
            pool.extend(secondary_road_corridors())
    for corridor in pool:
        if corridor.kind == "pipeline":
            # Pipelines cut cross-country far from the road grid (the
            # paper's Figure 5 situation: "no known transportation
            # infrastructure is co-located").
            leg_amp = amp_km * 3.5
        elif corridor.grade == "primary":
            leg_amp = amp_km
        else:
            leg_amp = amp_km * 1.6
        for a_key, b_key in corridor.edges():
            geometry = corridor_leg_polyline(
                corridor, a_key, b_key, leg_amp, wavelength_km, spacing_km
            )
            network.add_corridor_leg(a_key, b_key, corridor, geometry)
    return network
