"""Transportation substrate: road/rail/pipeline networks and rights-of-way.

Replaces the paper's NationalAtlas layers and the state-by-state ROW
records: a geometric graph of corridors between city waypoints, a ROW
registry with per-state jurisdiction, and shortest-path / line-of-sight
queries used by the map pipeline (§2), the geography analysis (§3), and
the mitigation frameworks (§5).
"""

from repro.transport.builder import build_transport_network, corridor_polyline
from repro.transport.network import RowEdge, TransportationNetwork
from repro.transport.rightofway import RightOfWay, RowRegistry

__all__ = [
    "TransportationNetwork",
    "RowEdge",
    "build_transport_network",
    "corridor_polyline",
    "RightOfWay",
    "RowRegistry",
]
