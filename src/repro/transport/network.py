"""The transportation network: a geometric multigraph of rights-of-way."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.data.cities import city_by_name
from repro.data.corridors import Corridor
from repro.geo.coords import haversine_km
from repro.geo.overlap import CorridorIndex
from repro.geo.polyline import Polyline

EdgeKey = Tuple[str, str]


def canonical_edge(a_key: str, b_key: str) -> EdgeKey:
    """Order-independent edge key between two city keys."""
    return (a_key, b_key) if a_key <= b_key else (b_key, a_key)


@dataclass
class RowEdge:
    """One city-pair right-of-way edge and every corridor that covers it.

    ``geometries`` maps corridor name to the leg geometry oriented from
    ``edge[0]`` to ``edge[1]`` (canonical order).
    """

    edge: EdgeKey
    kinds: Set[str] = field(default_factory=set)
    corridor_names: Set[str] = field(default_factory=set)
    geometries: Dict[str, Polyline] = field(default_factory=dict)
    kind_of: Dict[str, str] = field(default_factory=dict)
    grade_of: Dict[str, str] = field(default_factory=dict)

    @property
    def is_primary(self) -> bool:
        """True when at least one covering corridor is a primary route."""
        return any(g == "primary" for g in self.grade_of.values())

    @property
    def length_km(self) -> float:
        """Length of the shortest covering corridor geometry."""
        return min(g.length_km for g in self.geometries.values())

    def geometry_for_kind(self, kind: str) -> Optional[Polyline]:
        """A representative geometry of the given *kind*, if any covers it."""
        for name in sorted(self.corridor_names):
            if self.kind_of[name] == kind:
                return self.geometries[name]
        return None

    def any_geometry(self) -> Polyline:
        """A representative geometry (shortest one)."""
        return min(self.geometries.values(), key=lambda g: g.length_km)

    def geometry_oriented(self, a_key: str, b_key: str,
                          corridor_name: Optional[str] = None) -> Polyline:
        """Geometry running from *a_key* to *b_key*.

        When *corridor_name* is given, use that corridor's leg; otherwise
        the shortest covering geometry.
        """
        if canonical_edge(a_key, b_key) != self.edge:
            raise ValueError(f"({a_key}, {b_key}) is not edge {self.edge}")
        if corridor_name is not None:
            line = self.geometries[corridor_name]
        else:
            line = self.any_geometry()
        return line if a_key == self.edge[0] else line.reversed()


class TransportationNetwork:
    """Road/rail/pipeline rights-of-way as a geometric graph over cities.

    Supports the queries the paper's analyses rely on:

    * shortest ROW path between two cities, optionally restricted to a
      set of infrastructure kinds (§5.3 "new conduit following existing
      roads or railways");
    * line-of-sight distance (the §5.3 lower bound);
    * a :class:`~repro.geo.overlap.CorridorIndex` per infrastructure kind
      for buffer-overlap analysis (§3).
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._edges: Dict[EdgeKey, RowEdge] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_corridor_leg(
        self, a_key: str, b_key: str, corridor: Corridor, geometry: Polyline
    ) -> None:
        """Register one corridor leg between two cities."""
        # Validate both endpoints exist in the city dataset.
        city_by_name(a_key)
        city_by_name(b_key)
        key = canonical_edge(a_key, b_key)
        record = self._edges.get(key)
        if record is None:
            record = RowEdge(edge=key)
            self._edges[key] = record
        record.kinds.add(corridor.kind)
        record.corridor_names.add(corridor.name)
        # Store canonical orientation.
        record.geometries[corridor.name] = (
            geometry if a_key == key[0] else geometry.reversed()
        )
        record.kind_of[corridor.name] = corridor.kind
        record.grade_of[corridor.name] = corridor.grade
        self._graph.add_edge(key[0], key[1])
        # Edge weight: shortest covering geometry.
        self._graph[key[0]][key[1]]["length_km"] = record.length_km

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (city keys as nodes)."""
        return self._graph

    def cities(self) -> List[str]:
        return sorted(self._graph.nodes)

    def edges(self) -> List[RowEdge]:
        return [self._edges[k] for k in sorted(self._edges)]

    def edge(self, a_key: str, b_key: str) -> RowEdge:
        return self._edges[canonical_edge(a_key, b_key)]

    def has_edge(self, a_key: str, b_key: str) -> bool:
        return canonical_edge(a_key, b_key) in self._edges

    def edges_of_kind(self, kind: str) -> List[RowEdge]:
        return [e for e in self.edges() if kind in e.kinds]

    def neighbors(self, city_key: str) -> List[str]:
        return sorted(self._graph.neighbors(city_key))

    def __contains__(self, city_key: str) -> bool:
        return city_key in self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def los_km(self, a_key: str, b_key: str) -> float:
        """Line-of-sight (great circle) distance between two cities."""
        a = city_by_name(a_key).location
        b = city_by_name(b_key).location
        return haversine_km(a, b)

    def _subgraph_for_kinds(self, kinds: Optional[FrozenSet[str]]) -> nx.Graph:
        if kinds is None:
            return self._graph
        sub = nx.Graph()
        for record in self._edges.values():
            usable = record.kinds & kinds
            if not usable:
                continue
            # Weight by the shortest geometry among the allowed kinds.
            length = min(
                record.geometries[name].length_km
                for name in record.corridor_names
                if record.kind_of[name] in usable
            )
            sub.add_edge(record.edge[0], record.edge[1], length_km=length)
        return sub

    def row_shortest_path(
        self,
        a_key: str,
        b_key: str,
        kinds: Optional[Iterable[str]] = None,
    ) -> Tuple[List[str], float]:
        """Shortest right-of-way path between two cities.

        Returns ``(city_key_path, length_km)``.  Raises
        ``networkx.NetworkXNoPath`` when the cities are not connected over
        the allowed kinds, ``networkx.NodeNotFound`` when either city is
        not on any allowed corridor.
        """
        kind_set = frozenset(kinds) if kinds is not None else None
        graph = self._subgraph_for_kinds(kind_set)
        path = nx.shortest_path(graph, a_key, b_key, weight="length_km")
        length = nx.path_weight(graph, path, weight="length_km")
        return path, length

    def path_geometry(self, path: List[str]) -> Polyline:
        """Concatenated geometry along a city-key *path*."""
        if len(path) < 2:
            raise ValueError("path needs at least two cities")
        line: Optional[Polyline] = None
        for a_key, b_key in zip(path, path[1:]):
            record = self.edge(a_key, b_key)
            leg = record.geometry_oriented(a_key, b_key)
            line = leg if line is None else line.concat(leg)
        return line

    def corridor_index(self, cell_deg: float = 0.5) -> CorridorIndex:
        """Spatial index of all corridor geometry by infrastructure kind."""
        index = CorridorIndex(cell_deg=cell_deg)
        for record in self.edges():
            for name in sorted(record.corridor_names):
                index.add(record.geometries[name], record.kind_of[name])
        return index

    def total_km(self, kind: Optional[str] = None) -> float:
        """Total corridor mileage (length of each covering geometry)."""
        total = 0.0
        for record in self.edges():
            for name in sorted(record.corridor_names):
                if kind is None or record.kind_of[name] == kind:
                    total += record.geometries[name].length_km
        return total
