"""Rights-of-way: jurisdiction, identity, and the sharing registry.

The paper leans on state-specific ROW law ("laws governing rights of way
are established on a state-by-state basis", §2.2) to drive systematic
public-records searches, and infers conduit sharing when multiple
providers' links align along the same ROW.  This module gives each
corridor leg a stable ROW identity with state jurisdiction, and tracks
which providers occupy it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.data.cities import city_by_name
from repro.geo.polyline import Polyline
from repro.transport.network import EdgeKey, TransportationNetwork, canonical_edge


@dataclass(frozen=True)
class RightOfWay:
    """One right-of-way: a corridor leg with legal jurisdiction.

    ``row_id`` is stable across runs: ``"{kind}:{corridor}:{a}--{b}"``.
    """

    row_id: str
    edge: EdgeKey
    kind: str
    corridor_name: str
    states: FrozenSet[str]

    @property
    def description(self) -> str:
        a, b = self.edge
        return f"{self.kind} ROW along {self.corridor_name} between {a} and {b}"


def _row_id(kind: str, corridor_name: str, edge: EdgeKey) -> str:
    return f"{kind}:{corridor_name}:{edge[0]}--{edge[1]}"


class RowRegistry:
    """All rights-of-way of a transportation network plus occupancy.

    Occupancy (which providers have pulled fiber through which ROW) is the
    ground truth that public-records search later reveals pieces of.
    """

    def __init__(self, network: TransportationNetwork):
        self._network = network
        self._rows: Dict[str, RightOfWay] = {}
        self._by_edge: Dict[EdgeKey, List[str]] = {}
        self._occupants: Dict[str, Set[str]] = {}
        for record in network.edges():
            for name in sorted(record.corridor_names):
                kind = record.kind_of[name]
                row_id = _row_id(kind, name, record.edge)
                states = frozenset(
                    city_by_name(key).state for key in record.edge
                )
                row = RightOfWay(
                    row_id=row_id,
                    edge=record.edge,
                    kind=kind,
                    corridor_name=name,
                    states=states,
                )
                self._rows[row_id] = row
                self._by_edge.setdefault(record.edge, []).append(row_id)
                self._occupants[row_id] = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def row(self, row_id: str) -> RightOfWay:
        return self._rows[row_id]

    def rows(self) -> List[RightOfWay]:
        return [self._rows[k] for k in sorted(self._rows)]

    def rows_for_edge(self, a_key: str, b_key: str) -> List[RightOfWay]:
        """Candidate ROWs between two adjacent cities, roads first.

        "The number of possible rights-of-way between the endpoints of a
        fiber link are limited" (§2.4) — this is that limited candidate
        set, ordered road < rail < pipeline to mirror the paper's finding
        that conduits most often follow roadways.
        """
        key = canonical_edge(a_key, b_key)
        order = {"road": 0, "rail": 1, "pipeline": 2}
        ids = self._by_edge.get(key, [])
        return sorted(
            (self._rows[i] for i in ids),
            key=lambda r: (order.get(r.kind, 99), r.row_id),
        )

    def geometry(self, row_id: str) -> Polyline:
        """Canonical-orientation geometry of a ROW."""
        row = self._rows[row_id]
        record = self._network.edge(*row.edge)
        return record.geometries[row.corridor_name]

    def rows_in_state(self, state: str) -> List[RightOfWay]:
        return [r for r in self.rows() if state in r.states]

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def occupy(self, row_id: str, provider: str) -> None:
        """Record that *provider* has fiber in *row_id*."""
        if row_id not in self._rows:
            raise KeyError(row_id)
        self._occupants[row_id].add(provider)

    def occupants(self, row_id: str) -> FrozenSet[str]:
        return frozenset(self._occupants[row_id])

    def shared_rows(self, min_occupants: int = 2) -> List[RightOfWay]:
        """ROWs with at least *min_occupants* providers."""
        return [
            self._rows[row_id]
            for row_id in sorted(self._rows)
            if len(self._occupants[row_id]) >= min_occupants
        ]

    def occupancy_counts(self) -> Dict[str, int]:
        """Map of row_id to number of occupying providers."""
        return {row_id: len(occ) for row_id, occ in self._occupants.items()}
