"""Shared-risk analysis (§4): the risk matrix and its metrics.

* :mod:`repro.risk.matrix` — the ISP × conduit risk matrix of §4.1.
* :mod:`repro.risk.metrics` — connectivity-only metrics (§4.2):
  sharing counts, ISP ranking, most-shared conduits.
* :mod:`repro.risk.hamming` — risk-profile similarity via Hamming
  distance (Figure 8).
* :mod:`repro.risk.traffic` — connectivity + traffic metrics (§4.3) on
  top of a traceroute overlay.
"""

from repro.risk.hamming import hamming_distance_matrix, risk_profile_similarity
from repro.risk.matrix import RiskMatrix
from repro.risk.metrics import (
    IspRankRow,
    conduits_shared_by_at_least,
    isp_ranking,
    most_shared_conduits,
    sharing_cdf,
    sharing_fractions,
)
from repro.risk.traffic import TrafficRiskReport, traffic_risk_report

__all__ = [
    "RiskMatrix",
    "conduits_shared_by_at_least",
    "sharing_fractions",
    "sharing_cdf",
    "isp_ranking",
    "IspRankRow",
    "most_shared_conduits",
    "hamming_distance_matrix",
    "risk_profile_similarity",
    "TrafficRiskReport",
    "traffic_risk_report",
]
