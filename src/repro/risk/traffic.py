"""Connectivity + traffic risk (§4.3).

Combines the risk matrix with a traceroute overlay: route popularity is
the proxy for traffic volume (following [99]), so conduits that are both
heavily shared and heavily probed are the true high-risk components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.fibermap.elements import FiberMap
from repro.risk.matrix import RiskMatrix
from repro.risk.metrics import sharing_cdf
from repro.traceroute.columns import TraceColumns
from repro.traceroute.geolocate import GeolocationDatabase
from repro.traceroute.overlay import (
    EAST_TO_WEST,
    WEST_TO_EAST,
    TrafficOverlay,
)
from repro.traceroute.topology import InternetTopology


@dataclass(frozen=True)
class TrafficRiskReport:
    """Everything §4.3 reports, in one bundle."""

    #: Tables 2 and 3: ((city_a, city_b), probe count).
    top_west_to_east: Tuple[Tuple[Tuple[str, str], int], ...]
    top_east_to_west: Tuple[Tuple[Tuple[str, str], int], ...]
    #: Table 4: (isp, conduits carrying its observed traffic).
    isp_conduit_usage: Tuple[Tuple[str, int], ...]
    #: Figure 9: the two CDFs, physical-only and traffic-overlaid.
    cdf_physical: Tuple[Tuple[int, float], ...]
    cdf_with_traffic: Tuple[Tuple[int, float], ...]
    #: Conduits with at least one provider inferred beyond the map.
    conduits_with_new_isps: int
    #: Largest number of additional providers inferred on one conduit.
    max_additional_isps: int


def traffic_risk_report(
    matrix: RiskMatrix,
    overlay: TrafficOverlay,
    top: int = 20,
) -> TrafficRiskReport:
    """Build the full §4.3 report from a matrix and a populated overlay."""
    extra_counts: List[int] = []
    conduits_with_new = 0
    for conduit_id in matrix.conduit_ids:
        extra = overlay.inferred_additional_isps(conduit_id)
        if extra:
            conduits_with_new += 1
            extra_counts.append(len(extra))
    return TrafficRiskReport(
        top_west_to_east=tuple(overlay.top_conduits(WEST_TO_EAST, top)),
        top_east_to_west=tuple(overlay.top_conduits(EAST_TO_WEST, top)),
        isp_conduit_usage=tuple(overlay.isp_conduit_usage()),
        cdf_physical=tuple(sharing_cdf(matrix)),
        cdf_with_traffic=tuple(overlay.sharing_cdf_with_traffic()),
        conduits_with_new_isps=conduits_with_new,
        max_additional_isps=max(extra_counts, default=0),
    )


def traffic_risk_report_from_columns(
    matrix: RiskMatrix,
    columns: TraceColumns,
    fiber_map: FiberMap,
    topology: InternetTopology,
    database: GeolocationDatabase,
    top: int = 20,
    batch_size: int = 8192,
) -> TrafficRiskReport:
    """The §4.3 report straight from a columnar campaign.

    Builds a fresh overlay and streams the campaign through
    :meth:`TrafficOverlay.add_columns` in bounded-memory batches — the
    Tables 2–4 / Figure 9 path for paper-scale campaigns, where a
    materialized record list would dwarf the columns themselves.  The
    resulting report equals :func:`traffic_risk_report` over an overlay
    fed record by record.
    """
    overlay = TrafficOverlay(fiber_map, topology, database)
    overlay.add_columns(columns, batch_size=batch_size)
    return traffic_risk_report(matrix, overlay, top=top)
