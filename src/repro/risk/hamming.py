"""Risk-profile similarity via Hamming distance (§4.2, Figure 8).

"Using the risk matrix we calculate the Hamming distance similarity
metric among ISPs, i.e., by comparing every row in the risk matrix to
every other row ... if two ISPs are physically similar (in terms of
fiber deployments and the level of infrastructure sharing), their risk
profiles are also similar."  Smaller distance = greater shared risk
between the pair.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.risk.matrix import RiskMatrix


def hamming_distance(matrix: RiskMatrix, isp_a: str, isp_b: str) -> int:
    """Hamming distance between two ISPs' risk-matrix rows."""
    return int((matrix.row(isp_a) != matrix.row(isp_b)).sum())


def hamming_distance_matrix(matrix: RiskMatrix) -> np.ndarray:
    """Pairwise Hamming distances (Figure 8 heat map), ISP order preserved."""
    rows = np.stack([matrix.row(isp) for isp in matrix.isps])
    return (rows[:, None, :] != rows[None, :, :]).sum(axis=-1).astype(int)


def risk_profile_similarity(matrix: RiskMatrix) -> List[Tuple[str, float]]:
    """ISPs ranked by mean Hamming distance to every other ISP.

    A *large* mean distance means the ISP's physical profile is unlike
    everyone else's (low mutual shared risk); the paper singles out
    EarthLink and Level 3 as exhibiting "fairly low risk profiles".
    """
    distances = hamming_distance_matrix(matrix)
    n = len(matrix.isps)
    result = []
    for i, isp in enumerate(matrix.isps):
        others = [distances[i, j] for j in range(n) if j != i]
        mean = float(np.mean(others)) if others else 0.0
        result.append((isp, mean))
    result.sort(key=lambda pair: (-pair[1], pair[0]))
    return result


def most_similar_pairs(matrix: RiskMatrix, top: int = 5) -> List[Tuple[str, str, int]]:
    """Provider pairs with the smallest Hamming distance (highest mutual risk)."""
    distances = hamming_distance_matrix(matrix)
    pairs = []
    names = matrix.isps
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            pairs.append((names[i], names[j], int(distances[i, j])))
    pairs.sort(key=lambda p: (p[2], p[0], p[1]))
    return pairs[:top]
