"""The risk matrix of §4.1.

Rows are ISPs and columns are physical conduits; the entry for
(ISP, conduit) is the number of ISPs sharing that conduit when the ISP
is a tenant, and 0 otherwise — exactly the counting scheme the paper
walks through with its Level 3 / Sprint example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.fibermap.elements import FiberMap


class RiskMatrix:
    """ISP × conduit shared-risk matrix.

    Built from a fiber map's tenancy; immutable once constructed.  The
    provider order defaults to the map's sorted provider list so that
    heat maps and rankings are stable across runs.
    """

    def __init__(self, fiber_map: FiberMap, isps: Optional[Sequence[str]] = None):
        self._isps: Tuple[str, ...] = (
            tuple(isps) if isps is not None else tuple(fiber_map.isps())
        )
        self._conduit_ids: Tuple[str, ...] = tuple(sorted(fiber_map.conduits))
        self._isp_index: Dict[str, int] = {
            name: i for i, name in enumerate(self._isps)
        }
        self._conduit_index: Dict[str, int] = {
            cid: j for j, cid in enumerate(self._conduit_ids)
        }
        tenancy = fiber_map.tenancy()
        self._tenants: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(t for t in tenancy[cid] if t in self._isp_index)
            for cid in self._conduit_ids
        )
        # Vectorized scatter: one (row, col) index pair per tenancy
        # entry, assigned in a single fancy-indexed store.  Produces the
        # same bytes as the original per-cell double loop (golden-hash
        # pinned) at a fraction of the cost on paper-scale maps.
        matrix = np.zeros((len(self._isps), len(self._conduit_ids)), dtype=int)
        rows: List[int] = []
        cols: List[int] = []
        counts: List[int] = []
        for j, tenants in enumerate(self._tenants):
            count = len(tenants)
            for isp in tenants:
                rows.append(self._isp_index[isp])
                cols.append(j)
                counts.append(count)
        if rows:
            matrix[rows, cols] = counts
        self._matrix = matrix
        self._matrix.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def isps(self) -> Tuple[str, ...]:
        return self._isps

    @property
    def conduit_ids(self) -> Tuple[str, ...]:
        return self._conduit_ids

    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) integer matrix."""
        return self._matrix

    @property
    def shape(self) -> Tuple[int, int]:
        return self._matrix.shape

    # ------------------------------------------------------------------
    def sharing_count(self, conduit_id: str) -> int:
        """Number of (tracked) ISPs sharing one conduit."""
        return len(self._tenants[self._conduit_index[conduit_id]])

    def sharing_counts(self) -> np.ndarray:
        """Vector of tenant counts per conduit (column order)."""
        return np.array([len(t) for t in self._tenants], dtype=int)

    def tenants_of(self, conduit_id: str) -> FrozenSet[str]:
        return self._tenants[self._conduit_index[conduit_id]]

    def row(self, isp: str) -> np.ndarray:
        """One ISP's row of shared-risk values."""
        return self._matrix[self._isp_index[isp]]

    def presence_row(self, isp: str) -> np.ndarray:
        """Binary occupancy vector for one ISP (1 where it is a tenant)."""
        return (self._matrix[self._isp_index[isp]] > 0).astype(int)

    def conduits_of(self, isp: str) -> List[str]:
        """Conduit ids where *isp* is a tenant."""
        row = self.row(isp)
        return [
            self._conduit_ids[j] for j in np.nonzero(row)[0]
        ]

    def isp_average_risk(self, isp: str) -> float:
        """Average tenant count over the conduits an ISP occupies.

        This is the per-row average behind Figure 7 ("average number of
        ISPs that share conduits in a given ISP's network").
        """
        row = self.row(isp)
        occupied = row[row > 0]
        if occupied.size == 0:
            return 0.0
        return float(occupied.mean())

    def isp_risk_percentiles(self, isp: str, q: Sequence[float]) -> List[float]:
        """Percentiles of the sharing counts over an ISP's conduits."""
        row = self.row(isp)
        occupied = row[row > 0]
        if occupied.size == 0:
            return [0.0 for _ in q]
        return [float(v) for v in np.percentile(occupied, list(q))]
