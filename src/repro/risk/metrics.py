"""Connectivity-only risk metrics (§4.2).

These drive Figure 6 (number of conduits shared by at least k ISPs and
the 89.67% / 63.28% / 53.50% statistics), Figure 7 (ISPs ranked by the
average number of tenants on their conduits, with standard error and
25th/75th percentiles), and the identification of the most heavily
shared conduits that §5.1 optimizes around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.risk.matrix import RiskMatrix


def conduits_shared_by_at_least(
    matrix: RiskMatrix, max_k: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Figure 6 series: ``(k, number of conduits shared by >= k ISPs)``.

    ``k`` runs from 1 to the number of ISPs (or *max_k*).
    """
    counts = matrix.sharing_counts()
    top = max_k if max_k is not None else len(matrix.isps)
    return [(k, int((counts >= k).sum())) for k in range(1, top + 1)]


def sharing_fractions(matrix: RiskMatrix, ks: Tuple[int, ...] = (2, 3, 4)) -> Dict[int, float]:
    """Fraction of conduits shared by at least each k (the §4.2 numbers)."""
    counts = matrix.sharing_counts()
    total = max(1, counts.size)
    return {k: float((counts >= k).sum()) / total for k in ks}


def sharing_cdf(matrix: RiskMatrix) -> List[Tuple[int, float]]:
    """CDF of the number of ISPs sharing a conduit (Figure 9, solid line).

    A conduit-free map yields the vacuous single-point CDF ``[(0, 1.0)]``
    rather than crashing on ``counts.max()`` of an empty array.
    """
    counts = np.sort(matrix.sharing_counts())
    if counts.size == 0:
        return [(0, 1.0)]
    total = counts.size
    return [
        (int(k), float((counts <= k).sum()) / total)
        for k in range(0, int(counts.max()) + 1)
    ]


@dataclass(frozen=True)
class IspRankRow:
    """One bar of Figure 7."""

    isp: str
    average: float
    std_error: float
    p25: float
    p75: float
    num_conduits: int


def isp_ranking(matrix: RiskMatrix) -> List[IspRankRow]:
    """ISPs ranked by increasing average shared risk (Figure 7)."""
    rows = []
    for isp in matrix.isps:
        occupied = matrix.row(isp)
        occupied = occupied[occupied > 0]
        if occupied.size == 0:
            rows.append(IspRankRow(isp, 0.0, 0.0, 0.0, 0.0, 0))
            continue
        average = float(occupied.mean())
        std_error = float(occupied.std(ddof=1) / math.sqrt(occupied.size)) if occupied.size > 1 else 0.0
        p25, p75 = (float(v) for v in np.percentile(occupied, [25, 75]))
        rows.append(
            IspRankRow(
                isp=isp,
                average=average,
                std_error=std_error,
                p25=p25,
                p75=p75,
                num_conduits=int(occupied.size),
            )
        )
    rows.sort(key=lambda r: (r.average, r.isp))
    return rows


def most_shared_conduits(matrix: RiskMatrix, top: int = 12) -> List[Tuple[str, int]]:
    """The *top* most heavily shared conduits, ``(conduit_id, tenants)``.

    §5.1 found "12 out of 542 conduits that are shared by more than 17
    out of the 20 ISPs" and optimized around exactly this set.
    """
    counts = matrix.sharing_counts()
    order = np.argsort(-counts, kind="stable")
    return [
        (matrix.conduit_ids[j], int(counts[j])) for j in order[:top]
    ]


def conduits_with_at_least(matrix: RiskMatrix, k: int) -> List[str]:
    """Ids of conduits shared by at least *k* ISPs."""
    counts = matrix.sharing_counts()
    return [
        matrix.conduit_ids[j] for j in np.nonzero(counts >= k)[0]
    ]
