"""Figure 1: the constructed US long-haul map and its prominent features.

Paper: 273 nodes, 2411 links, 542 conduits; dense northeast/coastal
deployments; hubs at Denver and Salt Lake City; infrastructure absence
in the upper plains and four-corners regions; parallel deployments;
spurs along northern routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.connectivity import ConnectivityReport, connectivity_report
from repro.analysis.report import format_table
from repro.scenario import Scenario

PAPER_STATS = (273, 2411, 542)


@dataclass(frozen=True)
class Fig1Result:
    report: ConnectivityReport


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario) -> Fig1Result:
    return Fig1Result(report=connectivity_report(scenario.constructed_map))


def format_result(result: Fig1Result) -> str:
    report = result.report
    lines = [
        "Figure 1: constructed US long-haul fiber map",
        f"measured: {report.stats}   (paper: {PAPER_STATS[0]} nodes, "
        f"{PAPER_STATS[1]} links, {PAPER_STATS[2]} conduits)",
        f"connected: {report.connected}, conduit-graph diameter: "
        f"{report.diameter_hops} hops",
        f"parallel-deployment edges: {len(report.parallel_edges)}, "
        f"spur endpoints: {len(report.spurs)}",
        "",
        format_table(
            ("hub city", "conduit degree"),
            report.top_hubs,
            title="Long-haul hubs (conduit degree)",
        ),
        "",
        format_table(
            ("region", "conduit-km"),
            sorted(
                ((r, round(v)) for r, v in report.region_density.items()),
                key=lambda kv: -kv[1],
            ),
            title="Deployment density by region",
        ),
    ]
    return "\n".join(lines)
