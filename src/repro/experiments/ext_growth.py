"""Extension experiment: the sharing trajectory under growth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.fibermap.evolution import GrowthResult, simulate_growth
from repro.scenario import Scenario

DEFAULT_YEARS = 5


@dataclass(frozen=True)
class ExtGrowthResult:
    result: GrowthResult


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("ground_truth",)


def run(scenario: Scenario, years: int = DEFAULT_YEARS) -> ExtGrowthResult:
    return ExtGrowthResult(
        result=simulate_growth(scenario.ground_truth, years=years)
    )


def format_result(result: ExtGrowthResult) -> str:
    growth = result.result
    table = format_table(
        ("year", "links", "conduits", "mean tenants", ">=4 shared",
         "new links", "new conduits"),
        [
            (
                s.year,
                s.stats.num_links,
                s.stats.num_conduits,
                f"{s.mean_tenancy:.2f}",
                f"{s.shared_ge4_fraction:.1%}",
                s.new_links,
                s.new_conduits,
            )
            for s in growth.snapshots
        ],
        title="Extension: five simulated years of growth",
    )
    return (
        f"{table}\n"
        f"growth absorbed by existing conduits: "
        f"{growth.reuse_fraction:.0%} "
        "(new demand piles into the same tubes - shared risk worsens "
        "without new trenches)"
    )
