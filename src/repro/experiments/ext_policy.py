"""Extension experiment: the §6.2 Title II open-access trade-off curve."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.policy.titleii import TradeoffPoint, open_access_tradeoff
from repro.scenario import Scenario

DEFAULT_MAX_ENTRANTS = 8


@dataclass(frozen=True)
class ExtPolicyResult:
    points: Tuple[TradeoffPoint, ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario,
        max_entrants: int = DEFAULT_MAX_ENTRANTS) -> ExtPolicyResult:
    return ExtPolicyResult(
        points=tuple(
            open_access_tradeoff(
                scenario.constructed_map, max_entrants=max_entrants
            )
        )
    )


def format_result(result: ExtPolicyResult) -> str:
    return format_table(
        ("entrants", "capital saved", "mean tenants/conduit",
         "sharing increase"),
        [
            (
                p.num_entrants,
                f"{p.capital_savings_fraction:.0%}",
                f"{p.mean_tenants_after:.2f}",
                f"+{p.sharing_increase:.2f}",
            )
            for p in result.points
        ],
        title="Extension: Title II open access - savings vs shared risk",
    )
