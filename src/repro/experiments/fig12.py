"""Figure 12: propagation delay — existing paths vs ROW vs line of sight.

Paper: average delays of existing links often substantially exceed the
best link; ~65% of best paths are also the best ROW paths; the LOS-ROW
gap is under ~100 us for half the pairs but above 500 us for a quarter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_cdf
from repro.mitigation.latency import LatencyStudy, latency_study
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig12Result:
    study: LatencyStudy
    fraction_best_is_row_best: float
    gap_p50_ms: float
    gap_p75_ms: float
    mean_avg_over_best: float


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "ground_truth", "substrate")


def run(scenario: Scenario, max_pairs: int = 400) -> Fig12Result:
    study = latency_study(
        scenario.constructed_map,
        scenario.network,
        max_pairs=max_pairs,
        substrate=scenario.substrate,
        row_kinds=scenario.family.row_kinds[0],
    )
    p50, p75 = study.row_los_gap_percentiles((50.0, 75.0))
    ratios = [p.avg_ms / p.best_ms for p in study.pairs if p.best_ms > 0]
    return Fig12Result(
        study=study,
        fraction_best_is_row_best=study.fraction_best_is_row_best,
        gap_p50_ms=p50,
        gap_p75_ms=p75,
        mean_avg_over_best=sum(ratios) / len(ratios) if ratios else 0.0,
    )


def format_result(result: Fig12Result) -> str:
    study = result.study
    parts = ["Figure 12: one-way propagation delay CDFs (ms)"]
    for attr, label in (
        ("best_ms", "Best existing paths"),
        ("avg_ms", "Avg. of existing paths"),
        ("row_ms", "Best ROW paths"),
        ("los_ms", "LOS lower bound"),
    ):
        series = [(round(x, 3), f) for x, f in study.cdf(attr)]
        parts.append("")
        parts.append(format_cdf(series, title=label))
    parts.append("")
    parts.append(
        f"pairs studied: {len(study.pairs)}; "
        f"best == best-ROW: {result.fraction_best_is_row_best:.0%} (paper: ~65%)"
    )
    parts.append(
        f"ROW-LOS gap: p50={result.gap_p50_ms * 1000:.0f} us "
        f"(paper: <100 us), p75={result.gap_p75_ms * 1000:.0f} us "
        "(paper: >500 us)"
    )
    parts.append(
        f"avg-path / best-path delay ratio: {result.mean_avg_over_best:.2f}"
    )
    return "\n".join(parts)
