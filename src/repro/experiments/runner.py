"""Experiment registry: every table and figure, runnable by id.

Running an experiment yields a typed :class:`ExperimentResult` — the
raw ``data`` object, the formatted ``text`` artifact, and a
``to_json()`` machine-readable view — replacing the older two-callable
``(run, format_result)`` contract at the call site.  For compatibility
an ``ExperimentResult`` still unpacks like the legacy
``(result, text)`` tuple; new code should use the named fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.engine import StageGraphError
from repro.obs.serialize import to_jsonable
from repro.obs.tracer import get_tracer

from repro.experiments import (  # noqa: F401 (re-export convenience)
    ext_annotated,
    ext_capacity,
    ext_exchange,
    ext_growth,
    ext_nsfnet,
    ext_opacity,
    ext_partition,
    ext_policy,
    ext_protection,
    ext_resilience,
    fig1,
    fig2_3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2_3,
    table4,
    table5,
)
from repro.scenario import STAGE_OF_ATTRIBUTE, STAGES, Scenario, us2015

_STAGE_NAMES: FrozenSet[str] = frozenset(s.name for s in STAGES)


class UndeclaredStageAccessError(StageGraphError):
    """An experiment touched a scenario stage it did not declare."""


class UnsupportedExperimentError(ValueError):
    """An experiment was requested on a family that excludes it.

    Carries the experiment id, the family name, and the family's
    supported ids, so frontends can render a structured error.
    """

    def __init__(self, experiment_id: str, family: str, supported):
        self.experiment_id = experiment_id
        self.family = family
        self.supported = tuple(supported)
        super().__init__(
            f"experiment {experiment_id!r} is not supported by map "
            f"family {family!r}; supported: {', '.join(self.supported)}"
        )


@dataclass(frozen=True)
class Experiment:
    """One registered experiment (a paper table/figure or an extension)."""

    experiment_id: str
    title: str
    run: Callable[[Scenario], Any]
    format_result: Callable[[Any], str]
    #: False for the paper's own artifacts, True for extension analyses.
    extension: bool = False
    #: The scenario stages this experiment reads.  The runner
    #: materializes exactly this subgraph before running, and the
    #: scenario view handed to ``run`` refuses access to any other
    #: stage — so the declaration can never drift from the code.
    requires: Tuple[str, ...] = ()


class RestrictedScenario:
    """A scenario view limited to an experiment's declared stages.

    Forwards every attribute to the underlying :class:`Scenario`,
    except the stage-backed ones (``scenario.campaign``,
    ``scenario.risk_matrix``, ...): those raise
    :class:`UndeclaredStageAccessError` unless the backing stage is in
    the experiment's ``requires``.  Config views (``seed``,
    ``campaign_traces``, ...) pass through untouched.
    """

    def __init__(
        self, scenario: Scenario, label: str, allowed: FrozenSet[str]
    ):
        self._scenario = scenario
        self._label = label
        self._allowed = allowed

    def __getattr__(self, name: str) -> Any:
        stage = STAGE_OF_ATTRIBUTE.get(name)
        if stage is not None and stage not in self._allowed:
            raise UndeclaredStageAccessError(
                f"{self._label} read scenario.{name} (stage {stage!r}) "
                f"without declaring it; declared requires: "
                f"{sorted(self._allowed) or '()'}"
            )
        return getattr(self._scenario, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RestrictedScenario({self._label}, "
            f"allowed={sorted(self._allowed)})"
        )


def _register() -> Dict[str, Experiment]:
    modules = {
        "table1": (table1, "Table 1: step-1 provider map sizes"),
        "fig1": (fig1, "Figure 1: the constructed long-haul map"),
        "fig2_3": (fig2_3, "Figures 2-3: road and rail layers"),
        "fig4": (fig4, "Figure 4: transport co-location histogram"),
        "fig5": (fig5, "Figure 5: pipeline rights-of-way"),
        "fig6": (fig6, "Figure 6: conduits shared by >= k ISPs"),
        "fig7": (fig7, "Figure 7: ISP ranking by average sharing"),
        "fig8": (fig8, "Figure 8: Hamming risk-profile similarity"),
        "table2_3": (table2_3, "Tables 2-3: most-probed conduits"),
        "fig9": (fig9, "Figure 9: sharing CDF with traffic overlay"),
        "table4": (table4, "Table 4: ISPs by conduits carrying traffic"),
        "fig10": (fig10, "Figure 10: path inflation / shared-risk reduction"),
        "table5": (table5, "Table 5: peering suggestions"),
        "fig11": (fig11, "Figure 11: improvement vs k added conduits"),
        "fig12": (fig12, "Figure 12: propagation delay CDFs"),
    }
    extensions = {
        "ext_resilience": (
            ext_resilience, "Extension: targeted attack vs random cuts"),
        "ext_partition": (
            ext_partition, "Extension: cuts-to-partition + metro coverage"),
        "ext_policy": (
            ext_policy, "Extension: Title II open-access trade-off"),
        "ext_exchange": (
            ext_exchange, "Extension: the conduit exchange model"),
        "ext_protection": (
            ext_protection, "Extension: SRLG-diverse backup availability"),
        "ext_annotated": (
            ext_annotated, "Extension: the annotated map"),
        "ext_nsfnet": (
            ext_nsfnet, "Extension: NSFNET-1995 invariance comparison"),
        "ext_opacity": (
            ext_opacity, "Extension: logical vs physical path diversity"),
        "ext_capacity": (
            ext_capacity, "Extension: capacity concentration in shared conduits"),
        "ext_growth": (
            ext_growth, "Extension: sharing trajectory under growth"),
    }
    registry = {}
    for extension, table in ((False, modules), (True, extensions)):
        for experiment_id, (module, title) in table.items():
            requires = tuple(module.requires)
            unknown = sorted(set(requires) - _STAGE_NAMES)
            if unknown:
                raise StageGraphError(
                    f"experiment {experiment_id!r} requires unknown "
                    f"stage(s): {unknown}"
                )
            registry[experiment_id] = Experiment(
                experiment_id=experiment_id,
                title=title,
                run=module.run,
                format_result=module.format_result,
                extension=extension,
                requires=requires,
            )
    return registry


#: All experiments keyed by id.
EXPERIMENTS: Dict[str, Experiment] = _register()


def _check_family_declarations() -> None:
    """Fail at import when a registered family declares experiment ids
    that do not exist — the declaration can never drift silently."""
    from repro.families import family_names, get_family

    for name in family_names():
        family = get_family(name)
        if family.experiments is None:
            continue
        unknown = sorted(family.experiments - set(EXPERIMENTS))
        if unknown:
            raise StageGraphError(
                f"map family {name!r} declares unknown experiment(s): "
                f"{unknown}"
            )


_check_family_declarations()


@dataclass(frozen=True)
class ExperimentResult:
    """The typed outcome of one experiment run.

    ``data`` is the experiment's native result object; ``text`` is the
    formatted human-readable artifact; :meth:`to_json` renders a fully
    JSON-serializable document (used by the CLI's ``--json`` flag).
    """

    experiment_id: str
    title: str
    data: Any
    text: str
    extension: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "extension": self.extension,
            "data": to_jsonable(self.data),
            "text": self.text,
        }

    def __iter__(self) -> Iterator[Any]:
        """Deprecated: unpack as the legacy ``(result, text)`` pair."""
        warnings.warn(
            "unpacking ExperimentResult as a (data, text) tuple is "
            "deprecated; use the named .data and .text fields",
            DeprecationWarning,
            stacklevel=2,
        )
        yield self.data
        yield self.text


def run_experiment(
    experiment_id: str, scenario: Optional[Scenario] = None
) -> ExperimentResult:
    """Run one experiment; returns an :class:`ExperimentResult`.

    The experiment's declared ``requires`` stages are materialized
    first (the minimal subgraph — nothing else builds), and the
    experiment runs against a :class:`RestrictedScenario` that raises
    on any undeclared stage access.  Each run is one
    ``experiment.<id>`` tracing span, so a traced ``run all`` manifest
    attributes wall time per experiment.
    """
    experiment = EXPERIMENTS[experiment_id]
    scenario = scenario if scenario is not None else us2015()
    family = scenario.family
    if not family.supports(experiment_id):
        raise UnsupportedExperimentError(
            experiment_id,
            family.name,
            family.supported_experiments(EXPERIMENTS),
        )
    tracer = get_tracer()
    with tracer.span(f"experiment.{experiment_id}"):
        scenario.graph.materialize_many(experiment.requires)
        view = RestrictedScenario(
            scenario,
            f"experiment {experiment_id!r}",
            frozenset(experiment.requires),
        )
        data = experiment.run(view)
        text = experiment.format_result(data)
        tracer.annotate(extension=experiment.extension)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=experiment.title,
        data=data,
        text=text,
        extension=experiment.extension,
    )


def run_all(
    scenario: Optional[Scenario] = None,
    ids: Optional[Iterable[str]] = None,
    stage_workers: int = 0,
) -> Iterator[ExperimentResult]:
    """Run experiments in id order, streaming each result.

    Runs every experiment the scenario's family supports by default, or
    just ``ids`` when given (unknown ids raise ``KeyError`` before
    anything runs; ids outside the family's declared subset raise
    :class:`UnsupportedExperimentError`).
    Yields :class:`ExperimentResult` as each experiment completes, so
    callers can render incrementally instead of waiting for the full
    sweep.  (Previously returned a fully materialized list of
    ``(id, text)`` pairs; iterate and use the named fields instead.)

    ``stage_workers > 1`` prefetches the union of the selected
    experiments' required stages over a thread pool before the first
    experiment runs, fanning independent stage builds (e.g. the
    constructed map and the traceroute campaign) out concurrently.
    """
    scenario = scenario if scenario is not None else us2015()
    family = scenario.family
    if ids is None:
        selected = family.supported_experiments(EXPERIMENTS)
    else:
        selected = sorted(ids)
    for experiment_id in selected:
        if experiment_id not in EXPERIMENTS:
            raise KeyError(experiment_id)
        if not family.supports(experiment_id):
            raise UnsupportedExperimentError(
                experiment_id,
                family.name,
                family.supported_experiments(EXPERIMENTS),
            )
    if stage_workers > 1:
        needed = sorted(
            {s for i in selected for s in EXPERIMENTS[i].requires}
        )
        scenario.graph.materialize_many(needed, max_workers=stage_workers)
    for experiment_id in selected:
        yield run_experiment(experiment_id, scenario)
