"""Figure 6: number of conduits shared by at least k providers.

Paper: 542 conduits total; 89.67% shared by >= 2, 63.28% by >= 3,
53.50% by >= 4; 12 conduits shared by more than 17 of the 20 providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.risk.metrics import conduits_shared_by_at_least, sharing_fractions
from repro.scenario import Scenario

PAPER_FRACTIONS = {2: 0.8967, 3: 0.6328, 4: 0.5350}


@dataclass(frozen=True)
class Fig6Result:
    series: Tuple[Tuple[int, int], ...]
    fractions: Dict[int, float]
    total_conduits: int
    top12_min_tenants: int


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("risk_matrix",)


def run(scenario: Scenario) -> Fig6Result:
    matrix = scenario.risk_matrix
    series = tuple(conduits_shared_by_at_least(matrix))
    counts = sorted(matrix.sharing_counts(), reverse=True)
    return Fig6Result(
        series=series,
        fractions=sharing_fractions(matrix),
        total_conduits=len(matrix.conduit_ids),
        top12_min_tenants=counts[11] if len(counts) >= 12 else 0,
    )


def format_result(result: Fig6Result) -> str:
    table = format_table(
        ("k", "conduits shared by >= k"),
        result.series,
        title="Figure 6: conduit sharing",
    )
    lines = [table, ""]
    for k, fraction in sorted(result.fractions.items()):
        lines.append(
            f">= {k} ISPs: {fraction:.2%} (paper: {PAPER_FRACTIONS[k]:.2%})"
        )
    lines.append(
        f"12 most-shared conduits all have >= {result.top12_min_tenants} "
        "tenants (paper: >17)"
    )
    return "\n".join(lines)
