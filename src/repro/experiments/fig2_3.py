"""Figures 2 and 3: the roadway and railway infrastructure layers.

The paper plots the NationalAtlas layers; the measurable equivalents of
our substitute corridor layers are their extent: corridor counts, edge
counts, and total mileage per infrastructure kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.data.corridors import CORRIDORS, secondary_road_corridors
from repro.scenario import Scenario


@dataclass(frozen=True)
class LayerSummary:
    kind: str
    corridors: int
    edges: int
    total_km: float


@dataclass(frozen=True)
class Fig23Result:
    layers: Tuple[LayerSummary, ...]
    secondary_corridors: int


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("ground_truth",)


def run(scenario: Scenario) -> Fig23Result:
    network = scenario.network
    layers = []
    for kind in ("road", "rail", "pipeline"):
        edges = network.edges_of_kind(kind)
        primary = [c for c in CORRIDORS if c.kind == kind]
        layers.append(
            LayerSummary(
                kind=kind,
                corridors=len(primary),
                edges=len(edges),
                total_km=network.total_km(kind),
            )
        )
    return Fig23Result(
        layers=tuple(layers),
        secondary_corridors=len(secondary_road_corridors()),
    )


def format_result(result: Fig23Result) -> str:
    table = format_table(
        ("kind", "named corridors", "graph edges", "total km"),
        [
            (l.kind, l.corridors, l.edges, round(l.total_km))
            for l in result.layers
        ],
        title="Figures 2-3: transportation infrastructure layers",
    )
    return (
        f"{table}\nsecondary (US-route grid) corridors: "
        f"{result.secondary_corridors}"
    )
