"""Extension experiment: the §8 traffic/delay-annotated map."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.fibermap.annotate import AnnotatedMap, annotate_map
from repro.scenario import Scenario


@dataclass(frozen=True)
class ExtAnnotatedResult:
    annotated: AnnotatedMap


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "overlay")


def run(scenario: Scenario) -> ExtAnnotatedResult:
    return ExtAnnotatedResult(
        annotated=annotate_map(scenario.constructed_map, scenario.overlay)
    )


def format_result(result: ExtAnnotatedResult) -> str:
    annotated = result.annotated
    classes = Counter(a.risk_class for a in annotated.annotations)
    class_table = format_table(
        ("risk class", "conduits"),
        [
            (label, classes.get(label, 0))
            for label in ("private", "shared", "heavily-shared", "critical")
        ],
        title="Extension: annotated map - conduits per risk class",
    )
    busiest = format_table(
        ("conduit", "tenants", "class", "probes", "delay ms"),
        [
            (
                f"{a.endpoints[0]} - {a.endpoints[1]}",
                a.tenants,
                a.risk_class,
                a.probes_total,
                f"{a.delay_ms:.2f}",
            )
            for a in annotated.busiest(top=10)
        ],
        title="busiest annotated conduits",
    )
    return f"{class_table}\n\n{busiest}"
