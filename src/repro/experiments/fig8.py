"""Figure 8: Hamming-distance similarity of provider risk profiles.

Paper: EarthLink and Level 3 exhibit fairly low risk profiles, followed
by Cox, Comcast and Time Warner Cable (rich fiber connectivity);
TeliaSonera, Deutsche Telekom, NTT and XO use highly shared conduits and
have mutually similar profiles; Suddenlink looks low-risk by average
sharing but risky by Hamming distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.risk.hamming import (
    hamming_distance_matrix,
    most_similar_pairs,
    risk_profile_similarity,
)
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig8Result:
    isps: Tuple[str, ...]
    distances: np.ndarray
    distinct_profiles: Tuple[Tuple[str, float], ...]
    similar_pairs: Tuple[Tuple[str, str, int], ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("risk_matrix",)


def run(scenario: Scenario) -> Fig8Result:
    matrix = scenario.risk_matrix
    return Fig8Result(
        isps=matrix.isps,
        distances=hamming_distance_matrix(matrix),
        distinct_profiles=tuple(risk_profile_similarity(matrix)),
        similar_pairs=tuple(most_similar_pairs(matrix, top=8)),
    )


def format_result(result: Fig8Result) -> str:
    lines = ["Figure 8: Hamming-distance risk-profile heat map"]
    lines.append(
        format_table(
            ("ISP", "mean Hamming distance"),
            [(isp, f"{d:.1f}") for isp, d in result.distinct_profiles],
            title="Most distinct (lowest mutual risk) first",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ("ISP A", "ISP B", "Hamming distance"),
            result.similar_pairs,
            title="Most similar provider pairs (highest mutual risk)",
        )
    )
    return "\n".join(lines)
