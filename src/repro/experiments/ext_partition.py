"""Extension experiment: cuts-to-partition and metro coverage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_table
from repro.fibermap.metro import MetroCoverageReport, metro_coverage
from repro.resilience.partition import (
    PartitionReport,
    isp_partition_cuts,
    partition_report,
)
from repro.scenario import Scenario

STUDIED_ISPS = ("Level 3", "EarthLink", "AT&T", "Sprint", "Verizon", "XO",
                "Suddenlink", "Integra")


@dataclass(frozen=True)
class ExtPartitionResult:
    report: PartitionReport
    per_isp: Tuple[Tuple[str, int], ...]
    metro: MetroCoverageReport


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario) -> ExtPartitionResult:
    fiber_map = scenario.constructed_map
    return ExtPartitionResult(
        report=partition_report(fiber_map),
        per_isp=tuple(
            (isp, isp_partition_cuts(fiber_map, isp)) for isp in STUDIED_ISPS
        ),
        metro=metro_coverage(fiber_map, top=20),
    )


def format_result(result: ExtPartitionResult) -> str:
    report = result.report
    lines: List[str] = [
        "Extension: partitioning the US long-haul infrastructure",
        f"minimum west-east ROW cuts: {report.min_cuts}",
        "cut set: " + "; ".join(f"{a} - {b}" for a, b in report.cut_edges),
        "with undersea bypass: "
        + (
            str(report.min_cuts_with_undersea)
            if report.partitionable_with_undersea
            else "partitioning impossible (footnote 8 confirmed)"
        ),
        "",
        format_table(
            ("ISP", "cuts to split its own network"),
            [
                (isp, cuts if cuts else "(single-coast network)")
                for isp, cuts in result.per_isp
            ],
            title="per-provider west-east cuts",
        ),
        "",
        f"metro layer (top 20 hubs): {result.metro.metro_sites} colo sites, "
        f"{result.metro.metro_km:.0f} km of ring fiber "
        f"(+{result.metro.coverage_gain:.1%} over long-haul mileage)",
    ]
    return "\n".join(lines)
