"""Tables 2 and 3: most-probed conduits by direction.

Paper: top west-origin east-bound conduits include Trenton-Edison,
Kalamazoo-Battle Creek, Dallas-Fort Worth; east-origin west-bound
include West Palm Beach-Boca Raton and waypoint cities like Casper, WY
and Billings, MT; Dallas and Salt Lake City appear heavily in both
directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.scenario import Scenario

ConduitRow = Tuple[Tuple[str, str], int]


@dataclass(frozen=True)
class Table23Result:
    west_to_east: Tuple[ConduitRow, ...]
    east_to_west: Tuple[ConduitRow, ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("overlay",)


def run(scenario: Scenario, top: int = 20) -> Table23Result:
    overlay = scenario.overlay
    return Table23Result(
        west_to_east=tuple(overlay.top_conduits("west_to_east", top)),
        east_to_west=tuple(overlay.top_conduits("east_to_west", top)),
    )


def _rows(series: Tuple[ConduitRow, ...]):
    return [(a, b, count) for (a, b), count in series]


def format_result(result: Table23Result) -> str:
    west = format_table(
        ("Location", "Location", "# Probes"),
        _rows(result.west_to_east),
        title="Table 2: top conduits, west-origin east-bound",
    )
    east = format_table(
        ("Location", "Location", "# Probes"),
        _rows(result.east_to_west),
        title="Table 3: top conduits, east-origin west-bound",
    )
    return f"{west}\n\n{east}"
