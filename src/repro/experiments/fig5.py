"""Figure 5: conduits not co-located with road/rail, explained by pipelines.

Paper examples: the Level 3 right-of-way outside Laurel, MS; Anaheim,
CA - Las Vegas, NV along a refined-products pipeline; Houston, TX -
Atlanta, GA along NGL pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.geography import (
    geography_report,
    non_transport_conduits,
)
from repro.analysis.report import format_table
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig5Row:
    endpoints: Tuple[str, str]
    tenants: int
    road_or_rail: float
    pipeline: float
    row_id: str


@dataclass(frozen=True)
class Fig5Result:
    rows: Tuple[Fig5Row, ...]
    pipeline_explained: int


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "ground_truth")


def run(scenario: Scenario, threshold: float = 0.8) -> Fig5Result:
    fiber_map = scenario.constructed_map
    report = geography_report(fiber_map, scenario.network)
    rows = []
    explained = 0
    for conduit, colocation in non_transport_conduits(
        report, fiber_map, threshold=threshold
    ):
        if colocation.pipeline >= 0.5:
            explained += 1
        rows.append(
            Fig5Row(
                endpoints=conduit.edge,
                tenants=conduit.num_tenants,
                road_or_rail=colocation.road_or_rail,
                pipeline=colocation.pipeline,
                row_id=conduit.row_id,
            )
        )
    return Fig5Result(rows=tuple(rows), pipeline_explained=explained)


def format_result(result: Fig5Result) -> str:
    table = format_table(
        ("conduit", "tenants", "road/rail frac", "pipeline frac", "right-of-way"),
        [
            (
                f"{r.endpoints[0]} - {r.endpoints[1]}",
                r.tenants,
                f"{r.road_or_rail:.2f}",
                f"{r.pipeline:.2f}",
                r.row_id,
            )
            for r in result.rows
        ],
        title="Figure 5: conduits off the road/rail grid",
    )
    return (
        f"{table}\n{result.pipeline_explained}/{len(result.rows)} "
        "explained by pipeline rights-of-way"
    )
