"""Extension experiment: the §6.3 conduit ("link") exchange model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.mitigation.exchange import ExchangeConduit, plan_exchange
from repro.scenario import Scenario

DEFAULT_CONDUITS = 5


@dataclass(frozen=True)
class ExtExchangeResult:
    conduits: Tuple[ExchangeConduit, ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "ground_truth")


def run(scenario: Scenario,
        num_conduits: int = DEFAULT_CONDUITS) -> ExtExchangeResult:
    return ExtExchangeResult(
        conduits=tuple(
            plan_exchange(
                scenario.constructed_map,
                scenario.network,
                list(scenario.isps),
                num_conduits=num_conduits,
            )
        )
    )


def format_result(result: ExtExchangeResult) -> str:
    rows = []
    for conduit in result.conduits:
        best = max(m.savings_factor for m in conduit.members)
        rows.append(
            (
                f"{conduit.edge[0]} - {conduit.edge[1]}",
                f"{conduit.length_km:.0f}",
                conduit.num_members,
                f"{conduit.total_gain:.1f}",
                f"x{best:.0f}",
            )
        )
    return format_table(
        ("conduit", "km", "members", "aggregate gain", "best savings"),
        rows,
        title="Extension: jointly funded conduits (IXP model for trenches)",
    )
