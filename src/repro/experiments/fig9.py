"""Figure 9: conduit-sharing CDF, physical map vs traceroute-overlaid.

Paper: when traffic is considered, shared risk only grows — traceroute
naming reveals providers beyond the map's tenants (e.g. 13 additional
ISPs on the Portland-Seattle conduit, which the map listed at 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_cdf
from repro.risk.traffic import TrafficRiskReport, traffic_risk_report
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig9Result:
    report: TrafficRiskReport


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("overlay", "risk_matrix")


def run(scenario: Scenario) -> Fig9Result:
    return Fig9Result(
        report=traffic_risk_report(scenario.risk_matrix, scenario.overlay)
    )


def format_result(result: Fig9Result) -> str:
    report = result.report
    physical = format_cdf(
        [(k, f) for k, f in report.cdf_physical],
        title="Physical map only (ISPs sharing a conduit)",
    )
    overlaid = format_cdf(
        [(k, f) for k, f in report.cdf_with_traffic],
        title="Traceroute overlaid on physical map",
    )
    return (
        "Figure 9: conduit sharing before/after traffic overlay\n\n"
        f"{physical}\n\n{overlaid}\n\n"
        f"conduits with providers inferred beyond the map: "
        f"{report.conduits_with_new_isps}\n"
        f"max additional providers on one conduit: "
        f"{report.max_additional_isps} (paper: 13 on Portland-Seattle)"
    )
