"""Table 4: providers ranked by conduits carrying probe traffic.

Paper: Level 3 first (62 conduits) with a significant lead, then
Comcast (48), AT&T (41), Cogent (37), SoftLayer (30), MFN and Verizon
(21), Cox (18), CenturyLink (16), XO (15) — XO carries roughly 25% of
Level 3's volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.scenario import Scenario

PAPER_TABLE4 = (
    ("Level 3", 62),
    ("Comcast", 48),
    ("AT&T", 41),
    ("Cogent", 37),
    ("SoftLayer", 30),
    ("MFN", 21),
    ("Verizon", 21),
    ("Cox", 18),
    ("CenturyLink", 16),
    ("XO", 15),
)


@dataclass(frozen=True)
class Table4Result:
    rows: Tuple[Tuple[str, int], ...]
    level3_rank: int
    xo_to_level3_ratio: float


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("overlay",)


def run(scenario: Scenario, top: int = 10) -> Table4Result:
    usage = scenario.overlay.isp_conduit_usage()
    rows = tuple(usage[:top])
    by_isp = dict(usage)
    level3 = by_isp.get("Level 3", 0)
    ranks = [isp for isp, _ in usage]
    return Table4Result(
        rows=rows,
        level3_rank=ranks.index("Level 3") + 1 if "Level 3" in ranks else -1,
        xo_to_level3_ratio=(by_isp.get("XO", 0) / level3) if level3 else 0.0,
    )


def format_result(result: Table4Result) -> str:
    table = format_table(
        ("ISP", "# conduits"),
        result.rows,
        title="Table 4: top providers by conduits carrying probe traffic",
    )
    paper = format_table(
        ("ISP", "# conduits"), PAPER_TABLE4, title="Paper's Table 4"
    )
    return (
        f"{table}\n\n{paper}\n\n"
        f"Level 3 rank: {result.level3_rank} (paper: 1); "
        f"XO/Level 3 conduit ratio: {result.xo_to_level3_ratio:.2f} "
        "(paper: ~0.25)"
    )
