"""Extension experiment: how often logical diversity is an illusion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.routing.opacity import OpacityStudy, opacity_study
from repro.scenario import Scenario

#: Provider pairs an operator would plausibly dual-home across.
STUDIED_ISPS = ("Level 3", "AT&T", "Sprint", "Verizon", "CenturyLink",
                "Cogent")


@dataclass(frozen=True)
class ExtOpacityResult:
    study: OpacityStudy


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario, max_pairs: int = 25) -> ExtOpacityResult:
    return ExtOpacityResult(
        study=opacity_study(
            scenario.constructed_map, STUDIED_ISPS, max_pairs=max_pairs
        )
    )


def format_result(result: ExtOpacityResult) -> str:
    study = result.study
    worst = sorted(
        study.cases, key=lambda c: (-len(c.shared_groups), c.endpoints)
    )[:10]
    table = format_table(
        ("city pair", "providers", "shared trenches", "same conduit"),
        [
            (
                f"{c.endpoints[0]} - {c.endpoints[1]}",
                f"{c.isp_a} / {c.isp_b}",
                len(c.shared_groups),
                "yes" if c.shared_conduits else "no",
            )
            for c in worst
        ],
        title="Extension: dual-homed pairs with the most hidden shared risk",
    )
    return (
        f"{table}\n"
        f"cases checked: {study.total}; logically diverse but physically "
        f"shared: {study.deceived_count} ({study.deceived_fraction:.0%}); "
        f"sharing an actual conduit: {study.same_conduit_count}\n"
        f"mean hidden shared trenches per dual-homed pair: "
        f"{study.mean_shared_groups():.1f}\n"
        "(the §6.1 claim: conduit sharing is opaque to higher layers)"
    )
