"""Table 1: nodes and long-haul links per step-1 provider.

Paper values: AT&T 25/57, Comcast 26/71, Cogent 69/84, EarthLink
248/370, Integra 27/36, Level 3 240/336, Suddenlink 39/42, Verizon
116/151, Zayo 98/111 — 267 unique nodes, 1258 links, 512 conduits in the
initial map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.fibermap.pipeline import Table1Row
from repro.scenario import Scenario

#: The paper's Table 1, for side-by-side reporting.
PAPER_TABLE1: Dict[str, Tuple[int, int]] = {
    "AT&T": (25, 57),
    "Comcast": (26, 71),
    "Cogent": (69, 84),
    "EarthLink": (248, 370),
    "Integra": (27, 36),
    "Level 3": (240, 336),
    "Suddenlink": (39, 42),
    "Verizon": (116, 151),
    "Zayo": (98, 111),
}


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[Table1Row, ...]
    total_links: int


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario) -> Table1Result:
    report = scenario.construction_report
    rows = tuple(sorted(report.table1, key=lambda r: r.isp))
    return Table1Result(
        rows=rows, total_links=sum(r.num_links for r in rows)
    )


def format_result(result: Table1Result) -> str:
    body = []
    for row in result.rows:
        paper_nodes, paper_links = PAPER_TABLE1.get(row.isp, ("-", "-"))
        body.append(
            (row.isp, row.num_nodes, paper_nodes, row.num_links, paper_links)
        )
    table = format_table(
        ("ISP", "nodes", "paper", "links", "paper"),
        body,
        title="Table 1: step-1 providers (measured vs paper)",
    )
    return f"{table}\ntotal links: {result.total_links} (paper: 1258)"
