"""One experiment module per table and figure of the paper.

Every module exposes ``run(scenario) -> result`` and
``format_result(result) -> str``; :mod:`repro.experiments.runner` holds
the registry mapping experiment ids (``table1``, ``fig6``, ...) to them.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    Experiment,
    run_all,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment", "run_all"]
