"""One experiment module per table and figure of the paper.

Every module exposes ``run(scenario) -> result`` and
``format_result(result) -> str``; :mod:`repro.experiments.runner` holds
the registry mapping experiment ids (``table1``, ``fig6``, ...) to them
and wraps each run into a typed :class:`ExperimentResult`.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "run_all",
]
