"""One experiment module per table and figure of the paper.

Every module exposes ``run(scenario) -> result``,
``format_result(result) -> str``, and a ``requires`` tuple naming the
scenario stages it reads; :mod:`repro.experiments.runner` holds the
registry mapping experiment ids (``table1``, ``fig6``, ...) to them,
materializes exactly the declared stage subgraph per run, and wraps
each run into a typed :class:`ExperimentResult`.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    RestrictedScenario,
    UndeclaredStageAccessError,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "RestrictedScenario",
    "UndeclaredStageAccessError",
    "run_experiment",
    "run_all",
]
