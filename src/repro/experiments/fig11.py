"""Figure 11: improvement ratio vs number of added conduits (k = 1..10).

Paper: good improvement for providers with small US footprints (Telia,
Tata, ...), very little for infrastructure-rich Level 3, CenturyLink and
Cogent, and no improvement for Suddenlink (it depends on other
providers' trunks to reach its scattered markets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.mitigation.augmentation import (
    AugmentationResult,
    candidate_new_edges,
    improvement_curves,
)
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig11Result:
    results: Dict[str, AugmentationResult]
    max_k: int
    num_candidates: int


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "ground_truth", "substrate")


def run(
    scenario: Scenario,
    max_k: int = 10,
    isps: Optional[Sequence[str]] = None,
    driver: str = "greedy",
    driver_seed: int = 0,
) -> Fig11Result:
    fiber_map = scenario.constructed_map
    network = scenario.network
    candidates = candidate_new_edges(fiber_map, network)
    chosen = list(isps) if isps is not None else list(scenario.isps)
    results = improvement_curves(
        fiber_map,
        network,
        chosen,
        max_k=max_k,
        candidates=candidates,
        substrate=scenario.substrate,
        workers=scenario.workers,
        driver=driver,
        driver_seed=driver_seed,
    )
    return Fig11Result(
        results=results, max_k=max_k, num_candidates=len(candidates)
    )


def format_result(result: Fig11Result) -> str:
    ks = list(range(1, result.max_k + 1))
    rows = []
    for isp in sorted(result.results):
        r = result.results[isp]
        rows.append(
            [isp] + [f"{r.improvement_ratio(k):.3f}" for k in ks]
        )
    table = format_table(
        ["ISP"] + [f"k={k}" for k in ks],
        rows,
        title="Figure 11: improvement ratio after k added conduits",
    )
    final = sorted(
        (
            (isp, r.improvement_ratio(result.max_k))
            for isp, r in result.results.items()
        ),
        key=lambda kv: -kv[1],
    )
    best = ", ".join(f"{i} ({v:.2f})" for i, v in final[:3])
    worst = ", ".join(f"{i} ({v:.2f})" for i, v in final[-3:])
    return (
        f"{table}\ncandidate unused-ROW edges: {result.num_candidates}\n"
        f"largest gains: {best}\nsmallest gains: {worst}\n"
        "(paper: Telia/Tata gain most; Level 3/CenturyLink/Cogent least; "
        "Suddenlink none)"
    )
