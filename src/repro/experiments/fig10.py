"""Figure 10: path inflation and shared-risk reduction per provider.

Paper: optimizing the twelve most heavily shared conduits costs on
average one to two extra conduit hops and yields nearly all of the
achievable shared-risk reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.mitigation.robustness import RobustnessSuggestion, optimize_all_isps
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig10Result:
    suggestions: Dict[str, RobustnessSuggestion]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "risk_matrix", "substrate")


def run(scenario: Scenario, top: int = 12) -> Fig10Result:
    return Fig10Result(
        suggestions=optimize_all_isps(
            scenario.constructed_map,
            scenario.risk_matrix,
            top=top,
            substrate=scenario.substrate,
            workers=scenario.workers,
        )
    )


def format_result(result: Fig10Result) -> str:
    rows = []
    for isp in sorted(result.suggestions):
        s = result.suggestions[isp]
        if not s.outcomes:
            continue
        rows.append(
            (
                isp,
                len(s.outcomes),
                s.min_pi,
                f"{s.avg_pi:.1f}",
                s.max_pi,
                s.min_srr,
                f"{s.avg_srr:.1f}",
                s.max_srr,
            )
        )
    table = format_table(
        ("ISP", "targets", "minPI", "avgPI", "maxPI", "minSRR", "avgSRR", "maxSRR"),
        rows,
        title="Figure 10: robustness suggestion over the 12 most-shared conduits",
    )
    avg_pi = [float(r[3]) for r in rows]
    overall = sum(avg_pi) / len(avg_pi) if avg_pi else 0.0
    return (
        f"{table}\noverall average path inflation: {overall:.1f} hops "
        "(paper: 'between one and two conduits')"
    )
