"""Extension experiment: capacity concentration in shared conduits.

The risk analysis counts tenants; this experiment weighs them.  Because
every tenant pulls its own cable, the most-shared conduits also carry
the most lit capacity — cutting one destroys disproportionate
bandwidth.  Reported: the tenancy-capacity correlation, the top-decile
amplification, and the fattest tubes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.fibermap.capacity import (
    CapacityModel,
    build_capacity_model,
    capacity_risk_correlation,
)
from repro.scenario import Scenario


@dataclass(frozen=True)
class ExtCapacityResult:
    model: CapacityModel
    correlation: float


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "overlay")


def run(scenario: Scenario) -> ExtCapacityResult:
    model = build_capacity_model(scenario.constructed_map, scenario.overlay)
    return ExtCapacityResult(
        model=model, correlation=capacity_risk_correlation(model)
    )


def format_result(result: ExtCapacityResult) -> str:
    model = result.model
    table = format_table(
        ("conduit", "tenants", "strands", "lit Tbps", "probe share"),
        [
            (
                f"{c.endpoints[0]} - {c.endpoints[1]}",
                c.tenants,
                c.strands,
                f"{c.lit_gbps / 1000:.1f}",
                f"{c.probe_share:.2%}",
            )
            for c in model.top_capacity(10)
        ],
        title="Extension: the fattest tubes (capacity-annotated conduits)",
    )
    return (
        f"{table}\n"
        f"total lit capacity: {model.total_lit_gbps / 1000:.0f} Tbps; "
        f"top tenancy-decile holds {model.amplification():.0%} of it\n"
        f"tenancy-capacity correlation: {result.correlation:.2f} "
        "(the riskiest tubes are also the fattest)"
    )
