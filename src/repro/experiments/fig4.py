"""Figure 4: fraction of physical links co-located with transportation.

Paper findings: a significant fraction of links are co-located with
roadways; road co-location beats rail; the road-or-rail union is the
highest of all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.geography import GeographyReport, geography_report
from repro.analysis.report import format_histogram
from repro.scenario import Scenario


@dataclass(frozen=True)
class Fig4Result:
    report: GeographyReport
    mean_road: float
    mean_rail: float
    mean_union: float
    road_beats_rail: float


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "ground_truth")


def run(scenario: Scenario, buffer_km: float = 15.0) -> Fig4Result:
    report = geography_report(
        scenario.constructed_map, scenario.network, buffer_km=buffer_km
    )
    return Fig4Result(
        report=report,
        mean_road=report.mean_fraction("road"),
        mean_rail=report.mean_fraction("rail"),
        mean_union=report.mean_fraction("road_or_rail"),
        road_beats_rail=report.road_beats_rail_fraction,
    )


def format_result(result: Fig4Result) -> str:
    lines = ["Figure 4: co-location of conduits with transportation"]
    for kind, label in (
        ("road", "Road"),
        ("rail", "Rail"),
        ("road_or_rail", "Rail and Road"),
    ):
        edges, counts = result.report.histogram(kind)
        lines.append("")
        lines.append(
            format_histogram(edges, counts, title=f"{label} co-location fraction")
        )
    lines.append("")
    lines.append(
        f"mean fractions: road={result.mean_road:.2f} "
        f"rail={result.mean_rail:.2f} union={result.mean_union:.2f}"
    )
    lines.append(
        f"conduits more road- than rail-co-located: "
        f"{result.road_beats_rail:.0%} (paper: 'vast majority')"
    )
    return "\n".join(lines)
