"""Extension experiment: SRLG-diverse backup availability per provider."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.routing.backup import protection_report
from repro.scenario import Scenario

STUDIED_ISPS = ("Level 3", "EarthLink", "Sprint", "AT&T", "Suddenlink",
                "Tata", "XO")


@dataclass(frozen=True)
class ProtectionRow:
    isp: str
    pairs: int
    diverse: int
    shared: int
    unprotected: int

    @property
    def diverse_fraction(self) -> float:
        return self.diverse / self.pairs if self.pairs else 0.0


@dataclass(frozen=True)
class ExtProtectionResult:
    rows: Tuple[ProtectionRow, ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario, max_pairs: int = 80) -> ExtProtectionResult:
    rows = []
    for isp in STUDIED_ISPS:
        diverse, shared, unprotected = protection_report(
            scenario.constructed_map, isp, max_pairs=max_pairs
        )
        rows.append(
            ProtectionRow(
                isp=isp,
                pairs=diverse + shared + unprotected,
                diverse=diverse,
                shared=shared,
                unprotected=unprotected,
            )
        )
    return ExtProtectionResult(rows=tuple(rows))


def format_result(result: ExtProtectionResult) -> str:
    return format_table(
        ("ISP", "pairs", "fully diverse", "shared-risk backup",
         "unprotected", "diverse %"),
        [
            (
                r.isp, r.pairs, r.diverse, r.shared, r.unprotected,
                f"{r.diverse_fraction:.0%}",
            )
            for r in result.rows
        ],
        title="Extension: SRLG-diverse backup availability",
    )
