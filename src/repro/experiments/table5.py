"""Table 5: best peering suggestions per provider.

Paper: "Level 3 is predominantly the best peer that any ISP could add to
improve robustness, largely due to their already-robust infrastructure.
AT&T and CenturyLink are also prominent peers."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.mitigation.peering import peering_suggestions
from repro.scenario import Scenario


@dataclass(frozen=True)
class Table5Result:
    suggestions: Dict[str, List[str]]
    top_peer_counts: Tuple[Tuple[str, int], ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map", "risk_matrix")


def run(scenario: Scenario, top: int = 12) -> Table5Result:
    suggestions = peering_suggestions(
        scenario.constructed_map, scenario.risk_matrix, top=top
    )
    counts = Counter()
    for isp, peers in suggestions.items():
        for peer in peers:
            counts[peer] += 1
    return Table5Result(
        suggestions=suggestions,
        top_peer_counts=tuple(
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        ),
    )


def format_result(result: Table5Result) -> str:
    table = format_table(
        ("ISP", "suggested peering"),
        [
            (isp, " | ".join(peers) if peers else "(none)")
            for isp, peers in sorted(result.suggestions.items())
        ],
        title="Table 5: top-3 peering suggestions per provider",
    )
    counts = ", ".join(f"{p} ({n})" for p, n in result.top_peer_counts)
    return (
        f"{table}\nmost suggested peers: {counts}\n"
        "(paper: Level 3 predominant, then AT&T and CenturyLink)"
    )
