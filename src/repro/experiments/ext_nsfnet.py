"""Extension experiment: the NSFNET-1995 invariance comparison (§6.1).

"The (physical) long-haul infrastructure is comparably static ... the
links reflected in our map can also be considered an Internet
invariant."  Test: route every 1995 NSFNET backbone link over the 2015
conduit map; if the invariance claim holds, the conduits those routes
traverse are far more heavily shared than the average conduit —
yesterday's backbone corridors became today's crowded trenches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx
import numpy as np

from repro.analysis.report import format_table
from repro.data.nsfnet import NsfnetBackbone, nsfnet_backbone
from repro.scenario import Scenario


@dataclass(frozen=True)
class NsfnetLinkRow:
    endpoints: Tuple[str, str]
    conduits: int
    mean_tenancy: float


@dataclass(frozen=True)
class ExtNsfnetResult:
    backbone: NsfnetBackbone
    rows: Tuple[NsfnetLinkRow, ...]
    #: Mean tenancy of conduits under NSFNET routes vs the whole map.
    nsfnet_mean_tenancy: float
    map_mean_tenancy: float

    @property
    def invariance_ratio(self) -> float:
        """>1 means historical routes are today's crowded corridors."""
        if self.map_mean_tenancy <= 0:
            return 0.0
        return self.nsfnet_mean_tenancy / self.map_mean_tenancy


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("constructed_map",)


def run(scenario: Scenario) -> ExtNsfnetResult:
    fiber_map = scenario.constructed_map
    backbone = nsfnet_backbone()
    graph = fiber_map.simple_conduit_graph()
    rows: List[NsfnetLinkRow] = []
    used_tenancies: List[int] = []
    for a, b in backbone.links:
        try:
            path = nx.shortest_path(graph, a, b, weight="length_km")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        tenancies = []
        for u, v in zip(path, path[1:]):
            conduit_id = graph[u][v]["conduit_id"]
            # Use the busiest conduit on the edge: the historical route
            # would have seeded the primary trench.
            best = max(
                fiber_map.conduits_between(u, v), key=lambda c: c.num_tenants
            )
            tenancies.append(best.num_tenants)
        used_tenancies.extend(tenancies)
        rows.append(
            NsfnetLinkRow(
                endpoints=(a, b),
                conduits=len(tenancies),
                mean_tenancy=float(np.mean(tenancies)),
            )
        )
    all_tenancies = [c.num_tenants for c in fiber_map.conduits.values()]
    return ExtNsfnetResult(
        backbone=backbone,
        rows=tuple(rows),
        nsfnet_mean_tenancy=float(np.mean(used_tenancies)),
        map_mean_tenancy=float(np.mean(all_tenancies)),
    )


def format_result(result: ExtNsfnetResult) -> str:
    table = format_table(
        ("NSFNET 1995 link", "conduits traversed", "mean tenants"),
        [
            (f"{a} - {b}", row.conduits, f"{row.mean_tenancy:.1f}")
            for (a, b), row in (
                (r.endpoints, r) for r in result.rows
            )
        ],
        title="Extension: 1995 NSFNET backbone routed over the 2015 map",
    )
    return (
        f"{table}\n"
        f"backbone: {result.backbone.num_nodes} nodes, "
        f"{result.backbone.num_links} links, "
        f"{result.backbone.total_los_km():.0f} km LOS\n"
        f"mean tenancy under NSFNET routes: "
        f"{result.nsfnet_mean_tenancy:.1f} vs map average "
        f"{result.map_mean_tenancy:.1f} "
        f"(x{result.invariance_ratio:.2f} - historical corridors are "
        "today's crowded trenches)"
    )
