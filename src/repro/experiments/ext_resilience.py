"""Extension experiment: targeted attack vs random cuts.

Quantifies §4's security concern: an adversary who can read the conduit
map and sever the most-shared rights-of-way does far more damage per
cut than random backhoe events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_table
from repro.resilience.montecarlo import (
    AttackResult,
    mean_final_disconnected,
    random_cut_study,
    targeted_attack,
)
from repro.resilience.traffic_shift import TrafficShiftReport, traffic_shift
from repro.scenario import Scenario

DEFAULT_CUTS = 6
DEFAULT_TRIALS = 8


@dataclass(frozen=True)
class ExtResilienceResult:
    attack: AttackResult
    random_runs: Tuple[AttackResult, ...]
    #: Traffic consequence of the first (worst) cut.
    first_cut_shift: TrafficShiftReport

    @property
    def advantage(self) -> float:
        """How many times worse the informed adversary is."""
        baseline = mean_final_disconnected(self.random_runs)
        if baseline <= 0:
            return float("inf")
        return self.attack.cumulative_disconnected[-1] / baseline


#: Scenario stages this experiment reads (enforced by the runner).
requires = (
    "campaign", "constructed_map", "overlay", "risk_matrix", "substrate",
    "topology",
)


def run(scenario: Scenario, cuts: int = DEFAULT_CUTS,
        trials: int = DEFAULT_TRIALS) -> ExtResilienceResult:
    fiber_map = scenario.constructed_map
    attack = targeted_attack(
        fiber_map, scenario.risk_matrix, cuts=cuts, overlay=scenario.overlay,
        substrate=scenario.substrate,
    )
    random_runs = tuple(
        random_cut_study(
            fiber_map, cuts=cuts, trials=trials, seed=3,
            substrate=scenario.substrate,
        )
    )
    shift = traffic_shift(
        scenario.topology, attack.events[0], scenario.campaign,
        max_traces=1500,
    )
    return ExtResilienceResult(
        attack=attack, random_runs=random_runs, first_cut_shift=shift
    )


def format_result(result: ExtResilienceResult) -> str:
    attack = result.attack
    rows: List[Tuple] = []
    for i, event in enumerate(attack.events):
        random_mean = sum(
            r.cumulative_disconnected[i] for r in result.random_runs
        ) / len(result.random_runs)
        rows.append(
            (
                i + 1,
                event.description.replace("right-of-way cut: ", ""),
                attack.cumulative_disconnected[i],
                attack.cumulative_isps_harmed[i],
                attack.probes_affected[i],
                f"{random_mean:.1f}",
            )
        )
    table = format_table(
        ("cut", "targeted ROW", "pairs disconnected", "ISPs harmed",
         "probes crossing", "random baseline"),
        rows,
        title="Extension: targeted attack on most-shared ROWs vs random cuts",
    )
    shift = result.first_cut_shift
    return (
        f"{table}\nfinal: targeted "
        f"{attack.cumulative_disconnected[-1]} vs random "
        f"{mean_final_disconnected(list(result.random_runs)):.1f} "
        f"disconnected POP pairs (x{result.advantage:.1f} advantage)\n"
        f"traffic shift of cut #1: {shift.affected_fraction:.1%} of traces "
        f"affected, mean +{shift.mean_inflation_ms:.2f} ms, "
        f"p95 +{shift.p95_inflation_ms:.2f} ms, "
        f"{shift.traces_blackholed} black-holed"
    )
