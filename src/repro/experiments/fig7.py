"""Figure 7: providers ranked by average conduit sharing.

Paper ordering: Suddenlink lowest (geographically diverse deployments),
then EarthLink and Level 3; Deutsche Telekom, NTT and XO use conduits
shared by the most other providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.report import format_table
from repro.risk.metrics import IspRankRow, isp_ranking
from repro.scenario import Scenario

#: The paper's qualitative extremes.
PAPER_LOWEST = ("Suddenlink", "EarthLink", "Level 3")
PAPER_HIGHEST = ("Deutsche Telekom", "NTT", "XO")


@dataclass(frozen=True)
class Fig7Result:
    rows: Tuple[IspRankRow, ...]


#: Scenario stages this experiment reads (enforced by the runner).
requires = ("risk_matrix",)


def run(scenario: Scenario) -> Fig7Result:
    return Fig7Result(rows=tuple(isp_ranking(scenario.risk_matrix)))


def format_result(result: Fig7Result) -> str:
    table = format_table(
        ("rank", "ISP", "avg sharing", "stderr", "p25", "p75", "conduits"),
        [
            (
                i + 1,
                row.isp,
                f"{row.average:.2f}",
                f"{row.std_error:.2f}",
                f"{row.p25:.0f}",
                f"{row.p75:.0f}",
                row.num_conduits,
            )
            for i, row in enumerate(result.rows)
        ],
        title="Figure 7: ISPs by increasing average shared risk",
    )
    lowest = ", ".join(r.isp for r in result.rows[:3])
    highest = ", ".join(r.isp for r in result.rows[-3:])
    return (
        f"{table}\n"
        f"measured lowest: {lowest} (paper: {', '.join(PAPER_LOWEST)})\n"
        f"measured highest: {highest} (paper: {', '.join(PAPER_HIGHEST)})"
    )
