"""Deterministic fault injection: chaos-testing the execution layer.

The paper's thesis is that shared infrastructure must survive component
failure; this module lets the toolkit hold itself to the same standard.
A :class:`FaultPlan` describes *which* faults to inject — worker-process
crashes inside campaign shards, corrupted cache payloads, failed cache
writes — and a :class:`FaultInjector` carries that plan across process
boundaries and decides, deterministically, when each fault fires.

Determinism has two parts:

* **Selection** is pure: whether a fault targets a given key (a shard's
  start index, a cache stage name) is a hash of ``(seed, kind, key)``,
  so the same plan always picks the same victims.
* **Repetition** is bounded: every selected fault fires at most
  ``repeats`` times per key, tracked by ``O_CREAT | O_EXCL`` marker
  files under a state directory that survives worker-pool respawns.
  A shard killed once is killed exactly once; its retry runs clean.

Because the campaign's per-trace RNG streams make shard replay free,
an injected crash is *invisible in the output*: the recovered campaign
is byte-identical to a fault-free run — which is exactly what the chaos
tests assert.

Activation: install an injector explicitly (``set_fault_injector`` /
``fault_injection``), or set ``REPRO_FAULTS`` in the environment, e.g.
``REPRO_FAULTS="seed=7,crash_rate=0.4"`` — the spec the CI chaos job
uses to run the regular campaign/cache test subset under fire.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedWriteError",
    "get_fault_injector",
    "set_fault_injector",
    "fault_injection",
]


class InjectedWriteError(OSError):
    """The injected cache-write failure (an ``OSError`` subclass, so
    production code handles it exactly like a real disk error)."""


def _chance(seed: int, kind: str, key: str) -> float:
    """Stable uniform draw in ``[0, 1)`` for one ``(seed, kind, key)``."""
    digest = hashlib.blake2b(
        f"{seed}:{kind}:{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and with which seed.

    Rate fields select victims probabilistically (but deterministically:
    the draw hashes the seed and the target key); the explicit tuple
    fields name victims outright.  ``repeats`` bounds how many times any
    selected fault fires per key — the default of 1 models a transient
    failure that a single retry clears.
    """

    seed: int = 0
    #: Shard start indices whose worker is killed (``os._exit``).
    crash_shards: Tuple[int, ...] = ()
    #: Probability any shard's worker is killed.
    crash_rate: float = 0.0
    #: Cache stages whose stored payload is corrupted on disk.
    corrupt_stages: Tuple[str, ...] = ()
    #: Probability any cache store writes a corrupted payload.
    corrupt_rate: float = 0.0
    #: Cache stages whose ``store()`` raises :class:`InjectedWriteError`.
    write_fail_stages: Tuple[str, ...] = ()
    #: Probability any cache store raises.
    write_fail_rate: float = 0.0
    #: Times each selected fault fires per key before going quiet.
    repeats: int = 1

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec: ``k=v`` pairs, comma-separated.

        Tuple fields take ``:``-separated values, e.g.
        ``"seed=7,crash_rate=0.4,corrupt_stages=campaign:overlay"``.
        """
        kwargs = {}
        types = {f.name: f.type for f in fields(cls)}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, _, raw = item.partition("=")
            name = name.strip()
            if name not in types:
                raise ValueError(f"unknown fault field {name!r} in {spec!r}")
            raw = raw.strip()
            if name in ("seed", "repeats"):
                kwargs[name] = int(raw)
            elif name.endswith("_rate"):
                kwargs[name] = float(raw)
            elif name == "crash_shards":
                kwargs[name] = tuple(
                    int(v) for v in raw.split(":") if v
                )
            else:
                kwargs[name] = tuple(v for v in raw.split(":") if v)
        return cls(**kwargs)

    def any_faults(self) -> bool:
        return bool(
            self.crash_shards or self.crash_rate
            or self.corrupt_stages or self.corrupt_rate
            or self.write_fail_stages or self.write_fail_rate
        )


class FaultInjector:
    """Executes a :class:`FaultPlan`; safe to pickle into worker pools.

    The once-per-key bookkeeping lives in marker files under
    ``state_dir`` (a fresh temp directory by default), so decisions stay
    consistent across forked workers, respawned pools, and concurrent
    processes sharing one injector.
    """

    def __init__(
        self, plan: FaultPlan, state_dir: Union[str, Path, None] = None
    ):
        self.plan = plan
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _attempt(self, kind: str, key: str) -> int:
        """Claim and return this call's attempt number for ``(kind, key)``.

        Attempt ``n`` is claimed by exclusively creating marker file
        ``<kind>-<key>.<n>``; ``O_EXCL`` makes the claim race-free
        across processes.
        """
        safe = str(key).replace(os.sep, "_")
        for attempt in range(10_000):
            marker = self.state_dir / f"{kind}-{safe}.{attempt}"
            try:
                fd = os.open(
                    marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            return attempt
        return 10_000  # pathological; treat as exhausted

    def _fires(
        self,
        kind: str,
        key: str,
        named: Tuple[object, ...],
        rate: float,
    ) -> bool:
        selected = key in {str(v) for v in named} or (
            rate > 0.0 and _chance(self.plan.seed, kind, key) < rate
        )
        if not selected:
            return False
        return self._attempt(kind, key) < self.plan.repeats

    # ------------------------------------------------------------------
    def maybe_crash_worker(self, shard_start: int) -> None:
        """Kill this process if the plan targets the given shard.

        ``os._exit`` models a hard worker death (OOM kill, segfault):
        no exception propagates, no cleanup runs, and the parent's
        ``ProcessPoolExecutor`` surfaces it as ``BrokenProcessPool``.
        """
        if self._fires(
            "crash", str(shard_start),
            self.plan.crash_shards, self.plan.crash_rate,
        ):
            os._exit(13)

    def corrupt_payload(self, stage: str, payload: bytes) -> bytes:
        """Return *payload*, possibly deterministically mangled."""
        if self._fires(
            "corrupt", stage,
            self.plan.corrupt_stages, self.plan.corrupt_rate,
        ):
            from repro.obs.tracer import get_tracer

            get_tracer().event("faults.corrupt_store", stage=stage)
            # Truncate and scramble the head: guaranteed to fail
            # ``pickle.loads`` whatever the original protocol.
            return b"\x80corrupt" + payload[: max(1, len(payload) // 2)]
        return payload

    def maybe_fail_write(self, stage: str) -> None:
        """Raise :class:`InjectedWriteError` if the plan targets *stage*."""
        if self._fires(
            "write_fail", stage,
            self.plan.write_fail_stages, self.plan.write_fail_rate,
        ):
            from repro.obs.tracer import get_tracer

            get_tracer().event("faults.write_fail", stage=stage)
            raise InjectedWriteError(
                f"injected cache write failure for stage {stage!r}"
            )


# ----------------------------------------------------------------------
# Process-global injector.  ``None`` means "not yet resolved": the first
# ``get_fault_injector`` call consults ``REPRO_FAULTS`` once and caches
# the outcome (possibly "no faults").  Forked campaign workers inherit
# the resolved injector; spawn-based pools receive it via initargs.
_FAULT_INJECTOR: Optional[FaultInjector] = None
_RESOLVED = False


def get_fault_injector() -> Optional[FaultInjector]:
    """The active injector, or ``None`` when no faults are configured."""
    global _FAULT_INJECTOR, _RESOLVED
    if not _RESOLVED:
        _RESOLVED = True
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if spec:
            plan = FaultPlan.from_spec(spec)
            if plan.any_faults():
                _FAULT_INJECTOR = FaultInjector(plan)
    return _FAULT_INJECTOR


def set_fault_injector(
    injector: Optional[FaultInjector],
) -> Optional[FaultInjector]:
    """Install *injector* globally; returns the previous one.

    Passing ``None`` disables injection (and suppresses any
    ``REPRO_FAULTS`` environment spec until re-resolved).
    """
    global _FAULT_INJECTOR, _RESOLVED
    previous = _FAULT_INJECTOR if _RESOLVED else get_fault_injector()
    _FAULT_INJECTOR = injector
    _RESOLVED = True
    return previous


class fault_injection:
    """``with fault_injection(FaultPlan(...)):`` — scoped chaos."""

    def __init__(
        self,
        plan: FaultPlan,
        state_dir: Union[str, Path, None] = None,
    ):
        self.injector = FaultInjector(plan, state_dir=state_dir)
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        self._previous = set_fault_injector(self.injector)
        return self.injector

    def __exit__(self, *exc: object) -> bool:
        set_fault_injector(self._previous)
        return False
