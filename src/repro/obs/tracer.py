"""Stage tracing: nested wall-time spans with a process-global tracer.

Every expensive stage in the toolkit — scenario artifact builds, the
four §2 pipeline steps, campaign shards, the traceroute overlay, each
experiment — opens a :meth:`Tracer.span` around its work.  A span
records monotonic wall time, arbitrary attributes (cache hit/miss,
worker counts, record counts), named counters, and child spans, so one
run yields a replayable tree of where the time went.

Tracing is **off by default** and free when off: the module-global
tracer starts disabled, and a disabled tracer hands out one shared
no-op context manager, so instrumented code pays a single attribute
check per stage (never per trace or per record).  Enable it with

    >>> from repro.obs import Tracer, set_tracer
    >>> previous = set_tracer(Tracer())
    ... # run analyses; spans accumulate on the new tracer
    >>> set_tracer(previous)

or, from the command line, ``python -m repro --trace manifest.json ...``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One traced stage: name, wall time, attributes, counters, children."""

    __slots__ = (
        "name", "attrs", "counters", "children", "started_s", "duration_s"
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Dict[str, int] = {}
        self.children: List[Span] = []
        self.started_s = 0.0
        self.duration_s = 0.0

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        from repro.obs.serialize import to_jsonable

        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            payload["attrs"] = to_jsonable(self.attrs)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s:.6f}s, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """Shared no-op context manager handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that times one span and attaches it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        span = self._span
        span.started_s = time.perf_counter() - self._tracer._t0
        self._tracer._stack.append(span)
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        span.duration_s = (
            time.perf_counter() - self._tracer._t0 - span.started_s
        )
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._attach(span)
        return False


class Tracer:
    """Collects a tree of timed spans for one run.

    All mutating methods are no-ops when ``enabled`` is False, so
    instrumented code never needs its own guard.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Completed top-level spans, in completion order.
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Context manager timing one stage; nests under any open span."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span."""
        if self.enabled and self._stack:
            self._stack[-1].attrs.update(attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter on the innermost open span."""
        if self.enabled and self._stack:
            self._stack[-1].count(name, n)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) child span."""
        if not self.enabled:
            return
        span = Span(name, attrs)
        span.started_s = time.perf_counter() - self._t0
        self._attach(span)

    def record_span(
        self, name: str, duration_s: float, **attrs: Any
    ) -> Optional[Span]:
        """Attach a span timed elsewhere (e.g. inside a worker process)."""
        if not self.enabled:
            return None
        span = Span(name, attrs)
        span.duration_s = float(duration_s)
        self._attach(span)
        return span

    # ------------------------------------------------------------------
    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)

    def walk(self) -> Iterator[Span]:
        """Every completed span, depth-first across the roots."""
        for span in self.spans:
            yield from span.walk()

    def clear(self) -> None:
        self.spans = []
        self._stack = []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]


#: The process-global tracer.  Disabled by default; ``set_tracer``
#: installs a live one for the duration of a traced run.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless explicitly enabled)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install *tracer* globally; returns the previous tracer.

    Passing ``None`` restores the default disabled tracer.
    """
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer if tracer is not None else Tracer(enabled=False)
    return previous


class tracing:
    """``with tracing() as tracer:`` — scoped global tracing."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc: Any) -> bool:
        set_tracer(self._previous)
        return False
