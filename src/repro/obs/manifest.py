"""JSON run manifests: the replayable record of one analysis run.

A manifest captures everything needed to understand (and re-run) an
analysis: the scenario configuration, the package-source hash the
artifact cache keys on, the full span tree from the tracer, and a flat
``timings`` map compatible with the ``BENCH_*.json`` benchmark records.

Schema (version 1)::

    {
      "schema": 1,
      "code_version": "<16-hex hash of the repro sources>",
      "config": {"seed": ..., "campaign_traces": ..., "workers": ...,
                 "cache": null | false | "<root path>"},
      "meta": {...},                      # free-form (argv, bench name)
      "spans": [ {"name", "duration_s", "attrs"?, "counters"?,
                  "children"?: [...]}, ... ],
      "timings": {"<span path>": seconds, ...}   # BENCH-compatible
    }

``python -m repro ... --trace PATH`` writes one;
``python -m repro trace summarize PATH`` renders it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.serialize import to_jsonable
from repro.obs.tracer import Tracer

SCHEMA_VERSION = 1


def _walk(
    spans: List[Dict[str, Any]], prefix: str = "", depth: int = 0
) -> Iterator[Tuple[str, int, Dict[str, Any]]]:
    """Depth-first ``(path, depth, span_dict)`` over serialized spans."""
    for span in spans:
        path = f"{prefix}/{span['name']}" if prefix else span["name"]
        yield path, depth, span
        yield from _walk(span.get("children", []), path, depth + 1)


class RunManifest:
    """Spans + configuration + code version for one traced run."""

    def __init__(
        self,
        spans: List[Dict[str, Any]],
        config: Optional[Dict[str, Any]] = None,
        code_version: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.spans = spans
        self.config = dict(config) if config else {}
        if code_version is None:
            from repro.perf.cache import code_version as _code_version

            code_version = _code_version()
        self.code_version = code_version
        self.meta = dict(meta) if meta else {}

    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(
        cls,
        tracer: Tracer,
        config: Optional[Dict[str, Any]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        return cls(spans=tracer.to_dicts(), config=config, meta=meta)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema {schema!r} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        return cls(
            spans=payload.get("spans", []),
            config=payload.get("config"),
            code_version=payload.get("code_version", "unknown"),
            meta=payload.get("meta"),
        )

    # ------------------------------------------------------------------
    def timings(self) -> Dict[str, float]:
        """Flat ``{span path: seconds}`` map (the BENCH-compatible view)."""
        flat: Dict[str, float] = {}
        for path, _, span in _walk(self.spans):
            flat[path] = flat.get(path, 0.0) + float(
                span.get("duration_s", 0.0)
            )
        return flat

    def span_names(self) -> List[str]:
        """Every span name in the tree, depth-first (with duplicates)."""
        return [span["name"] for _, _, span in _walk(self.spans)]

    def span_tree(self) -> List[Any]:
        """The structural shape of the run: timings stripped.

        Two runs of the same configuration and seed produce identical
        span trees (names, structural attributes, counters, nesting);
        only durations differ.  ``started_s``/``duration_s`` and other
        float-valued attributes are excluded as timing-dependent.
        """

        def strip(span: Dict[str, Any]) -> Dict[str, Any]:
            node: Dict[str, Any] = {"name": span["name"]}
            attrs = {
                k: v
                for k, v in span.get("attrs", {}).items()
                if not isinstance(v, float)
            }
            if attrs:
                node["attrs"] = attrs
            if span.get("counters"):
                node["counters"] = span["counters"]
            if span.get("children"):
                node["children"] = [strip(c) for c in span["children"]]
            return node

        return [strip(span) for span in self.spans]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "code_version": self.code_version,
            "config": to_jsonable(self.config),
            "meta": to_jsonable(self.meta),
            "spans": self.spans,
            "timings": self.timings(),
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Atomically write the manifest (temp file, then ``os.replace``).

        A crash mid-write must not leave a truncated manifest that
        ``trace summarize`` then chokes on — the same guarantee
        ``ArtifactCache.store`` makes for cache entries.
        """
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent) or ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def summary_text(self, max_spans: int = 400) -> str:
        """Human-readable tree: one line per span, durations and attrs."""
        lines = [f"run manifest (schema {SCHEMA_VERSION}, "
                 f"code {self.code_version})"]
        if self.config:
            rendered = " ".join(
                f"{k}={v}" for k, v in sorted(self.config.items())
            )
            lines.append(f"config: {rendered}")
        if self.meta:
            rendered = " ".join(
                f"{k}={v}" for k, v in sorted(self.meta.items())
            )
            lines.append(f"meta: {rendered}")
        lines.append(f"{'span':48s} {'time':>9s}  details")
        shown = 0
        total = 0
        for _, depth, span in _walk(self.spans):
            total += 1
            if shown >= max_spans:
                continue
            shown += 1
            label = ("  " * depth) + span["name"]
            details = []
            for key, value in span.get("attrs", {}).items():
                details.append(f"{key}={value}")
            for key, value in span.get("counters", {}).items():
                details.append(f"{key}+{value}")
            lines.append(
                f"{label:48s} {span.get('duration_s', 0.0):8.3f}s  "
                f"{' '.join(details)}".rstrip()
            )
        if total > shown:
            lines.append(f"... {total - shown} more span(s) elided")
        top_level = sum(
            float(s.get("duration_s", 0.0)) for s in self.spans
        )
        lines.append(
            f"{total} span(s), {top_level:.3f}s across top-level stages"
        )
        return "\n".join(lines)
