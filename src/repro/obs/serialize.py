"""Best-effort conversion of analysis objects into JSON-serializable data.

Experiment results are nested frozen dataclasses holding tuples, sets,
dicts keyed by tuples, and numpy scalars; run-manifest attributes can be
paths or cache objects.  ``to_jsonable`` maps all of them onto plain
``dict``/``list``/scalar structures: dataclasses become field dicts,
sets become sorted lists, non-string keys are stringified, numpy scalars
unwrap via ``.item()``, and anything unrecognized falls back to
``str(value)`` — the output is always ``json.dumps``-able.
"""

from __future__ import annotations

import dataclasses
from typing import Any

#: Recursion guard: beyond this depth values are stringified.  Deeper
#: nesting than this in a result object means a cycle or a mistake.
_MAX_DEPTH = 24


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    return str(key)


def to_jsonable(value: Any, _depth: int = 0) -> Any:
    """Map *value* onto JSON-serializable builtins (see module doc)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _depth >= _MAX_DEPTH:
        return str(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name), _depth + 1)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            _key(k): to_jsonable(v, _depth + 1) for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v, _depth + 1) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (to_jsonable(v, _depth + 1) for v in value), key=repr
        )
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        try:  # numpy scalar (0-d array interface)
            return to_jsonable(item(), _depth + 1)
        except (TypeError, ValueError):  # pragma: no cover - exotic array
            pass
    return str(value)
