"""Observability: stage tracing, metrics, and run manifests.

:mod:`repro.obs.tracer` — nested wall-time spans with counters and a
process-global (disabled-by-default) tracer; :mod:`repro.obs.manifest`
— the JSON run-manifest schema written by ``--trace`` and rendered by
``python -m repro trace summarize``; :mod:`repro.obs.serialize` —
best-effort conversion of result objects to JSON-safe data.
"""

from repro.obs.manifest import SCHEMA_VERSION, RunManifest
from repro.obs.serialize import to_jsonable
from repro.obs.tracer import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "RunManifest",
    "SCHEMA_VERSION",
    "to_jsonable",
]
