"""Observability: stage tracing, metrics, run manifests, and faults.

:mod:`repro.obs.tracer` — nested wall-time spans with counters and a
process-global (disabled-by-default) tracer; :mod:`repro.obs.manifest`
— the JSON run-manifest schema written by ``--trace`` and rendered by
``python -m repro trace summarize``; :mod:`repro.obs.serialize` —
best-effort conversion of result objects to JSON-safe data;
:mod:`repro.obs.faults` — the deterministic fault-injection harness
that chaos-tests the campaign engine and artifact cache.
"""

from repro.obs.faults import (
    FaultInjector,
    FaultPlan,
    InjectedWriteError,
    fault_injection,
    get_fault_injector,
    set_fault_injector,
)
from repro.obs.manifest import SCHEMA_VERSION, RunManifest
from repro.obs.serialize import to_jsonable
from repro.obs.tracer import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "RunManifest",
    "SCHEMA_VERSION",
    "to_jsonable",
    "FaultPlan",
    "FaultInjector",
    "InjectedWriteError",
    "fault_injection",
    "get_fault_injector",
    "set_fault_injector",
]
