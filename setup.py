"""Setup shim for environments without the `wheel` package (offline install)."""
from setuptools import setup

setup()
