"""Extension benchmark: delegate to the ext_partition experiment module."""

from repro.experiments import ext_partition


def test_ext_partition(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_partition.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_partition", ext_partition.format_result(result))
