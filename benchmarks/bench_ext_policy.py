"""Extension benchmark: delegate to the ext_policy experiment module."""

from repro.experiments import ext_policy


def test_ext_policy(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_policy.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_policy", ext_policy.format_result(result))
