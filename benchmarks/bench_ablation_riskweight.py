"""Ablation: path weight in the robustness suggestion (§5.1).

The framework minimizes the *sum* of tenant counts along the alternate
path.  This ablation compares against hop-count (shortest) and max-
tenant (bottleneck) objectives: risk-sum should achieve the best
shared-risk reduction per added hop.
"""

import networkx as nx

from repro.analysis.report import format_table
from repro.mitigation.robustness import _risk_graph
from repro.risk.metrics import most_shared_conduits


def _evaluate(scenario, weight_key):
    fiber_map = scenario.constructed_map
    matrix = scenario.risk_matrix
    targets = most_shared_conduits(matrix, top=12)
    total_srr = 0
    total_pi = 0
    solved = 0
    for conduit_id, tenants in targets:
        conduit = fiber_map.conduit(conduit_id)
        graph = _risk_graph(fiber_map, exclude=conduit_id)
        a, b = conduit.edge
        try:
            if weight_key == "minmax":
                # Bottleneck-minimizing path via binary search over risk.
                levels = sorted({d["risk"] for _, _, d in graph.edges(data=True)})
                path = None
                for level in levels:
                    sub = nx.Graph(
                        (u, v, d)
                        for u, v, d in graph.edges(data=True)
                        if d["risk"] <= level
                    )
                    if sub.has_node(a) and sub.has_node(b) and nx.has_path(sub, a, b):
                        path = nx.shortest_path(sub, a, b)
                        break
                if path is None:
                    continue
            else:
                path = nx.shortest_path(graph, a, b, weight=weight_key)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        max_risk = max(
            graph[u][v]["risk"] for u, v in zip(path, path[1:])
        )
        solved += 1
        total_srr += tenants - max_risk
        total_pi += len(path) - 2  # original path is one conduit
    return solved, total_pi / max(1, solved), total_srr / max(1, solved)


def _sweep(scenario):
    rows = []
    for label, key in (
        ("risk-sum (paper)", "risk"),
        ("hop count", None),
        ("bottleneck", "minmax"),
    ):
        solved, avg_pi, avg_srr = _evaluate(scenario, key)
        rows.append((label, solved, f"{avg_pi:.2f}", f"{avg_srr:.2f}"))
    return rows


def test_ablation_riskweight(benchmark, scenario, report_output):
    rows = benchmark.pedantic(_sweep, args=(scenario,), rounds=1, iterations=1)
    text = format_table(
        ("objective", "targets solved", "avg PI", "avg SRR"),
        rows,
        title="Ablation: alternate-path objective in the robustness suggestion",
    )
    report_output("ablation_riskweight", text)
