"""Extension benchmark: delegate to the ext_annotated experiment module."""

from repro.experiments import ext_annotated


def test_ext_annotated(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_annotated.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_annotated", ext_annotated.format_result(result))
