"""Benchmark: regenerate Figure 9: sharing CDF with traffic overlay."""

from repro.experiments import fig9


def test_fig9(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig9.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig9", fig9.format_result(result))
