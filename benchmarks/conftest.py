"""Benchmark fixtures: the full-size scenario and output capture.

Each benchmark regenerates one paper table/figure, times it, prints the
rows/series, and persists them under ``benchmarks/output/`` — the
artifact as ``<name>.txt`` plus a machine-readable ``BENCH_<name>.json``
(wall time, campaign size, cache hit/miss, and the run manifest of
every stage traced so far) so perf regressions are diffable alongside
the paper-vs-measured comparison.

The benchmark session runs with tracing **enabled**: a session-scoped
:class:`repro.obs.Tracer` is installed globally, so every BENCH record
embeds the span tree (scenario stages, pipeline steps, campaign shards,
experiments) accumulated up to that benchmark.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.obs import RunManifest, Tracer, set_tracer
from repro.scenario import Scenario, ScenarioConfig

#: Full-size campaign for the traffic benchmarks (env-overridable so CI
#: can run a reduced smoke pass).
BENCH_CAMPAIGN_TRACES = int(os.environ.get("REPRO_BENCH_TRACES", "20000"))


@pytest.fixture(scope="session")
def bench_tracer() -> Tracer:
    """Session tracer: every benchmarked stage lands in BENCH records."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture(scope="session")
def scenario(bench_tracer) -> Scenario:
    return Scenario(
        config=ScenarioConfig(
            seed=2015,
            campaign_traces=BENCH_CAMPAIGN_TRACES,
            workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        )
    )


def _wall_time_s(request, started: float) -> float:
    """Benchmark mean when pytest-benchmark ran, else elapsed time."""
    try:
        stats = request.getfixturevalue("benchmark").stats
        return float(stats.stats.mean)
    except Exception:
        return time.perf_counter() - started


@pytest.fixture()
def report_output(request, scenario, bench_tracer):
    """Writer that persists and echoes each experiment's artifact."""
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    started = time.perf_counter()

    def write(name: str, text: str, **extra) -> None:
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        campaign = scenario.peek("campaign")  # never force a build here
        manifest = RunManifest.from_tracer(
            bench_tracer,
            config=scenario.config.to_dict(),
            meta={"bench": name},
        )
        payload = {
            "name": name,
            "wall_time_s": _wall_time_s(request, started),
            "campaign_traces": scenario.campaign_traces,
            "campaign_records": len(campaign) if campaign is not None else None,
            "cache": scenario.cache_stats(),
            "manifest": manifest.to_dict(),
        }
        payload.update(extra)
        (output_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        banner = "=" * 72
        print(f"\n{banner}\n{text}\n{banner}")

    return write
