"""Benchmark fixtures: the full-size scenario and output capture.

Each benchmark regenerates one paper table/figure, times it, prints the
rows/series, and persists them under ``benchmarks/output/`` so the
paper-vs-measured comparison survives the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenario import Scenario

#: Full-size campaign for the traffic benchmarks.
BENCH_CAMPAIGN_TRACES = 20000


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    return Scenario(seed=2015, campaign_traces=BENCH_CAMPAIGN_TRACES)


@pytest.fixture(scope="session")
def report_output():
    """Writer that persists and echoes each experiment's artifact."""
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        banner = "=" * 72
        print(f"\n{banner}\n{text}\n{banner}")

    return write
