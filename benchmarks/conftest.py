"""Benchmark fixtures: the full-size scenario and output capture.

Each benchmark regenerates one paper table/figure, times it, prints the
rows/series, and persists them under ``benchmarks/output/`` — the
artifact as ``<name>.txt`` plus a machine-readable ``BENCH_<name>.json``
(wall time, campaign size, cache hit/miss) so perf regressions are
diffable alongside the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.scenario import Scenario

#: Full-size campaign for the traffic benchmarks (env-overridable so CI
#: can run a reduced smoke pass).
BENCH_CAMPAIGN_TRACES = int(os.environ.get("REPRO_BENCH_TRACES", "20000"))


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    return Scenario(
        seed=2015,
        campaign_traces=BENCH_CAMPAIGN_TRACES,
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    )


def _wall_time_s(request, started: float) -> float:
    """Benchmark mean when pytest-benchmark ran, else elapsed time."""
    try:
        stats = request.getfixturevalue("benchmark").stats
        return float(stats.stats.mean)
    except Exception:
        return time.perf_counter() - started


@pytest.fixture()
def report_output(request, scenario):
    """Writer that persists and echoes each experiment's artifact."""
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    started = time.perf_counter()

    def write(name: str, text: str) -> None:
        (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        campaign = scenario._campaign  # peek: never force a build here
        payload = {
            "name": name,
            "wall_time_s": _wall_time_s(request, started),
            "campaign_traces": scenario.campaign_traces,
            "campaign_records": len(campaign) if campaign is not None else None,
            "cache": scenario.cache_stats(),
        }
        (output_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        banner = "=" * 72
        print(f"\n{banner}\n{text}\n{banner}")

    return write
