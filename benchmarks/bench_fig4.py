"""Benchmark: regenerate Figure 4: transport co-location."""

from repro.experiments import fig4


def test_fig4(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig4.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig4", fig4.format_result(result))
