"""Ablation: greedy estimated gain vs exhaustive exact gain (§5.2, k=1).

The Figure 11 optimizer scores candidates with a two-Dijkstra estimate.
For k=1 we can afford the exact answer (apply every candidate, measure
the exposure drop); this ablation quantifies how much the estimate gives
up.
"""

from repro.analysis.report import format_table
from repro.mitigation.augmentation import (
    _FootprintRouter,
    candidate_new_edges,
    improvement_curve,
)

ISPS = ("Tata", "NTT", "TeliaSonera", "Sprint")


def _exact_best(fiber_map, network, isp, candidates):
    """Exhaustive k=1: apply each candidate and measure exactly."""
    base_router = _FootprintRouter(fiber_map, isp)
    demands = sorted({l.endpoints for l in fiber_map.links_of(isp)})
    footprint = set(base_router.graph.nodes)
    baseline = base_router.route_exposure(demands)
    best = baseline
    for edge, length in candidates:
        if edge[0] not in footprint or edge[1] not in footprint:
            continue
        router = _FootprintRouter(fiber_map, isp)
        router.add_private_conduit(edge, length)
        after = router.route_exposure(demands)
        if after < best:
            best = after
    if baseline <= 0:
        return 0.0
    return 1.0 - best / baseline


def _sweep(scenario):
    fiber_map = scenario.constructed_map
    network = scenario.network
    candidates = candidate_new_edges(fiber_map, network)
    rows = []
    for isp in ISPS:
        greedy = improvement_curve(
            fiber_map, network, isp, max_k=1, candidates=candidates
        ).improvement_ratio(1)
        exact = _exact_best(fiber_map, network, isp, candidates)
        rows.append((isp, f"{greedy:.3f}", f"{exact:.3f}"))
    return rows


def test_ablation_greedy(benchmark, scenario, report_output):
    rows = benchmark.pedantic(_sweep, args=(scenario,), rounds=1, iterations=1)
    text = format_table(
        ("ISP", "greedy estimate k=1", "exhaustive exact k=1"),
        rows,
        title="Ablation: greedy vs exhaustive candidate selection (k=1)",
    )
    report_output("ablation_greedy", text)
