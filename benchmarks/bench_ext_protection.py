"""Extension benchmark: delegate to the ext_protection experiment module."""

from repro.experiments import ext_protection


def test_ext_protection(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_protection.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_protection", ext_protection.format_result(result))
