"""Microbenchmarks: the substrate hot paths, timed properly.

Unlike the experiment benches (one round each — they regenerate paper
artifacts), these exercise the small operations that dominate large
runs: great-circle math, polyline queries, grid lookups, traceroute
simulation, and risk-matrix construction.
"""

import numpy as np

from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.polyline import Polyline
from repro.geo.vectorized import haversine_km_batch, segment_distances_km
from repro.risk.matrix import RiskMatrix

NYC = GeoPoint(40.71, -74.01)
LA = GeoPoint(34.05, -118.24)


def test_micro_haversine(benchmark):
    result = benchmark(haversine_km, NYC, LA)
    assert 3800 < result < 4100


def test_micro_haversine_batch_10k(benchmark):
    rng = np.random.default_rng(7)
    lat = rng.uniform(25, 49, 10000)
    lon = rng.uniform(-124, -67, 10000)

    def run():
        return haversine_km_batch(lat, lon, lat[::-1], lon[::-1])

    result = benchmark(run)
    assert result.shape == (10000,)


def test_micro_segment_distances_1k(benchmark):
    rng = np.random.default_rng(9)
    lat_a = rng.uniform(25, 49, 1000)
    lon_a = rng.uniform(-124, -67, 1000)
    lat_b = lat_a + rng.uniform(-1, 1, 1000)
    lon_b = lon_a + rng.uniform(-1, 1, 1000)

    def run():
        return segment_distances_km(NYC, lat_a, lon_a, lat_b, lon_b)

    result = benchmark(run)
    assert result.shape == (1000,)


def test_micro_polyline_resample(benchmark, scenario):
    conduit = max(
        scenario.constructed_map.conduits.values(), key=lambda c: c.length_km
    )
    samples = benchmark(conduit.geometry.resample, 10.0)
    assert len(samples) > 10


def test_micro_grid_query(benchmark, scenario):
    index = scenario.network.corridor_index()
    point = GeoPoint(39.5, -98.0)
    benchmark(index.kinds_near, point, 15.0)


def test_micro_traceroute(benchmark, scenario):
    engine = scenario.probe_engine
    topology = scenario.topology
    src = topology.cities_of("Comcast")[0]
    dst = next(c for c in topology.cities_of("Level 3") if c != src)
    # Warm the per-destination cache, then measure steady-state traces.
    engine.trace(src, "Comcast", dst, "Level 3")
    record = benchmark(engine.trace, src, "Comcast", dst, "Level 3")
    assert record.reached


def test_micro_risk_matrix_build(benchmark, scenario):
    fiber_map = scenario.constructed_map
    isps = list(scenario.isps)
    matrix = benchmark(RiskMatrix, fiber_map, isps)
    assert matrix.shape[0] == 20


def test_micro_row_shortest_path(benchmark, scenario):
    network = scenario.network
    path, km = benchmark(
        network.row_shortest_path, "Seattle, WA", "Miami, FL"
    )
    assert km > 3000
