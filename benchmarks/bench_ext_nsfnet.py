"""Extension benchmark: delegate to the ext_nsfnet experiment module."""

from repro.experiments import ext_nsfnet


def test_ext_nsfnet(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_nsfnet.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_nsfnet", ext_nsfnet.format_result(result))
