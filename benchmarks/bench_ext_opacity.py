"""Extension benchmark: delegate to the ext_opacity experiment module."""

from repro.experiments import ext_opacity


def test_ext_opacity(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_opacity.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_opacity", ext_opacity.format_result(result))
