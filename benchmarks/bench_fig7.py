"""Benchmark: regenerate Figure 7: ISP ranking by average sharing."""

from repro.experiments import fig7


def test_fig7(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig7.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig7", fig7.format_result(result))
