"""Benchmark: regenerate Tables 2-3: most-probed conduits."""

from repro.experiments import table2_3


def test_table2_3(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        table2_3.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("table2_3", table2_3.format_result(result))
