"""Benchmark: the §5 mitigation sweep on vs off the routing substrate.

Times Figure 10 (robustness), Figure 11 (augmentation), and Figure 12
(latency) end-to-end on the compiled CSR substrate and on the NetworkX
reference path, asserts the results agree, and reports the speedup in
``BENCH_mitigation.json`` — the acceptance number for the substrate
(target: >= 5x on the combined sweep).
"""

from __future__ import annotations

import time

from repro.experiments import fig10, fig11, fig12
from repro.mitigation.augmentation import candidate_new_edges, improvement_curves
from repro.mitigation.latency import latency_study
from repro.mitigation.robustness import optimize_all_isps


def _run_sweep(scenario, substrate):
    """One full §5 sweep; ``substrate=False`` forces the NetworkX path."""
    fiber_map = scenario.constructed_map
    network = scenario.network
    timings = {}
    started = time.perf_counter()
    suggestions = optimize_all_isps(
        fiber_map, scenario.risk_matrix, substrate=substrate
    )
    timings["fig10"] = time.perf_counter() - started
    started = time.perf_counter()
    curves = improvement_curves(
        fiber_map,
        network,
        list(scenario.isps),
        candidates=candidate_new_edges(fiber_map, network),
        substrate=substrate,
    )
    timings["fig11"] = time.perf_counter() - started
    started = time.perf_counter()
    study = latency_study(fiber_map, network, substrate=substrate)
    timings["fig12"] = time.perf_counter() - started
    timings["total"] = sum(timings.values())
    return timings, (suggestions, curves, study)


def test_mitigation(scenario, report_output):
    # Warm the shared stages so the timings isolate the analyses.
    scenario.constructed_map
    scenario.risk_matrix
    substrate = scenario.substrate
    fast, fast_results = _run_sweep(scenario, substrate)
    reference, reference_results = _run_sweep(scenario, False)
    assert fast_results[0] == reference_results[0]
    assert fast_results[1] == reference_results[1]
    assert fast_results[2] == reference_results[2]
    speedup = (
        reference["total"] / fast["total"] if fast["total"] > 0 else float("inf")
    )
    lines = ["mitigation sweep: substrate vs NetworkX reference (seconds)"]
    for key in ("fig10", "fig11", "fig12", "total"):
        ratio = reference[key] / fast[key] if fast[key] > 0 else float("inf")
        lines.append(
            f"  {key:<6} substrate {fast[key]:8.3f}  "
            f"reference {reference[key]:8.3f}  ({ratio:.1f}x)"
        )
    text = "\n".join(lines)
    report_output(
        "mitigation",
        text,
        substrate_s=fast,
        reference_s=reference,
        speedup=speedup,
    )
