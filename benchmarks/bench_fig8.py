"""Benchmark: regenerate Figure 8: Hamming risk-profile similarity."""

from repro.experiments import fig8


def test_fig8(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig8.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig8", fig8.format_result(result))
