"""Benchmark: regenerate Figures 2-3: road and rail layers."""

from repro.experiments import fig2_3


def test_fig2_3(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig2_3.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig2_3", fig2_3.format_result(result))
