"""Ablation: public-records coverage vs pipeline accuracy (§2 sensitivity).

How much of the paper's map quality depends on how much of the conduit
system public records happen to document?  Sweep the corpus coverage and
measure conduit/tenancy recall of the constructed map.
"""

from repro.analysis.report import format_table
from repro.fibermap.pipeline import MapConstructionPipeline
from repro.fibermap.records import generate_records

COVERAGES = (0.3, 0.6, 0.88)


def _sweep(scenario):
    rows = []
    for coverage in COVERAGES:
        corpus = generate_records(
            scenario.ground_truth, seed=scenario.seed + 2, coverage=coverage
        )
        pipeline = MapConstructionPipeline(
            scenario.ground_truth,
            provider_maps=scenario.provider_maps,
            corpus=corpus,
        )
        _, report = pipeline.run()
        accuracy = report.accuracy
        rows.append(
            (
                f"{coverage:.0%}",
                len(corpus),
                f"{accuracy.conduit_recall:.1%}",
                f"{accuracy.tenancy_recall:.1%}",
                f"{accuracy.step3_path_exact:.1%}",
                report.inferred_tenancies,
            )
        )
    return rows


def test_ablation_records(benchmark, scenario, report_output):
    rows = benchmark.pedantic(_sweep, args=(scenario,), rounds=1, iterations=1)
    text = format_table(
        ("coverage", "documents", "conduit recall", "tenancy recall",
         "step3 exact", "inferred tenancies"),
        rows,
        title="Ablation: records coverage vs constructed-map accuracy",
    )
    report_output("ablation_records", text)
