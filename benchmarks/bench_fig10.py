"""Benchmark: regenerate Figure 10: path inflation and shared-risk reduction."""

from repro.experiments import fig10


def test_fig10(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig10.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig10", fig10.format_result(result))
