"""Benchmark: raw campaign throughput on the array routing core.

Times one full ``run_campaign`` over the benchmark topology.  Size and
worker count come from ``REPRO_BENCH_TRACES`` / ``REPRO_BENCH_WORKERS``,
so CI can run a reduced smoke pass and local runs can push toward the
paper's 4.9M-trace scale.
"""

from __future__ import annotations

import os

from repro.traceroute.campaign import CampaignConfig, run_campaign


def test_campaign_scale(benchmark, scenario, report_output):
    traces = int(os.environ.get("REPRO_BENCH_TRACES", "20000"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    topology = scenario.topology
    config = CampaignConfig(num_traces=traces, seed=2020, workers=workers)
    records = benchmark.pedantic(
        run_campaign, args=(topology, config), rounds=1, iterations=1
    )
    assert len(records) == traces
    assert all(r.reached for r in records)
    report_output(
        "campaign_scale",
        f"campaign scale: {traces} traces, {workers} worker(s), "
        f"{len(records)} records",
    )
