"""Benchmark: raw campaign throughput on the columnar pipeline.

Times one full ``run_campaign`` (now returning a
:class:`~repro.traceroute.columns.TraceColumns` store) over the
benchmark topology under **both RNG contracts** — v2 (counter-based
vectorized streams, the default and the gated headline) and v1 (the
legacy per-trace Mersenne streams, kept for golden compatibility) —
then a larger tier as a stepping stone toward the paper's 4.9M-trace
scale.  Knobs, all environment variables so CI can run a reduced smoke
pass:

``REPRO_BENCH_TRACES``        base-tier size (default 20000)
``REPRO_BENCH_TRACES_LARGE``  large-tier size (default 200000; 0 skips)
``REPRO_BENCH_WORKERS``       campaign worker processes (default 1)
``REPRO_BENCH_MIN_RPS``       records/second floor the base tier must
                              clear under contract v2 (default 0 = no
                              gate)
``REPRO_BENCH_MAX_RSS_PER_100K_MB``
                              peak-RSS growth budget per 100k traces on
                              the large tier (default 192 MB)
"""

from __future__ import annotations

import os
import resource
import time

from repro.traceroute.campaign import CampaignConfig, run_campaign
from repro.traceroute.columns import TraceColumns
from repro.traceroute.rngv2 import RNG_CONTRACT_V1, RNG_CONTRACT_V2

MIN_RPS = float(os.environ.get("REPRO_BENCH_MIN_RPS", "0"))
LARGE_TRACES = int(os.environ.get("REPRO_BENCH_TRACES_LARGE", "200000"))
MAX_RSS_PER_100K_MB = float(
    os.environ.get("REPRO_BENCH_MAX_RSS_PER_100K_MB", "192")
)


def _peak_rss_mb() -> float:
    """High-water-mark RSS of this process, in MB (Linux reports KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_run(topology, traces: int, workers: int, contract: int):
    started = time.perf_counter()
    columns = run_campaign(
        topology,
        CampaignConfig(
            num_traces=traces, seed=2020, workers=workers,
            rng_contract=contract,
        ),
    )
    elapsed = time.perf_counter() - started
    return columns, elapsed


def test_campaign_scale(benchmark, scenario, report_output):
    traces = int(os.environ.get("REPRO_BENCH_TRACES", "20000"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    topology = scenario.topology

    # The routing core's Dijkstra rows are cached on the (shared)
    # topology object, so whichever contract ran first would pay that
    # one-time cost for both.  A tiny warm-up run prepares every
    # campaign destination up front, making the two timed runs
    # order-independent (hop templates stay per-engine and are rebuilt
    # by each timed run — that cost is honestly attributed).
    _timed_run(topology, 256, workers, RNG_CONTRACT_V2)

    # Contract v1 timed directly; then the gated v2 headline through
    # pytest-benchmark.
    v1_columns, v1_elapsed = _timed_run(
        topology, traces, workers, RNG_CONTRACT_V1
    )
    assert v1_columns.rng_contract == RNG_CONTRACT_V1
    assert len(v1_columns) == traces
    v1_rps = traces / v1_elapsed if v1_elapsed > 0 else 0.0
    del v1_columns

    config = CampaignConfig(
        num_traces=traces, seed=2020, workers=workers,
        rng_contract=RNG_CONTRACT_V2,
    )
    columns = benchmark.pedantic(
        run_campaign, args=(topology, config), rounds=1, iterations=1
    )
    assert isinstance(columns, TraceColumns)
    assert columns.rng_contract == RNG_CONTRACT_V2
    assert len(columns) == traces
    assert bool(columns.traces["reached"].all())
    mean_s = float(benchmark.stats.stats.mean)
    rps = traces / mean_s if mean_s > 0 else 0.0

    # Large tier: run directly (pytest-benchmark only times one callable
    # per test) with a peak-RSS growth budget — the columnar store is
    # what keeps paper-scale campaigns inside a laptop's memory, so a
    # per-100k-trace regression here is a real scalability break.
    large = {}
    if LARGE_TRACES:
        _, v1_large_elapsed = _timed_run(
            topology, LARGE_TRACES, workers, RNG_CONTRACT_V1
        )
        rss_before = _peak_rss_mb()
        started = time.perf_counter()
        big = run_campaign(
            topology,
            CampaignConfig(
                num_traces=LARGE_TRACES, seed=2020, workers=workers,
                rng_contract=RNG_CONTRACT_V2,
            ),
        )
        elapsed = time.perf_counter() - started
        rss_grown = max(0.0, _peak_rss_mb() - rss_before)
        assert len(big) == LARGE_TRACES
        per_100k = rss_grown / (LARGE_TRACES / 100_000)
        assert per_100k <= MAX_RSS_PER_100K_MB, (
            f"peak RSS grew {per_100k:.1f} MB per 100k traces "
            f"(budget {MAX_RSS_PER_100K_MB} MB)"
        )
        large = {
            "large_traces": LARGE_TRACES,
            "large_wall_time_s": elapsed,
            "large_records_per_s": LARGE_TRACES / elapsed,
            "large_records_per_s_v1": LARGE_TRACES / v1_large_elapsed,
            "large_v2_speedup": v1_large_elapsed / elapsed,
            "large_columnar_bytes": big.nbytes,
            "large_peak_rss_growth_mb": rss_grown,
            "large_rss_growth_per_100k_mb": per_100k,
        }
        del big

    if MIN_RPS:
        assert rps >= MIN_RPS, (
            f"campaign throughput {rps:,.0f} records/s (contract v2) "
            f"below the REPRO_BENCH_MIN_RPS={MIN_RPS:,.0f} gate"
        )
    report_output(
        "campaign_scale",
        f"campaign scale: {traces} traces, {workers} worker(s), "
        f"{len(columns)} records, {rps:,.0f} records/s (v2) vs "
        f"{v1_rps:,.0f} (v1), {columns.nbytes / 1e6:.2f} MB columnar",
        campaign_records=len(columns),
        rng_contract=RNG_CONTRACT_V2,
        records_per_s=rps,
        records_per_s_v1=v1_rps,
        v2_speedup=rps / v1_rps if v1_rps else None,
        columnar_bytes=columns.nbytes,
        min_rps_gate=MIN_RPS or None,
        **large,
    )
