"""Benchmark: regenerate Figure 12: propagation delay CDFs."""

from repro.experiments import fig12


def test_fig12(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig12.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig12", fig12.format_result(result))
