"""Extension benchmark: delegate to the ext_resilience experiment module."""

from repro.experiments import ext_resilience


def test_ext_resilience(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_resilience.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_resilience", ext_resilience.format_result(result))
