"""Benchmark: regenerate Table 5: peering suggestions."""

from repro.experiments import table5


def test_table5(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        table5.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("table5", table5.format_result(result))
