"""Benchmark: regenerate Figure 1: the constructed long-haul map."""

from repro.experiments import fig1


def test_fig1(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig1.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig1", fig1.format_result(result))
