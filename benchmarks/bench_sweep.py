"""Benchmark: the sweep orchestrator over a small seeds × drivers grid.

Runs a 2-seed × 2-driver grid twice against one shared cache root —
cold (every cell builds or coalesces) and warm (every stage artifact
served from cache) — over a 2-process pool, asserts determinism of the
per-cell metrics between the two passes, and reports cell throughput
plus the dedup accounting in ``BENCH_sweep.json``.
"""

from __future__ import annotations

import tempfile
import time

from repro.sweep import expand_grid, parse_grid, run_sweep


def _metric_rows(result):
    return [
        (
            cell["cell"]["seed"],
            cell["cell"]["driver"],
            cell["metrics"]["gains"],
            cell["metrics"]["srr_avg"],
        )
        for cell in result.cells
    ]


def test_sweep(report_output):
    cells = expand_grid(
        parse_grid(["seed=2015..2016", "driver=greedy,random", "max_k=2"])
    )
    isps = ["Telia", "Tata", "Sprint"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as root:
        started = time.perf_counter()
        cold = run_sweep(cells, isps=isps, cache=root, workers=2)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_sweep(cells, isps=isps, cache=root, workers=2)
        warm_s = time.perf_counter() - started
    assert cold.ok and warm.ok
    # Deterministic cells: metrics must not depend on cache state,
    # pool scheduling, or which process built an artifact.
    assert _metric_rows(cold) == _metric_rows(warm)
    cold_dedup = cold.cache_dedup()
    warm_dedup = warm.cache_dedup()
    assert cold_dedup["cross_cell_hits"] >= 1, cold_dedup
    # A warm sweep rebuilds nothing: every fetch hits.
    assert warm_dedup["misses"] == 0, warm_dedup
    text = (
        f"sweep {len(cells)} cells (2 seeds x 2 drivers, workers=2)\n"
        f"  cold {cold_s:6.2f}s  "
        f"dedup {cold_dedup['cross_cell_hits']}h/"
        f"{cold_dedup['coalesced']}c/{cold_dedup['misses']}m\n"
        f"  warm {warm_s:6.2f}s  "
        f"dedup {warm_dedup['cross_cell_hits']}h/"
        f"{warm_dedup['coalesced']}c/{warm_dedup['misses']}m"
    )
    report_output(
        "sweep",
        text,
        cells=len(cells),
        cold_s=cold_s,
        warm_s=warm_s,
        cold_dedup=cold_dedup,
        warm_dedup=warm_dedup,
        aggregates=cold.aggregates,
    )
