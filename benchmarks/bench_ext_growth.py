"""Extension benchmark: delegate to the ext_growth experiment module."""

from repro.experiments import ext_growth


def test_ext_growth(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        ext_growth.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("ext_growth", ext_growth.format_result(result))
