"""Benchmark: regenerate Figure 6: conduits shared by >= k ISPs."""

from repro.experiments import fig6


def test_fig6(benchmark, scenario, report_output):
    result = benchmark.pedantic(
        fig6.run, args=(scenario,), rounds=1, iterations=1
    )
    report_output("fig6", fig6.format_result(result))
